//! # oscar — a data-oriented overlay for heterogeneous environments
//!
//! Reproduction of *Girdzijauskas, Datta, Aberer: "Oscar: A Data-Oriented
//! Overlay For Heterogeneous Environments" (ICDE 2007)*: a range-queriable
//! small-world P2P overlay that tolerates arbitrarily skewed key
//! distributions and heterogeneous per-peer link budgets at the same time,
//! together with the Mercury baseline and the deterministic simulator the
//! evaluation runs on.
//!
//! ## Quickstart
//!
//! ```
//! use oscar::prelude::*;
//!
//! // Skewed (Gnutella-filename-like) peer identifiers, heterogeneous
//! // per-peer degree budgets, deterministic seed.
//! let mut overlay = oscar::core::new_overlay(
//!     OscarConfig::default(),
//!     FaultModel::StabilizedRing,
//!     42,
//! );
//! overlay
//!     .grow_to(500, &GnutellaKeys::default(), &SpikyDegrees::paper())
//!     .unwrap();
//!
//! let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 500);
//! assert_eq!(stats.success_rate, 1.0);
//! assert!(stats.mean_cost < 12.0); // ≪ log₂²(500) ≈ 80
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ring identifiers, arcs, seeds, errors |
//! | [`keydist`] | key distributions (uniform, Zipf, clustered, Gnutella) and query workloads |
//! | [`degree`] | degree-cap distributions (constant / stepped / spiky-realistic) |
//! | [`ring`] | the sorted identifier ring and stabilisation |
//! | [`sim`] | the network simulator: walks, routing, churn, growth |
//! | [`protocol`] | runtime-agnostic protocol core: decision kernels + per-peer state machines |
//! | [`runtime`] | threaded actor driver for the protocol core (wall-clock, all cores) |
//! | [`core`] | **the paper's contribution**: Oscar partition estimation + link acquisition |
//! | [`mercury`] | the Mercury baseline |
//! | [`chord`] | the Chord finger-table baseline (skew-oblivious control) |
//! | [`store`] | data items, storage load, capacity-aware identifier choice |
//! | [`analytics`] | statistics and figure rendering for the harness |

pub use oscar_analytics as analytics;
pub use oscar_chord as chord;
pub use oscar_core as core;
pub use oscar_degree as degree;
pub use oscar_keydist as keydist;
pub use oscar_mercury as mercury;
pub use oscar_protocol as protocol;
pub use oscar_ring as ring;
pub use oscar_runtime as runtime;
pub use oscar_sim as sim;
pub use oscar_store as store;
pub use oscar_types as types;

/// The names most programs want in scope.
pub mod prelude {
    pub use oscar_analytics::{degree_load_curve, degree_volume_utilization, Series, Summary};
    pub use oscar_chord::{ChordBuilder, ChordConfig, ChordOverlay};
    pub use oscar_core::{
        range_scan, MedianSource, OscarBuilder, OscarConfig, OscarOverlay, RangeScanOutcome,
    };
    pub use oscar_degree::{
        ConstantDegrees, DegreeCaps, DegreeDistribution, SpikyDegrees, SteppedDegrees,
    };
    pub use oscar_keydist::{
        ClusteredKeys, GnutellaKeys, KeyDistribution, QueryWorkload, UniformKeys, ZipfKeys,
    };
    pub use oscar_mercury::{MercuryBuilder, MercuryConfig, MercuryOverlay};
    pub use oscar_protocol::{Command, PeerConfig, PeerMachine, ProtocolEvent};
    pub use oscar_runtime::{Runtime, RuntimeConfig};
    pub use oscar_sim::{
        ChurnSchedule, ChurnWindowStats, DesDriver, FaultModel, GrowthConfig, Network, Overlay,
        OverlayBuilder, QueryBatchStats, QueryBudget, RepairPolicy, RoutePolicy,
    };
    pub use oscar_types::{Arc, Error, Id, Result, SeedTree};
}
