//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (with `seed_from_u64`), and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family the real `rand 0.8` uses on 64-bit targets, so the
//! statistical properties the simulator relies on (uniformity, long
//! period, cheap jumps) hold. Streams are NOT bit-compatible with the
//! real crate; the workspace only relies on self-consistent
//! determinism, never on matching upstream streams.

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an rng via [`Rng::gen`]
/// (stand-in for the real crate's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for char {
    /// Uniform over a printable ASCII-ish subset; enough for test data.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample_standard(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // wrapping_add: the full u128 domain has span 2^128,
                // which wraps to 0 and is handled below.
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: every value is in range.
                    return u128::sample_standard(rng) as $t;
                }
                lo + (u128::sample_standard(rng) % span) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                self.start.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                lo.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a fixed seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the canonical
    /// seeding procedure for the xoshiro family).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic rng: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        #[inline]
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: u128 = r.gen_range(0u128..=5);
            assert!(z <= 5);
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut r = SmallRng::seed_from_u64(11);
        let _: u128 = r.gen_range(0u128..=u128::MAX);
        let _: u64 = r.gen_range(0u64..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
        let _: u8 = r.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = SmallRng::seed_from_u64(3);
        let dynref: &mut dyn RngCore = &mut r;
        let _: u64 = dynref.gen();
        let _ = dynref.gen_range(0..10usize);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
