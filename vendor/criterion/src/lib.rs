//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the measurement surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Bench targets still need `harness = false`.
//!
//! Measurement is deliberately simple: each `iter` closure is warmed
//! up briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean per-iteration wall time is printed.
//! There is no statistical analysis, HTML report, or baseline storage —
//! the stub exists so benches compile, run, and give a usable
//! order-of-magnitude number.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    measurement_time: Duration,
    /// (total elapsed, iterations) of the measured window.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up & calibration: discover a per-iteration cost estimate.
        let warmup_end = Instant::now() + self.measurement_time / 4;
        let mut calib_iters: u64 = 0;
        let calib_start = Instant::now();
        while Instant::now() < warmup_end {
            black_box(body());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;

        let target =
            ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(body());
        }
        self.result = Some((start.elapsed(), target));
    }
}

fn humanize(d: Duration) -> String {
    let ns = d.as_nanos();
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

fn run_one(name: &str, measurement_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let per = total / iters.max(1) as u32;
            println!(
                "{name:<50} time: {:>12}   ({iters} iterations)",
                humanize(per)
            );
        }
        None => println!("{name:<50} (no iter() call)"),
    }
}

/// A named set of related benchmarks. Borrows the parent `Criterion`
/// (mirroring the real crate's API shape) but keeps its own
/// measurement window so per-group overrides don't leak out.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed measurement
    /// window makes the requested statistical sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.measurement_time, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: CI smoke runs must stay fast.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().id, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = id.into().id;
        run_one(&name, self.measurement_time, |b| f(b, input));
        self
    }

    /// Criterion's CLI parsing normally handles `--bench`/filters; the
    /// stub accepts and ignores whatever cargo passes through.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, config = $config:expr, targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::new("named", 3), |b| b.iter(|| 1 + 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_main_macros_compile_and_run() {
        benches();
    }

    #[test]
    fn group_measurement_time_does_not_leak_to_parent() {
        let mut c = Criterion::default();
        let parent_window = c.measurement_time;
        {
            let mut group = c.benchmark_group("leaky");
            group.measurement_time(Duration::from_secs(60));
            group.finish();
        }
        assert_eq!(c.measurement_time, parent_window);
    }
}
