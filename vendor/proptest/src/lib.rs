//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements the surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro (optional `#![proptest_config(..)]` header,
//!   `#[test]` functions whose parameters are either `pat in strategy`
//!   or `ident: Type` shorthand for `any::<Type>()`),
//! - [`Strategy`] implementations for numeric ranges, tuples,
//!   `prop::collection::vec`, [`any`], and a small regex subset for
//!   `&str` strategies,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`, [`ProptestConfig`], and [`TestCaseError`].
//!
//! Unlike the real crate there is no shrinking: a failing case reports
//! the panic message of the first failure together with the case number
//! and the deterministic seed, which is enough to reproduce it (the
//! runner derives all case seeds from the test name).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on consecutive `prop_assume!` rejections before the
    /// runner gives up (mirrors the real crate's global reject cap).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values of one type. The stub has no shrinking, so a
/// strategy is just a seeded sampler.
pub trait Strategy {
    type Value;
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary_value(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char);

// Floats: cover sign, magnitude spread, and exact zero — a plain unit
// uniform would never exercise negative or large inputs.
impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => rng.gen::<f64>(),
            2 => -rng.gen::<f64>(),
            3 => rng.gen::<f64>() * 1e6,
            4 => -rng.gen::<f64>() * 1e6,
            5 => rng.gen::<f64>() * 1e-6,
            _ => (rng.gen::<f64>() - 0.5) * 2e3,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        f64::arbitrary_value(rng) as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut SmallRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies, exposed as `prop::collection::*` to mirror
/// the real crate's prelude.
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        /// A `Vec` whose length is drawn from `size` and whose elements
        /// are drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range for vec strategy");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }

        pub struct HashSetStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        /// A `HashSet` with between `size.start` and `size.end - 1`
        /// distinct elements drawn from `elem`. Mirrors the real
        /// crate's behaviour of retrying duplicates to reach the
        /// requested minimum size.
        pub fn hash_set<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
        where
            S::Value: std::hash::Hash + Eq,
        {
            assert!(
                size.start < size.end,
                "empty size range for hash_set strategy"
            );
            HashSetStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for HashSetStrategy<S>
        where
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.size.clone());
                let mut set = std::collections::HashSet::new();
                // Bounded retries: a narrow element domain may not
                // contain `n` distinct values.
                let mut attempts = 0usize;
                while set.len() < n && attempts < n * 20 + 100 {
                    set.insert(self.elem.new_value(rng));
                    attempts += 1;
                }
                set
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// `&str` values act as regex strategies producing `String`s. Supported
/// subset: a single atom — a character class `[..]` (literals and
/// `a-z` ranges, leading `^` negation over printable ASCII), `\PC`
/// (any non-control character), or `.` — followed by an optional
/// `{m,n}` / `{m}` / `*` / `+` repetition. Unsupported patterns panic
/// loudly rather than silently generating the wrong language.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut SmallRng) -> String {
        let (atom, rest) = parse_atom(self);
        let (lo, hi) = parse_repeat(rest, self);
        let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        (0..n).map(|_| atom.sample(rng)).collect()
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut SmallRng) -> String {
        self.as_str().new_value(rng)
    }
}

enum Atom {
    /// Explicit set of candidate chars.
    Class(Vec<char>),
    /// Any non-control char (`\PC`): printable ASCII plus a sprinkle of
    /// multi-byte code points so encodings get exercised.
    NonControl,
}

impl Atom {
    fn sample(&self, rng: &mut SmallRng) -> char {
        match self {
            Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
            Atom::NonControl => {
                const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', 'ß', 'Ω', '☂', 'ñ'];
                if rng.gen_range(0..8u32) == 0 {
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                } else {
                    (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
                }
            }
        }
    }
}

fn parse_atom(pat: &str) -> (Atom, &str) {
    if let Some(rest) = pat
        .strip_prefix("\\PC")
        .or_else(|| pat.strip_prefix("\\pC"))
    {
        return (Atom::NonControl, rest);
    }
    if let Some(rest) = pat.strip_prefix('.') {
        return (Atom::NonControl, rest);
    }
    if let Some(body) = pat.strip_prefix('[') {
        let close = body
            .find(']')
            .unwrap_or_else(|| panic!("unterminated char class in regex strategy {pat:?}"));
        let (class, rest) = (&body[..close], &body[close + 1..]);
        let (negate, class) = match class.strip_prefix('^') {
            Some(c) => (true, c),
            None => (false, class),
        };
        let mut set: Vec<char> = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "inverted range in regex strategy {pat:?}");
                set.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        if negate {
            set = (0x20u32..0x7f)
                .filter_map(char::from_u32)
                .filter(|c| !set.contains(c))
                .collect();
        }
        assert!(
            !set.is_empty(),
            "empty char class in regex strategy {pat:?}"
        );
        return (Atom::Class(set), rest);
    }
    panic!("unsupported regex strategy {pat:?}: expected `[..]`, `\\PC`, or `.`");
}

fn parse_repeat(rest: &str, pat: &str) -> (usize, usize) {
    match rest {
        "" => (1, 1),
        "*" => (0, 32),
        "+" => (1, 32),
        _ => {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| {
                    panic!("unsupported repetition {rest:?} in regex strategy {pat:?}")
                });
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition bound in regex strategy {pat:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(body);
                    (n, n)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Drives the generated cases for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Deterministic per-test seed so failures reproduce run-to-run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            rng: SmallRng::seed_from_u64(h),
            name,
        }
    }

    /// Fresh generation source for one case.
    pub fn case_rng(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.rng.gen())
    }

    pub fn run(&mut self, mut case: impl FnMut(&mut SmallRng) -> TestCaseResult) {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_no = 0u64;
        while passed < self.config.cases {
            case_no += 1;
            let mut rng = self.case_rng();
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case #{case_no} (after {passed} passes): {msg}",
                        self.name
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            runner.run(|__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let __proptest_body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __proptest_body()
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $var = $crate::Strategy::new_value(&($strat), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $var: $ty = $crate::Strategy::new_value(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // No format! here: stringified conditions may contain `{`.
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_and_ranges(a: u64, b in 0u64..100, frac in 0.0f64..1.0) {
            prop_assert!(b < 100);
            prop_assert!((0.0..1.0).contains(&frac));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn vec_and_tuple_strategies(
            ops in prop::collection::vec((any::<u64>(), 0u8..4), 1..120),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 120);
            for (_, op) in ops {
                prop_assert!(op < 4);
            }
        }

        #[test]
        fn regex_strategies(a in "[ -~]{0,16}", s in "\\PC{0,32}") {
            prop_assert!(a.len() <= 16);
            prop_assert!(a.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(s.chars().count() <= 32);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }

        #[test]
        fn assume_rejects(a in 0u64..10, trailing_comma in 0u64..10,) {
            prop_assume!(a != trailing_comma);
            prop_assert_ne!(a, trailing_comma, "assume should have filtered equality");
        }
    }

    #[test]
    fn config_cases_respected() {
        let mut runner = TestRunner::new(
            ProptestConfig {
                cases: 12,
                ..ProptestConfig::default()
            },
            "config_cases_respected",
        );
        let mut n = 0;
        runner.run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 12);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::default(), "failures_panic");
        runner.run(|_| Err(TestCaseError::Fail("boom".into())));
    }
}
