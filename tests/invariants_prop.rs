//! Property-based integration tests: random small configurations must
//! never violate the overlay's structural or delivery guarantees.

use oscar::prelude::*;
use proptest::prelude::*;

// NB: the prelude's `Result` is the library's error alias; spell out std's.
fn check_invariants(net: &Network) -> std::result::Result<(), TestCaseError> {
    for p in net.all_peers() {
        let peer = net.peer(p);
        prop_assert!(peer.in_degree() <= peer.caps.rho_in);
        prop_assert!(peer.out_degree() <= peer.caps.rho_out);
        for &t in &peer.long_out {
            prop_assert_ne!(t, p, "self link");
            if net.is_alive(t) {
                prop_assert!(net.peer(t).long_in.contains(&p));
            }
        }
    }
    Ok(())
}

proptest! {
    // Each case grows a real overlay; keep the case count modest.
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn oscar_invariants_hold_for_random_configs(
        seed in 0u64..1000,
        n in 50usize..250,
        degree in 4u32..40,
        sample_size in 4usize..24,
        candidates in 1usize..3,
    ) {
        let cfg = OscarConfig {
            median_sample_size: sample_size,
            link_candidates: candidates,
            ..OscarConfig::default()
        };
        let mut ov = oscar::core::new_overlay(cfg, FaultModel::StabilizedRing, seed);
        ov.grow_to(n, &GnutellaKeys::default(), &ConstantDegrees::new(degree)).unwrap();
        check_invariants(ov.network())?;
        // Delivery is total in the fault-free regime.
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 100);
        prop_assert_eq!(stats.success_rate, 1.0);
        // And the cost respects the worst-case bound.
        let bound = oscar::core::theory::worst_case_search_bound(n);
        prop_assert!(stats.mean_cost <= bound, "cost {} vs bound {}", stats.mean_cost, bound);
    }

    #[test]
    fn churn_never_breaks_invariants_or_delivery(
        seed in 0u64..1000,
        kill in 0.05f64..0.5,
    ) {
        let mut ov = oscar::core::new_overlay(
            OscarConfig::default(),
            FaultModel::StabilizedRing,
            seed,
        );
        ov.grow_to(150, &UniformKeys, &SteppedDegrees::paper()).unwrap();
        ov.kill_fraction(kill).unwrap();
        check_invariants(ov.network())?;
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 80);
        prop_assert_eq!(stats.success_rate, 1.0);
    }

    #[test]
    fn mercury_invariants_hold(
        seed in 0u64..1000,
        n in 50usize..200,
    ) {
        let mut ov = oscar::mercury::new_overlay(
            MercuryConfig::default(),
            FaultModel::StabilizedRing,
            seed,
        );
        ov.grow_to(n, &GnutellaKeys::default(), &ConstantDegrees::paper()).unwrap();
        check_invariants(ov.network())?;
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 80);
        prop_assert_eq!(stats.success_rate, 1.0);
    }

    #[test]
    fn any_key_is_owned_and_reachable(
        seed in 0u64..1000,
        key in any::<u64>(),
    ) {
        let mut ov = oscar::core::new_overlay(
            OscarConfig::default(),
            FaultModel::StabilizedRing,
            seed % 7, // reuse a few networks' worth of variety
        );
        ov.grow_to(100, &ClusteredKeys::new(5, 1e-3, 1.0, seed), &ConstantDegrees::new(8)).unwrap();
        let net = ov.network();
        let key = Id::new(key);
        let owner = net.live_owner_of(key).expect("non-empty ring");
        // ownership invariant: key in (pred(owner), owner]
        let owner_id = net.peer(owner).id;
        let pred_id = net.peer(net.ring_predecessor(owner).unwrap()).id;
        prop_assert!(key.in_cw_open_closed(pred_id, owner_id) || pred_id == owner_id);
        // routing from anywhere reaches it
        let mut rng = SeedTree::new(seed).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let outcome = oscar::sim::route_to_owner(net, src, key, &RoutePolicy::default());
        prop_assert!(outcome.success);
        prop_assert_eq!(outcome.dest, Some(owner));
    }
}
