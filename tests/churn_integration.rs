//! Churn integration: the Figure 2 protocol at test scale, plus the
//! unstabilised-ring ablation.

use oscar::prelude::*;

fn grown_overlay(seed: u64) -> OscarOverlay {
    let mut ov = oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, seed);
    ov.grow_to(600, &GnutellaKeys::default(), &ConstantDegrees::paper())
        .unwrap();
    ov
}

#[test]
fn search_cost_rises_monotonically_with_crash_fraction() {
    // Figure 2's shape: no faults < 10% < 33%, all with full delivery.
    let mut costs = Vec::new();
    for (i, fraction) in [0.0, 0.10, 0.33].into_iter().enumerate() {
        let mut ov = grown_overlay(100 + i as u64);
        if fraction > 0.0 {
            ov.kill_fraction(fraction).unwrap();
        }
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 600);
        assert_eq!(
            stats.success_rate, 1.0,
            "stabilised ring delivers at {fraction}"
        );
        costs.push(stats.mean_cost);
    }
    assert!(
        costs[0] < costs[1] && costs[1] < costs[2],
        "costs should rise with crashes: {costs:?}"
    );
    // And stay "fairly low": far under the ring-walk O(N) regime.
    assert!(costs[2] < 30.0, "33% crash cost blew up: {}", costs[2]);
}

#[test]
fn wasted_traffic_tracks_crash_fraction() {
    let mut wasted = Vec::new();
    for fraction in [0.10, 0.33] {
        let mut ov = grown_overlay(42);
        ov.kill_fraction(fraction).unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 600);
        wasted.push(stats.mean_wasted);
    }
    assert!(
        wasted[1] > wasted[0] * 1.5,
        "3.3x the corpses should waste clearly more traffic: {wasted:?}"
    );
}

#[test]
fn snapshot_clone_isolates_crash_waves() {
    // The harness measures each crash fraction on a clone of one grown
    // network; verify clones do not bleed state into each other.
    let ov = grown_overlay(7);
    let pristine_live = ov.network().live_count();

    let mut clone_a = ov.network().clone();
    let mut clone_b = ov.network().clone();
    let mut rng_a = SeedTree::new(1).rng();
    let mut rng_b = SeedTree::new(2).rng();
    oscar::sim::kill_fraction(&mut clone_a, 0.33, &mut rng_a).unwrap();
    oscar::sim::kill_fraction(&mut clone_b, 0.10, &mut rng_b).unwrap();

    assert_eq!(
        ov.network().live_count(),
        pristine_live,
        "original untouched"
    );
    assert_eq!(
        clone_a.live_count(),
        pristine_live - (pristine_live as f64 * 0.33).round() as usize
    );
    assert_eq!(
        clone_b.live_count(),
        pristine_live - (pristine_live as f64 * 0.10).round() as usize
    );
}

#[test]
fn unstabilized_ring_is_strictly_worse() {
    // Ablation A4: the same crashed network measured under both fault
    // models. Stabilisation (the paper's assumption) must help.
    let ov = grown_overlay(11);
    let mut net = ov.network().clone();
    let mut rng = SeedTree::new(3).rng();
    oscar::sim::kill_fraction(&mut net, 0.33, &mut rng).unwrap();

    let mut measure = |fm: FaultModel, seed: u64| {
        net.set_fault_model(fm);
        let mut qrng = SeedTree::new(seed).rng();
        oscar::sim::run_query_batch(
            &mut net,
            &QueryWorkload::UniformPeers,
            500,
            &RoutePolicy::default(),
            &mut qrng,
        )
    };
    let stabilized = measure(FaultModel::StabilizedRing, 50);
    let unstabilized = measure(FaultModel::UnstabilizedRing, 50);

    assert_eq!(stabilized.success_rate, 1.0);
    assert!(
        unstabilized.mean_cost > stabilized.mean_cost,
        "unstabilised {:.2} should cost more than stabilised {:.2}",
        unstabilized.mean_cost,
        stabilized.mean_cost
    );
}

#[test]
fn rewiring_after_churn_repairs_the_overlay() {
    // Beyond the paper: dangling links are purged by a rewire-all pass,
    // restoring near-fault-free cost.
    let mut ov = grown_overlay(13);
    let healthy = ov.run_queries(&QueryWorkload::UniformPeers, 500);
    ov.kill_fraction(0.33).unwrap();
    let wounded = ov.run_queries(&QueryWorkload::UniformPeers, 500);
    ov.rewire_all().unwrap();
    let repaired = ov.run_queries(&QueryWorkload::UniformPeers, 500);

    assert!(wounded.mean_wasted > 0.2, "expected waste after crashes");
    assert!(
        repaired.mean_wasted < wounded.mean_wasted / 4.0,
        "rewiring should purge dangling links: {} -> {}",
        wounded.mean_wasted,
        repaired.mean_wasted
    );
    assert!(
        repaired.mean_cost < wounded.mean_cost,
        "repair should reduce cost"
    );
    // Not necessarily as good as healthy (fewer peers now), but close.
    assert!(repaired.mean_cost < healthy.mean_cost * 1.6);
}

#[test]
fn churn_engine_under_unstabilized_ring_degrades_monotonically_in_succ_list() {
    // The continuous-churn engine under the harsher fault model: ring
    // pointers keep aiming at corpses and no repair rewires the long
    // links, so delivery degrades as crashes accumulate — but the whole
    // run remains a pure function of the seed, and the successor list is
    // exactly what keeps the corpse-riddled ring navigable: delivery must
    // be monotone in its length.
    let schedule = ChurnSchedule {
        join_rate: 0.02,
        crash_rate: 0.30,
        depart_rate: 0.0,
        repair: RepairPolicy::SweepEvery(0),
        window_ticks: 500,
        query_budget: QueryBudget::Fixed(300),
        min_live: 60,
    };
    let run = |fm: FaultModel, succ_list_len: usize| {
        let mut ov = oscar::core::new_overlay(OscarConfig::default(), fm, 23);
        ov.grow_to(600, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        // Short successor lists (ablation A4): without the O(log N)
        // successor list, corpse-riddled ring pointers actually strand
        // queries instead of merely costing probes.
        ov.network_mut().set_succ_list_len(succ_list_len);
        ov.run_continuous_churn(
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &schedule,
            4,
        )
        .unwrap()
    };
    let mean_success = |ws: &[ChurnWindowStats]| {
        ws.iter().map(|w| w.queries.success_rate).sum::<f64>() / ws.len() as f64
    };

    let a = run(FaultModel::UnstabilizedRing, 1);
    let b = run(FaultModel::UnstabilizedRing, 1);
    assert_eq!(a, b, "engine run must be deterministic under seed");

    let stabilized = run(FaultModel::StabilizedRing, 1);
    let last = a.last().unwrap();
    let last_stab = stabilized.last().unwrap();
    assert_eq!(
        last_stab.queries.success_rate, 1.0,
        "stabilised ring still delivers everything"
    );
    assert!(
        last.queries.success_rate < 1.0,
        "unstabilised ring under sustained crashes must drop queries, got {:.3}",
        last.queries.success_rate
    );
    assert!(
        last.queries.success_rate > 0.2,
        "but not collapse outright, got {:.3}",
        last.queries.success_rate
    );
    assert!(
        last.queries.mean_wasted > last_stab.queries.mean_wasted,
        "corpse probing must waste more traffic than the stabilised view"
    );

    // Delivery is monotone in the successor-list length: every extra
    // successor is another way past a corpse.
    let s1 = mean_success(&a);
    let s2 = mean_success(&run(FaultModel::UnstabilizedRing, 2));
    let s4 = mean_success(&run(FaultModel::UnstabilizedRing, 4));
    assert!(
        s1 <= s2 && s2 <= s4,
        "delivery must not drop with a longer successor list: \
         succ 1 -> {s1:.3}, succ 2 -> {s2:.3}, succ 4 -> {s4:.3}"
    );
    assert!(
        s4 > s1,
        "a 4-entry successor list must measurably beat a single pointer \
         ({s4:.3} vs {s1:.3})"
    );
}

#[test]
fn reactive_repair_matches_sweep_delivery_at_strictly_lower_cost() {
    // The per-event repair acceptance criterion (its full-scale variant —
    // OSCAR_SCALE=2000, 2%/window — is visible in repro_phase's
    // churn_phase_*.csv; this is the same protocol at test scale): at
    // 2%/window turnover, `Reactive { neighbors_k: 2 }` must reach steady
    // delivery at least as good as the sweep baseline while recording
    // strictly lower total repair cost per window — O(k) per membership
    // event instead of an O(n) rebuild per window.
    let ov = grown_overlay(29);
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let n = ov.network().live_count() as f64;
    let run = |repair: RepairPolicy| {
        let mut net = ov.network().clone();
        // 2% of the population per 1000-tick window, 80% crashes and 20%
        // graceful departures, population-neutral.
        let rate = 0.02 * n / 1000.0;
        let schedule = ChurnSchedule {
            join_rate: rate,
            crash_rate: rate * 0.8,
            depart_rate: rate * 0.2,
            repair,
            window_ticks: 1000,
            query_budget: QueryBudget::Fixed(150),
            min_live: 60,
        };
        oscar::sim::run_continuous_churn(
            &mut net,
            ov.builder(),
            &keys,
            &degrees,
            &schedule,
            6,
            SeedTree::new(97),
        )
        .unwrap()
    };
    let sweep = run(RepairPolicy::SweepEvery(1000));
    let reactive = run(RepairPolicy::Reactive { neighbors_k: 2 });

    let steady_success = |ws: &[ChurnWindowStats]| {
        let tail = &ws[ws.len() / 2..];
        tail.iter().map(|w| w.queries.success_rate).sum::<f64>() / tail.len() as f64
    };
    assert!(
        steady_success(&reactive) >= steady_success(&sweep),
        "reactive delivery {:.4} fell below the sweep baseline {:.4}",
        steady_success(&reactive),
        steady_success(&sweep)
    );

    let cost_per_window =
        |ws: &[ChurnWindowStats]| ws.iter().map(|w| w.repair_cost).sum::<u64>() / ws.len() as u64;
    let (rc, sc) = (cost_per_window(&reactive), cost_per_window(&sweep));
    assert!(
        rc < sc,
        "reactive repair must cost strictly less per window: {rc} vs {sc}"
    );
    // And not marginally so: per-event repair is an order of magnitude
    // cheaper at 2%/window.
    assert!(rc * 5 < sc, "expected a wide margin, got {rc} vs {sc}");
    assert!(
        reactive.iter().map(|w| w.repairs).sum::<u64>() > 0,
        "the reactive policy must actually have fired"
    );
}

#[test]
fn machine_backend_reactive_sustains_delivery_for_a_fraction_of_sweep_traffic() {
    // The PR 5 phase-diagram claim replayed through the protocol
    // machines, where detection is honest messages instead of oracle
    // knowledge (the oracle backend's test is
    // `reactive_repair_matches_sweep_delivery_at_strictly_lower_cost`
    // above; same margin discipline here). Two corners of the phase
    // diagram:
    //
    // * 10%/window, tight probing: reactive-k2 holds >= 99% delivery
    //   where the once-a-window sweep has already collapsed below 90%,
    //   and still spends strictly less on maintenance.
    // * 2%/window, relaxed probing: delivery stays perfect for a wide
    //   (>= 5x) traffic gap — the probes-plus-repairs bill is bounded by
    //   damage, not population, while every sweep rebuilds all n peers.
    //
    // The oracle backend shows a bigger gap at the same points because
    // its failure detection is free; the machines pay for theirs in
    // probe traffic, which is exactly what `repair_cost` now meters.
    use oscar::keydist::UniformKeys;
    use oscar::protocol::PeerConfig;
    use oscar::sim::{machine_repair_policy, run_machine_churn, DesDriver, MachineChurnConfig};

    let n = 256usize;
    let run = |turnover: f64, repair: RepairPolicy, probe_every: u64| {
        let rate = turnover * n as f64 / 1000.0;
        let schedule = ChurnSchedule {
            join_rate: rate,
            crash_rate: rate * 0.8,
            depart_rate: rate * 0.2,
            repair,
            window_ticks: 1000,
            query_budget: QueryBudget::Fixed(128),
            min_live: 64,
        };
        let peer_cfg = PeerConfig {
            repair: machine_repair_policy(&schedule.repair),
            ..PeerConfig::default()
        };
        let cfg = MachineChurnConfig {
            initial_peers: n,
            build_walks: 3,
            probe_every,
        };
        let mut des = DesDriver::new(41, peer_cfg);
        let windows = run_machine_churn(
            &mut des,
            &UniformKeys,
            &cfg,
            &schedule,
            4,
            SeedTree::new(41),
        )
        .unwrap();
        assert_eq!(des.fault_count(), 0, "machine faults in a seeded run");
        windows
    };
    let delivery = |ws: &[ChurnWindowStats]| {
        ws.iter().map(|w| w.queries.success_rate).sum::<f64>() / ws.len() as f64
    };
    let cost = |ws: &[ChurnWindowStats]| ws.iter().map(|w| w.repair_cost).sum::<u64>();
    let reactive_k2 = RepairPolicy::Reactive { neighbors_k: 2 };

    // Deep churn: 10% of the population per window.
    let deep_r = run(0.10, reactive_k2.clone(), 300);
    let deep_s = run(0.10, RepairPolicy::SweepEvery(1000), 300);
    let churned: u64 = deep_r.iter().map(|w| w.joins + w.crashes + w.departs).sum();
    assert!(
        churned as f64 >= 0.05 * n as f64,
        "schedule must churn: {churned}"
    );
    assert!(
        delivery(&deep_r) >= 0.99,
        "reactive-k2 delivery {:.4} below 99% at 10%/window",
        delivery(&deep_r)
    );
    assert!(
        delivery(&deep_s) < 0.99,
        "the sweep baseline was supposed to be degraded here, got {:.4}",
        delivery(&deep_s)
    );
    assert!(
        cost(&deep_r) < cost(&deep_s),
        "better delivery must not cost more: {} vs {}",
        cost(&deep_r),
        cost(&deep_s)
    );

    // Light churn: 2% per window, probes relaxed to once a window.
    let light_r = run(0.02, reactive_k2, 900);
    let light_s = run(0.02, RepairPolicy::SweepEvery(1000), 900);
    assert!(
        delivery(&light_r) >= delivery(&light_s),
        "reactive delivery {:.4} fell below the sweep baseline {:.4}",
        delivery(&light_r),
        delivery(&light_s)
    );
    let (rc, sc) = (cost(&light_r), cost(&light_s));
    assert!(
        rc * 5 < sc,
        "expected a wide repair-traffic margin at light churn: {rc} vs {sc}"
    );
}

#[test]
fn deep_churn_degrades_gracefully() {
    // Well beyond the paper's 33%: kill 60%; the stabilised ring still
    // delivers everything, cost rises but stays polylogarithmic-ish.
    let mut ov = grown_overlay(17);
    ov.kill_fraction(0.60).unwrap();
    let stats = ov.run_queries(&QueryWorkload::UniformPeers, 400);
    assert_eq!(stats.success_rate, 1.0);
    assert!(stats.mean_cost < 60.0, "cost {:.1}", stats.mean_cost);
}
