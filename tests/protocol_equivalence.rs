//! Cross-driver equivalence: the discrete-event simulator and the
//! threaded actor runtime must build the *same overlay* from the same
//! seed and command trace.
//!
//! This is the load-bearing test for the protocol-core refactor: all
//! randomness that decides protocol outcomes is carried in tokens
//! seeded from (peer seed, walk id), so link tables and routing results
//! are a function of the command trace alone — not of scheduling, not
//! of which driver delivers the envelopes. Gossip views are the one
//! deliberately scheduling-dependent piece of state and are excluded
//! from the fingerprint.

use oscar::protocol::{Command, FaultPlan, OpKind, PeerConfig, ProtocolEvent, QueryReport};
use oscar::runtime::{Runtime, RuntimeConfig};
use oscar::sim::DesDriver;
use oscar::types::Id;
use std::collections::BTreeMap;

const SEED: u64 = 0xE0_1234;

/// The shared trace: peer ids (join order), then per-peer link walks,
/// then a deterministic query set.
fn peer_ids(n: u64) -> Vec<Id> {
    // Scrambled insertion order exercises non-trivial splices.
    (0..n)
        .map(|i| Id::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
        .collect()
}

fn query_trace(ids: &[Id]) -> Vec<(Id, u64, Id)> {
    ids.iter()
        .enumerate()
        .flat_map(|(k, &origin)| {
            (0..3u64).map(move |j| {
                let qid = (k as u64) * 3 + j;
                (
                    origin,
                    qid,
                    Id::new(qid.wrapping_mul(0xD1B5_4A32_D192_ED03)),
                )
            })
        })
        .collect()
}

/// Per-peer link-table fingerprints: id -> (pred, succs, long_out, long_in).
type LinkTables = BTreeMap<Id, (Id, Vec<Id>, Vec<Id>, Vec<Id>)>;

fn run_des(ids: &[Id]) -> (LinkTables, Vec<QueryReport>) {
    let mut des = DesDriver::new(SEED, PeerConfig::default());
    des.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(des.join_and_wait(id, ids[0]), "DES join {id:?}");
    }
    for &id in ids {
        des.inject(id, Command::BuildLinks { walks: 3 });
        des.run_until_idle();
    }
    des.drain_events();
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        des.inject(origin, Command::StartQuery { qid, key });
        des.run_until_idle();
        for e in des.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                reports.push(r);
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, des.peer(id).unwrap().fingerprint()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    (tables, reports)
}

fn run_actor(ids: &[Id], workers: usize) -> (LinkTables, Vec<QueryReport>) {
    let mut rt = Runtime::new(RuntimeConfig::new(SEED).with_workers(workers));
    rt.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(rt.join_and_wait(id, ids[0]), "runtime join {id:?}");
    }
    for &id in ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
        rt.quiesce();
    }
    rt.drain_events();
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        rt.inject(origin, Command::StartQuery { qid, key });
        rt.quiesce();
        for e in rt.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                reports.push(r);
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, rt.with_peer(id, |m| m.fingerprint()).unwrap()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    rt.shutdown();
    (tables, reports)
}

#[test]
fn des_and_actor_runtime_build_identical_overlays() {
    let ids = peer_ids(48);
    let (des_tables, des_reports) = run_des(&ids);
    let (rt_tables, rt_reports) = run_actor(&ids, 4);

    assert_eq!(des_tables.len(), rt_tables.len());
    for (id, des_fp) in &des_tables {
        let rt_fp = &rt_tables[id];
        assert_eq!(des_fp, rt_fp, "link tables diverge at {id:?}");
    }

    assert_eq!(des_reports.len(), rt_reports.len(), "query report counts");
    for (d, r) in des_reports.iter().zip(&rt_reports) {
        assert_eq!(d.qid, r.qid);
        assert_eq!(d.origin, r.origin);
        assert_eq!(d.key, r.key);
        assert_eq!(d.success, r.success, "qid {} success", d.qid);
        assert_eq!(d.dest, r.dest, "qid {} destination", d.qid);
        assert_eq!(d.hops, r.hops, "qid {} hops", d.qid);
        assert_eq!(d.wasted, r.wasted, "qid {} wasted", d.qid);
        assert_eq!(d.backtracks, r.backtracks, "qid {} backtracks", d.qid);
    }
}

// --- equivalence under faults ----------------------------------------------

/// The shared fault plan: lossy, duplicating, jittery, with silent
/// blackholes on crash. Content-keyed decisions make the same message
/// meet the same fate in both drivers.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(0xBAD_F00D)
        .with_drop(0.05)
        .with_duplication(0.02)
        .with_delay_jitter(2)
        .with_blackhole(true)
}

/// The pre-seeded ring trace used for the faulted runs: joins are
/// covered reliably above; under loss the interesting equivalence is in
/// walks, link handshakes, and query retries.
fn bootstrap_trace(ids: &[Id]) -> Vec<(Id, Command)> {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    sorted
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            let succs: Vec<Id> = (1..=3).map(|j| sorted[(k + j) % n]).collect();
            (
                id,
                Command::Bootstrap {
                    pred: sorted[(k + n - 1) % n],
                    succs: succs.clone(),
                    known: succs,
                },
            )
        })
        .collect()
}

fn run_des_faulted(ids: &[Id]) -> (LinkTables, Vec<QueryReport>, u64) {
    let mut des = DesDriver::new_with_faults(SEED, PeerConfig::default(), fault_plan());
    for &id in ids {
        des.spawn_peer(id);
    }
    for (id, cmd) in bootstrap_trace(ids) {
        des.inject(id, cmd);
    }
    des.run_until_settled(64);
    for &id in ids {
        des.inject(id, Command::BuildLinks { walks: 3 });
        des.run_until_settled(64);
    }
    let mut retried = 0u64;
    for e in des.drain_events() {
        if matches!(e, ProtocolEvent::Retried { .. }) {
            retried += 1;
        }
    }
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        des.inject(origin, Command::StartQuery { qid, key });
        des.run_until_settled(64);
        for e in des.drain_events() {
            match e {
                ProtocolEvent::QueryCompleted(r) => reports.push(r),
                ProtocolEvent::Retried { .. } => retried += 1,
                _ => {}
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, des.peer(id).unwrap().fingerprint()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    (tables, reports, retried)
}

fn run_actor_faulted(ids: &[Id], workers: usize) -> (LinkTables, Vec<QueryReport>, u64) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(SEED)
            .with_workers(workers)
            .with_fault_plan(fault_plan()),
    );
    for &id in ids {
        rt.spawn_peer(id);
    }
    for (id, cmd) in bootstrap_trace(ids) {
        rt.inject(id, cmd);
    }
    rt.settle(64);
    for &id in ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
        rt.settle(64);
    }
    let mut retried = 0u64;
    for e in rt.drain_events() {
        if matches!(e, ProtocolEvent::Retried { .. }) {
            retried += 1;
        }
    }
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        rt.inject(origin, Command::StartQuery { qid, key });
        rt.settle(64);
        for e in rt.drain_events() {
            match e {
                ProtocolEvent::QueryCompleted(r) => reports.push(r),
                ProtocolEvent::Retried { .. } => retried += 1,
                _ => {}
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, rt.with_peer(id, |m| m.fingerprint()).unwrap()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    rt.shutdown();
    (tables, reports, retried)
}

#[test]
fn des_and_actor_runtime_agree_under_the_same_fault_plan() {
    let ids = peer_ids(48);
    let (des_tables, des_reports, des_retried) = run_des_faulted(&ids);
    let (rt_tables, rt_reports, _) = run_actor_faulted(&ids, 4);

    assert!(
        des_retried > 0,
        "the plan must actually exercise the retry path"
    );
    assert_eq!(des_tables.len(), rt_tables.len());
    for (id, des_fp) in &des_tables {
        let rt_fp = &rt_tables[id];
        assert_eq!(des_fp, rt_fp, "link tables diverge under faults at {id:?}");
    }
    assert_eq!(
        des_reports.len(),
        rt_reports.len(),
        "query report counts under faults"
    );
    for (d, r) in des_reports.iter().zip(&rt_reports) {
        assert_eq!(d, r, "qid {} report diverges under faults", d.qid);
    }
    // Recovery must actually work: every query eventually resolves.
    let delivered = des_reports.iter().filter(|r| r.success).count();
    assert!(
        delivered * 100 >= des_reports.len() * 99,
        "steady delivery below 99%: {delivered}/{}",
        des_reports.len()
    );
}

#[test]
fn blackholed_crash_degrades_gracefully_not_fatally() {
    // Reliable links, but crashes swallow mail silently: only timeouts
    // can detect the corpse, and the query must fail *cleanly* — a
    // GaveUp plus an unsuccessful report, never a ProtocolEvent::Fault.
    let plan = FaultPlan::new(0x0B5C).with_blackhole(true);
    let mut des = DesDriver::new_with_faults(77, PeerConfig::default(), plan);
    let ids: Vec<Id> = (1..=8u64).map(|i| Id::new(i * 100)).collect();
    des.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(des.join_and_wait(id, ids[0]));
    }
    des.drain_events();
    let victim = Id::new(500);
    assert!(des.remove_peer(victim));
    // A key inside the victim's arc: every probe to it now vanishes.
    des.inject(
        Id::new(100),
        Command::StartQuery {
            qid: 1,
            key: Id::new(450),
        },
    );
    des.run_until_settled(128);
    let events = des.drain_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ProtocolEvent::TimedOut {
                op: OpKind::Query,
                ..
            }
        )),
        "the blackholed probe must surface as a timeout"
    );
    assert!(events.iter().any(|e| matches!(
        e,
        ProtocolEvent::GaveUp {
            op: OpKind::Query,
            ..
        }
    )));
    let report = events
        .iter()
        .find_map(|e| match e {
            ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
            _ => None,
        })
        .expect("the query must still complete — gracefully");
    assert!(!report.success);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::Fault { .. })),
        "graceful degradation must not raise Fault"
    );
    assert_eq!(
        des.sent(),
        des.delivered() + des.dropped() + des.bounced(),
        "accounting must reconcile"
    );
}

// --- equivalence under churn + repair --------------------------------------

/// The machine churn engine replayed on both drivers: Poisson
/// join/crash/depart, reactive-k2 detection and repair, and a lossy
/// network, all at the same seed. Every window's books — churn counts,
/// repair traffic, query statistics — and every surviving peer's link
/// tables must be identical. This is the tentpole claim of the unified
/// stack: churn outcomes are a function of the schedule and the seed,
/// not of which driver hosts the machines.
#[test]
fn des_and_actor_runtime_agree_under_churn_and_repair() {
    use oscar::keydist::UniformKeys;
    use oscar::sim::{
        machine_repair_policy, run_machine_churn, ChurnSchedule, ChurnWindowStats,
        MachineChurnConfig, QueryBudget, RepairPolicy,
    };
    use oscar::types::SeedTree;

    let schedule = ChurnSchedule {
        join_rate: 0.004,
        crash_rate: 0.004,
        depart_rate: 0.001,
        repair: RepairPolicy::Reactive { neighbors_k: 2 },
        window_ticks: 400,
        query_budget: QueryBudget::Fixed(40),
        min_live: 8,
    };
    let cfg = MachineChurnConfig {
        initial_peers: 32,
        build_walks: 3,
        probe_every: 100,
    };
    let peer_cfg = PeerConfig {
        repair: machine_repair_policy(&schedule.repair),
        ..PeerConfig::default()
    };
    // Blackholed crashes: corpses swallow mail silently and only timers
    // detect them. The bounce path is driver-timed (synchronous in the
    // runtime, next-tick in the DES) so it is excluded here — timeouts
    // fire on the shared round clock and keep detection order-free.
    let plan = FaultPlan::new(0xC0FFEE)
        .with_drop(0.05)
        .with_blackhole(true);

    let mut des = DesDriver::new_with_faults(SEED, peer_cfg.clone(), plan.clone());
    let des_windows: Vec<ChurnWindowStats> = run_machine_churn(
        &mut des,
        &UniformKeys,
        &cfg,
        &schedule,
        3,
        SeedTree::new(SEED),
    )
    .expect("DES churn run");
    let des_live = des.peer_ids();
    let des_tables: LinkTables = des_live
        .iter()
        .map(|&id| (id, des.peer(id).unwrap().fingerprint()))
        .collect();

    let mut rt = Runtime::new(
        RuntimeConfig::new(SEED)
            .with_workers(4)
            .with_peer_cfg(peer_cfg)
            .with_fault_plan(plan),
    );
    let rt_windows = run_machine_churn(
        &mut rt,
        &UniformKeys,
        &cfg,
        &schedule,
        3,
        SeedTree::new(SEED),
    )
    .expect("runtime churn run");
    let rt_live = rt.peer_ids();
    let rt_tables: LinkTables = rt_live
        .iter()
        .map(|&id| (id, rt.with_peer(id, |m| m.fingerprint()).unwrap()))
        .collect();

    let churned: u64 = des_windows.iter().map(|w| w.joins + w.crashes).sum();
    assert!(churned > 0, "the schedule must actually churn the fleet");
    assert_eq!(des_live, rt_live, "live populations diverge under churn");
    for (id, des_fp) in &des_tables {
        assert_eq!(
            des_fp, &rt_tables[id],
            "link tables diverge under churn at {id:?}"
        );
    }
    assert_eq!(
        des_windows, rt_windows,
        "window stats diverge between drivers"
    );
    assert_eq!(des.fault_count(), 0, "DES machine faults in a seeded run");
    assert_eq!(
        rt.fault_count(),
        0,
        "runtime machine faults in a seeded run"
    );
    rt.shutdown();
}

#[test]
fn actor_runtime_is_worker_count_invariant() {
    // The same trace under 1 worker and 4 workers: scheduling changes
    // completely, outcomes must not.
    let ids = peer_ids(24);
    let (t1, r1) = run_actor(&ids, 1);
    let (t4, r4) = run_actor(&ids, 4);
    assert_eq!(t1, t4, "link tables depend on worker count");
    assert_eq!(r1.len(), r4.len());
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(
            (a.qid, a.success, a.dest, a.hops, a.wasted),
            (b.qid, b.success, b.dest, b.hops, b.wasted)
        );
    }
}
