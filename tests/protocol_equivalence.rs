//! Cross-driver equivalence: the discrete-event simulator and the
//! threaded actor runtime must build the *same overlay* from the same
//! seed and command trace.
//!
//! This is the load-bearing test for the protocol-core refactor: all
//! randomness that decides protocol outcomes is carried in tokens
//! seeded from (peer seed, walk id), so link tables and routing results
//! are a function of the command trace alone — not of scheduling, not
//! of which driver delivers the envelopes. Gossip views are the one
//! deliberately scheduling-dependent piece of state and are excluded
//! from the fingerprint.

use oscar::protocol::{Command, PeerConfig, ProtocolEvent, QueryReport};
use oscar::runtime::{Runtime, RuntimeConfig};
use oscar::sim::DesDriver;
use oscar::types::Id;
use std::collections::BTreeMap;

const SEED: u64 = 0xE0_1234;

/// The shared trace: peer ids (join order), then per-peer link walks,
/// then a deterministic query set.
fn peer_ids(n: u64) -> Vec<Id> {
    // Scrambled insertion order exercises non-trivial splices.
    (0..n)
        .map(|i| Id::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
        .collect()
}

fn query_trace(ids: &[Id]) -> Vec<(Id, u64, Id)> {
    ids.iter()
        .enumerate()
        .flat_map(|(k, &origin)| {
            (0..3u64).map(move |j| {
                let qid = (k as u64) * 3 + j;
                (
                    origin,
                    qid,
                    Id::new(qid.wrapping_mul(0xD1B5_4A32_D192_ED03)),
                )
            })
        })
        .collect()
}

/// Per-peer link-table fingerprints: id -> (pred, succs, long_out, long_in).
type LinkTables = BTreeMap<Id, (Id, Vec<Id>, Vec<Id>, Vec<Id>)>;

fn run_des(ids: &[Id]) -> (LinkTables, Vec<QueryReport>) {
    let mut des = DesDriver::new(SEED, PeerConfig::default());
    des.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(des.join_and_wait(id, ids[0]), "DES join {id:?}");
    }
    for &id in ids {
        des.inject(id, Command::BuildLinks { walks: 3 });
        des.run_until_idle();
    }
    des.drain_events();
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        des.inject(origin, Command::StartQuery { qid, key });
        des.run_until_idle();
        for e in des.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                reports.push(r);
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, des.peer(id).unwrap().fingerprint()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    (tables, reports)
}

fn run_actor(ids: &[Id], workers: usize) -> (LinkTables, Vec<QueryReport>) {
    let mut rt = Runtime::new(RuntimeConfig::new(SEED).with_workers(workers));
    rt.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(rt.join_and_wait(id, ids[0]), "runtime join {id:?}");
    }
    for &id in ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
        rt.quiesce();
    }
    rt.drain_events();
    let mut reports = Vec::new();
    for &(origin, qid, key) in &query_trace(ids) {
        rt.inject(origin, Command::StartQuery { qid, key });
        rt.quiesce();
        for e in rt.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                reports.push(r);
            }
        }
    }
    let tables = ids
        .iter()
        .map(|&id| (id, rt.with_peer(id, |m| m.fingerprint()).unwrap()))
        .collect();
    reports.sort_by_key(|r| r.qid);
    rt.shutdown();
    (tables, reports)
}

#[test]
fn des_and_actor_runtime_build_identical_overlays() {
    let ids = peer_ids(48);
    let (des_tables, des_reports) = run_des(&ids);
    let (rt_tables, rt_reports) = run_actor(&ids, 4);

    assert_eq!(des_tables.len(), rt_tables.len());
    for (id, des_fp) in &des_tables {
        let rt_fp = &rt_tables[id];
        assert_eq!(des_fp, rt_fp, "link tables diverge at {id:?}");
    }

    assert_eq!(des_reports.len(), rt_reports.len(), "query report counts");
    for (d, r) in des_reports.iter().zip(&rt_reports) {
        assert_eq!(d.qid, r.qid);
        assert_eq!(d.origin, r.origin);
        assert_eq!(d.key, r.key);
        assert_eq!(d.success, r.success, "qid {} success", d.qid);
        assert_eq!(d.dest, r.dest, "qid {} destination", d.qid);
        assert_eq!(d.hops, r.hops, "qid {} hops", d.qid);
        assert_eq!(d.wasted, r.wasted, "qid {} wasted", d.qid);
        assert_eq!(d.backtracks, r.backtracks, "qid {} backtracks", d.qid);
    }
}

#[test]
fn actor_runtime_is_worker_count_invariant() {
    // The same trace under 1 worker and 4 workers: scheduling changes
    // completely, outcomes must not.
    let ids = peer_ids(24);
    let (t1, r1) = run_actor(&ids, 1);
    let (t4, r4) = run_actor(&ids, 4);
    assert_eq!(t1, t4, "link tables depend on worker count");
    assert_eq!(r1.len(), r4.len());
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(
            (a.qid, a.success, a.dest, a.hops, a.wasted),
            (b.qid, b.success, b.dest, b.hops, b.wasted)
        );
    }
}
