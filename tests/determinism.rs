//! Whole-experiment determinism: every figure must regenerate
//! bit-identically from its seed, and seeds must actually matter.

use oscar::prelude::*;

fn oscar_fingerprint(seed: u64) -> (Vec<u64>, f64, f64) {
    let mut ov = oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, seed);
    ov.grow_to(300, &GnutellaKeys::default(), &SpikyDegrees::paper())
        .unwrap();
    let ids: Vec<u64> = ov
        .network()
        .all_peers()
        .map(|p| ov.network().peer(p).id.raw())
        .collect();
    let stats = ov.run_queries(&QueryWorkload::UniformPeers, 300);
    let util = degree_volume_utilization(ov.network());
    (ids, stats.mean_cost, util)
}

#[test]
fn oscar_experiment_is_bit_reproducible() {
    let a = oscar_fingerprint(12345);
    let b = oscar_fingerprint(12345);
    assert_eq!(a.0, b.0, "identical peer id streams");
    assert_eq!(a.1, b.1, "identical query costs");
    assert_eq!(a.2, b.2, "identical utilisation");
}

#[test]
fn different_seeds_give_different_networks() {
    let a = oscar_fingerprint(1);
    let b = oscar_fingerprint(2);
    assert_ne!(a.0, b.0, "seeds must matter");
}

#[test]
fn mercury_experiment_is_bit_reproducible() {
    let run = || {
        let mut ov =
            oscar::mercury::new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 777);
        ov.grow_to(250, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        ov.run_queries(&QueryWorkload::UniformPeers, 250).mean_cost
    };
    assert_eq!(run(), run());
}

#[test]
fn churn_waves_are_reproducible() {
    let run = || {
        let mut ov =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 31);
        ov.grow_to(300, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        let killed = ov.kill_fraction(0.33).unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 300);
        (killed, stats.mean_cost, stats.mean_wasted)
    };
    let (ka, ca, wa) = run();
    let (kb, cb, wb) = run();
    assert_eq!(ka, kb, "same victims");
    assert_eq!(ca, cb);
    assert_eq!(wa, wb);
}

#[test]
fn metrics_are_reproducible_too() {
    let run = || {
        let mut ov =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 99);
        ov.grow_to(200, &UniformKeys, &ConstantDegrees::paper())
            .unwrap();
        ov.network().metrics.clone()
    };
    assert_eq!(run(), run());
}
