//! Pinned seeded artifacts: hard-coded digests of two seeded runs.
//!
//! `tests/determinism.rs` proves run-vs-run equality *within* one build;
//! these digests pin the outcome *across* builds, so any change that
//! silently perturbs a deterministic path — a hash map iterated where a
//! BTreeMap belonged, a reordered RNG draw, a relabeled seed stream —
//! fails here instead of surfacing as a mysterious diff in a committed
//! CSV. If a change is *meant* to shift the streams, regenerate the
//! committed `results/` artifacts in the same PR and re-pin.

use oscar::prelude::*;
use oscar::protocol::{Command, ProtocolEvent};
use oscar::runtime::{Runtime, RuntimeConfig};
use oscar::types::{mix64, Id};

/// Order-sensitive digest: folding with `mix64` makes any reordering,
/// insertion, or value drift change the result.
fn digest(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = mix64(acc ^ v);
    }
    acc
}

/// Simulator path: grown overlay + query batch at a fixed seed, the same
/// machinery behind `results/fig1a_degree_pdf.csv`.
#[test]
fn sim_growth_digest_is_pinned() {
    let mut ov = oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 4242);
    ov.grow_to(300, &GnutellaKeys::default(), &SpikyDegrees::paper())
        .unwrap();
    let ids = digest(
        ov.network()
            .all_peers()
            .map(|p| ov.network().peer(p).id.raw()),
    );
    let stats = ov.run_queries(&QueryWorkload::UniformPeers, 300);
    let outcome = digest([ids, stats.mean_cost.to_bits(), stats.mean_wasted.to_bits()]);
    println!("sim digest: {outcome:#018x}");
    assert_eq!(outcome, 0x709979aa63890b2d, "seeded sim artifact drifted");
}

/// Threaded-runtime path: joins, link walks and queries through the
/// actor runtime, exercising the ordered `actors` map (`peer_ids`,
/// enumeration) that the iter-order rule protects.
#[test]
fn runtime_overlay_digest_is_pinned() {
    let ids: Vec<Id> = (0..32u64)
        .map(|i| Id::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
        .collect();
    let mut rt = Runtime::new(RuntimeConfig::new(0xC0FFEE).with_workers(4));
    rt.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(rt.join_and_wait(id, ids[0]));
    }
    for &id in &ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
        rt.quiesce();
    }
    rt.drain_events();
    let mut q = Vec::new();
    for (k, &origin) in ids.iter().enumerate() {
        let qid = k as u64;
        rt.inject(
            origin,
            Command::StartQuery {
                qid,
                key: Id::new(qid.wrapping_mul(0xD1B5_4A32_D192_ED03)),
            },
        );
        rt.quiesce();
        for e in rt.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                q.push((r.qid, r));
            }
        }
    }
    q.sort_by_key(|&(qid, _)| qid);
    // peer_ids() iterates the actors BTreeMap directly: pin its order too.
    let roster = digest(rt.peer_ids().into_iter().map(|id| id.raw()));
    let mut tables = Vec::new();
    for &id in &ids {
        let (pred, succs, long_out, long_in) = rt.with_peer(id, |m| m.fingerprint()).unwrap();
        tables.push(digest(
            [id.raw(), pred.raw()]
                .into_iter()
                .chain(succs.iter().map(|s| s.raw()))
                .chain(long_out.iter().map(|s| s.raw()))
                .chain(long_in.iter().map(|s| s.raw())),
        ));
    }
    rt.shutdown();
    let queries = digest(
        q.iter()
            .flat_map(|(_, r)| [r.qid, r.hops as u64, r.wasted as u64, r.success as u64]),
    );
    let outcome = digest([roster, digest(tables), queries]);
    println!("runtime digest: {outcome:#018x}");
    assert_eq!(
        outcome, 0xb00ec918624ea04f,
        "seeded runtime artifact drifted"
    );
}
