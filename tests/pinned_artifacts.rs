//! Pinned seeded artifacts: hard-coded digests of two seeded runs.
//!
//! `tests/determinism.rs` proves run-vs-run equality *within* one build;
//! these digests pin the outcome *across* builds, so any change that
//! silently perturbs a deterministic path — a hash map iterated where a
//! BTreeMap belonged, a reordered RNG draw, a relabeled seed stream —
//! fails here instead of surfacing as a mysterious diff in a committed
//! CSV. If a change is *meant* to shift the streams, regenerate the
//! committed `results/` artifacts in the same PR and re-pin.

use oscar::prelude::*;
use oscar::protocol::{Command, ProtocolEvent};
use oscar::runtime::{Runtime, RuntimeConfig};
use oscar::types::{mix64, Id};

/// Order-sensitive digest: folding with `mix64` makes any reordering,
/// insertion, or value drift change the result.
fn digest(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = mix64(acc ^ v);
    }
    acc
}

/// Simulator path: grown overlay + query batch at a fixed seed, the same
/// machinery behind `results/fig1a_degree_pdf.csv`.
#[test]
fn sim_growth_digest_is_pinned() {
    let mut ov = oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 4242);
    ov.grow_to(300, &GnutellaKeys::default(), &SpikyDegrees::paper())
        .unwrap();
    let ids = digest(
        ov.network()
            .all_peers()
            .map(|p| ov.network().peer(p).id.raw()),
    );
    let stats = ov.run_queries(&QueryWorkload::UniformPeers, 300);
    let outcome = digest([ids, stats.mean_cost.to_bits(), stats.mean_wasted.to_bits()]);
    println!("sim digest: {outcome:#018x}");
    assert_eq!(outcome, 0x709979aa63890b2d, "seeded sim artifact drifted");
}

/// Machine churn backend: Poisson join/crash/depart with reactive-k2
/// detection and repair on the DES, the machinery behind the committed
/// `BENCH_churn_machine.json`. The digest folds every window's books
/// and every survivor's link tables, so a drift in the churn engine's
/// seed streams, the repair path, or the P² aggregation fails here
/// before it surfaces as a baseline diff.
#[test]
fn machine_churn_digest_is_pinned() {
    use oscar::keydist::UniformKeys;
    use oscar::protocol::PeerConfig;
    use oscar::sim::{
        machine_repair_policy, run_machine_churn, ChurnSchedule, DesDriver, MachineChurnConfig,
        QueryBudget, RepairPolicy,
    };
    use oscar::types::SeedTree;

    let schedule = ChurnSchedule {
        join_rate: 0.004,
        crash_rate: 0.004,
        depart_rate: 0.001,
        repair: RepairPolicy::Reactive { neighbors_k: 2 },
        window_ticks: 400,
        query_budget: QueryBudget::Fixed(40),
        min_live: 8,
    };
    let cfg = MachineChurnConfig {
        initial_peers: 32,
        build_walks: 3,
        probe_every: 100,
    };
    let peer_cfg = PeerConfig {
        repair: machine_repair_policy(&schedule.repair),
        ..PeerConfig::default()
    };
    let mut des = DesDriver::new(0xC_0DE, peer_cfg);
    let windows = run_machine_churn(
        &mut des,
        &UniformKeys,
        &cfg,
        &schedule,
        3,
        SeedTree::new(0xC_0DE),
    )
    .unwrap();
    let books = digest(windows.iter().flat_map(|w| {
        [
            w.joins,
            w.crashes,
            w.departs,
            w.repairs,
            w.repair_cost,
            w.rewires,
            w.live_at_end as u64,
            w.queries.success_rate.to_bits(),
            w.queries.mean_cost.to_bits(),
            w.queries.mean_wasted.to_bits(),
        ]
    }));
    let mut tables = Vec::new();
    for id in des.peer_ids() {
        let (pred, succs, long_out, long_in) = des.peer(id).unwrap().fingerprint();
        tables.push(digest(
            [id.raw(), pred.raw()]
                .into_iter()
                .chain(succs.iter().map(|s| s.raw()))
                .chain(long_out.iter().map(|s| s.raw()))
                .chain(long_in.iter().map(|s| s.raw())),
        ));
    }
    assert_eq!(des.fault_count(), 0, "no machine faults in a seeded run");
    let outcome = digest([books, digest(tables)]);
    println!("machine churn digest: {outcome:#018x}");
    assert_eq!(
        outcome, 0x2a607608fa7c105d,
        "seeded machine-churn artifact drifted"
    );
}

/// Threaded-runtime path: joins, link walks and queries through the
/// actor runtime, exercising the ordered `actors` map (`peer_ids`,
/// enumeration) that the iter-order rule protects.
#[test]
fn runtime_overlay_digest_is_pinned() {
    let ids: Vec<Id> = (0..32u64)
        .map(|i| Id::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
        .collect();
    let mut rt = Runtime::new(RuntimeConfig::new(0xC0FFEE).with_workers(4));
    rt.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(rt.join_and_wait(id, ids[0]));
    }
    for &id in &ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
        rt.quiesce();
    }
    rt.drain_events();
    let mut q = Vec::new();
    for (k, &origin) in ids.iter().enumerate() {
        let qid = k as u64;
        rt.inject(
            origin,
            Command::StartQuery {
                qid,
                key: Id::new(qid.wrapping_mul(0xD1B5_4A32_D192_ED03)),
            },
        );
        rt.quiesce();
        for e in rt.drain_events() {
            if let ProtocolEvent::QueryCompleted(r) = e {
                q.push((r.qid, r));
            }
        }
    }
    q.sort_by_key(|&(qid, _)| qid);
    // peer_ids() iterates the actors BTreeMap directly: pin its order too.
    let roster = digest(rt.peer_ids().into_iter().map(|id| id.raw()));
    let mut tables = Vec::new();
    for &id in &ids {
        let (pred, succs, long_out, long_in) = rt.with_peer(id, |m| m.fingerprint()).unwrap();
        tables.push(digest(
            [id.raw(), pred.raw()]
                .into_iter()
                .chain(succs.iter().map(|s| s.raw()))
                .chain(long_out.iter().map(|s| s.raw()))
                .chain(long_in.iter().map(|s| s.raw())),
        ));
    }
    rt.shutdown();
    let queries = digest(
        q.iter()
            .flat_map(|(_, r)| [r.qid, r.hops as u64, r.wasted as u64, r.success as u64]),
    );
    let outcome = digest([roster, digest(tables), queries]);
    println!("runtime digest: {outcome:#018x}");
    assert_eq!(
        outcome, 0xb00ec918624ea04f,
        "seeded runtime artifact drifted"
    );
}
