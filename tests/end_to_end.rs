//! End-to-end integration: grow → rewire → query across all crates,
//! checking the paper's qualitative claims at test scale.

use oscar::prelude::*;

/// Structural invariants every grown overlay must satisfy.
fn assert_network_invariants(net: &Network) {
    for p in net.all_peers() {
        let peer = net.peer(p);
        assert!(
            peer.in_degree() <= peer.caps.rho_in,
            "peer {p:?} exceeds in budget"
        );
        assert!(
            peer.out_degree() <= peer.caps.rho_out,
            "peer {p:?} exceeds out budget"
        );
        for &t in &peer.long_out {
            if net.is_alive(t) {
                assert!(
                    net.peer(t).long_in.contains(&p),
                    "missing reverse entry for {p:?}->{t:?}"
                );
            }
            assert_ne!(t, p, "self-link");
        }
        let mut seen = peer.long_out.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), peer.long_out.len(), "duplicate links at {p:?}");
    }
}

#[test]
fn oscar_paper_protocol_small_scale() {
    // The paper's growth protocol at 1/20 scale: grow to 500, rewire +
    // measure at every 100 peers.
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 1);
    let mut costs: Vec<(usize, f64)> = Vec::new();
    overlay
        .grow(
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            GrowthConfig {
                target_size: 500,
                seed_size: 8,
                checkpoints: vec![100, 200, 300, 400, 500],
                rewire_at_checkpoints: true,
            },
            |net, cp| {
                assert_network_invariants(net);
                let mut rng = SeedTree::new(1000 + cp.index as u64).rng();
                let stats = oscar::sim::run_query_batch(
                    net,
                    &QueryWorkload::UniformPeers,
                    cp.size,
                    &RoutePolicy::default(),
                    &mut rng,
                );
                assert_eq!(stats.success_rate, 1.0, "at size {}", cp.size);
                costs.push((cp.size, stats.mean_cost));
                Ok(())
            },
        )
        .unwrap();
    assert_eq!(costs.len(), 5);
    // Cost stays well under the paper's worst-case bound at every size.
    for &(size, cost) in &costs {
        let bound = oscar::core::theory::worst_case_search_bound(size);
        assert!(
            cost < bound / 2.0,
            "size {size}: cost {cost:.2} vs bound {bound:.0}"
        );
    }
    // And grows slowly: 5x the network should not even double the cost.
    let first = costs.first().unwrap().1;
    let last = costs.last().unwrap().1;
    assert!(
        last < first * 2.0 + 2.0,
        "cost exploded: {first:.2} -> {last:.2}"
    );
}

#[test]
fn oscar_beats_mercury_on_skewed_keys() {
    // E7: same growth schedule, same skewed keys, same budgets — Oscar's
    // density-adaptive links should outperform Mercury's sampled-CDF links.
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();

    let mut oscar_ov =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 7);
    oscar_ov.grow_to(600, &keys, &degrees).unwrap();
    let oscar_stats = oscar_ov.run_queries(&QueryWorkload::UniformPeers, 600);

    let mut mercury_ov =
        oscar::mercury::new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 7);
    mercury_ov.grow_to(600, &keys, &degrees).unwrap();
    let mercury_stats = mercury_ov.run_queries(&QueryWorkload::UniformPeers, 600);

    assert_eq!(oscar_stats.success_rate, 1.0);
    assert_eq!(mercury_stats.success_rate, 1.0);
    assert!(
        oscar_stats.mean_cost < mercury_stats.mean_cost,
        "oscar {:.2} should beat mercury {:.2} on skewed keys",
        oscar_stats.mean_cost,
        mercury_stats.mean_cost
    );
}

#[test]
fn oscar_exploits_more_degree_volume_than_mercury() {
    // E2/E3 at small scale: constant caps, skewed keys.
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();

    let mut oscar_ov =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 9);
    oscar_ov.grow_to(500, &keys, &degrees).unwrap();
    let oscar_util = degree_volume_utilization(oscar_ov.network());

    let mut mercury_ov =
        oscar::mercury::new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 9);
    mercury_ov.grow_to(500, &keys, &degrees).unwrap();
    let mercury_util = degree_volume_utilization(mercury_ov.network());

    assert!(
        oscar_util > mercury_util,
        "oscar {oscar_util:.2} should exploit more volume than mercury {mercury_util:.2}"
    );
    assert!(
        oscar_util > 0.7,
        "oscar utilisation too low: {oscar_util:.2}"
    );
}

#[test]
fn in_degree_distributions_do_not_change_search_cost_much() {
    // Figure 1(c)'s claim: constant / realistic / stepped in-degree
    // distributions give near-identical search performance.
    let keys = GnutellaKeys::default();
    let mut costs = Vec::new();
    let dists: Vec<(&str, Box<dyn DegreeDistribution>)> = vec![
        ("constant", Box::new(ConstantDegrees::paper())),
        ("realistic", Box::new(SpikyDegrees::paper())),
        ("stepped", Box::new(SteppedDegrees::paper())),
    ];
    for (name, dist) in dists {
        let mut ov =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 11);
        ov.grow_to(500, &keys, dist.as_ref()).unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 500);
        assert_eq!(stats.success_rate, 1.0, "{name}");
        costs.push((name, stats.mean_cost));
    }
    let min = costs.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
    let max = costs.iter().map(|&(_, c)| c).fold(0.0, f64::max);
    assert!(
        max / min < 1.5,
        "degree distributions should perform within 50% of each other: {costs:?}"
    );
}

#[test]
fn range_scan_visits_contiguous_owners() {
    // Order preservation end-to-end: the owners of a key range form a
    // contiguous arc of the ring.
    use oscar::keydist::encode_filename_key;
    let mut ov = oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 13);
    ov.grow_to(300, &GnutellaKeys::default(), &ConstantDegrees::paper())
        .unwrap();
    let net = ov.network();
    let lo = encode_filename_key("d");
    let hi = encode_filename_key("f");
    // All peers with ids in [lo, hi) must be reachable from the owner of
    // `lo` by successor walks without ever leaving the range.
    let Some(start) = net.live_owner_of(lo) else {
        panic!("no owner")
    };
    let mut cursor = start;
    let mut in_range = 0;
    for _ in 0..net.live_count() {
        let id = net.peer(cursor).id;
        if id >= lo && id < hi {
            in_range += 1;
        } else if in_range > 0 {
            break; // left the range: contiguity check done
        }
        cursor = net.ring_successor(cursor).unwrap();
    }
    let expected = net
        .live_peers()
        .filter(|&p| {
            let id = net.peer(p).id;
            id >= lo && id < hi
        })
        .count();
    assert_eq!(in_range, expected, "range owners are contiguous");
}

#[test]
fn construction_cost_is_scalable() {
    // The paper's scalability claim: only O(log N) medians are sampled, so
    // per-peer construction traffic grows logarithmically, not linearly.
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let walk_steps_per_peer = |n: usize, seed: u64| -> f64 {
        let mut ov =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, seed);
        ov.grow_to(n, &keys, &degrees).unwrap();
        ov.network().metrics.get(oscar::sim::MsgKind::WalkStep) as f64 / n as f64
    };
    let small = walk_steps_per_peer(200, 17);
    let large = walk_steps_per_peer(800, 17);
    // 4x the network: log-growth means the per-peer cost grows by at most
    // ~log(800)/log(200) ≈ 1.26; allow 1.8 for constants.
    assert!(
        large / small < 1.8,
        "per-peer construction cost not scalable: {small:.0} -> {large:.0} walk steps"
    );
}
