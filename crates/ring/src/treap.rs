//! Order-statistic treap over [`Id`]s — the backing store of [`crate::Ring`].
//!
//! A treap is a binary search tree (ordered by `Id`) that is simultaneously
//! a max-heap on per-node *priorities*; with pseudo-random priorities the
//! expected depth is O(log n), so insert/remove/rank/select all run in
//! O(log n) instead of the O(n) memmove a sorted `Vec` pays. Each node also
//! carries its subtree size, which turns the tree into an order-statistic
//! structure: `select(rank)` and `count_lt(key)` descend once from the
//! root, and every arc query in `Ring` reduces to rank arithmetic on them.
//!
//! Priorities are not drawn from an RNG but derived by hashing the key with
//! SplitMix64. That keeps the structure deterministic — the tree shape is a
//! pure function of the *set* of ids, independent of insertion order — so
//! `Clone`d networks, replayed experiments, and the `PartialEq` impl all
//! behave like the sorted-Vec representation they replaced.

use oscar_types::Id;

type Link = Option<Box<Node>>;

#[derive(Clone, Debug)]
struct Node {
    id: Id,
    prio: u64,
    /// Size of the subtree rooted here (including this node).
    count: usize,
    left: Link,
    right: Link,
}

/// SplitMix64 finaliser: a cheap, well-mixed hash of the id used as the
/// heap priority. Distinct ids collide with probability 2^-64 per pair.
fn priority(id: Id) -> u64 {
    let mut z = id.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Node {
    fn new(id: Id) -> Box<Node> {
        Box::new(Node {
            id,
            prio: priority(id),
            count: 1,
            left: None,
            right: None,
        })
    }

    /// Recomputes this node's count from its children (call after any
    /// child-pointer change).
    #[inline]
    fn update(&mut self) {
        self.count = 1 + size(&self.left) + size(&self.right);
    }
}

#[inline]
fn size(link: &Link) -> usize {
    link.as_ref().map_or(0, |n| n.count)
}

/// Rotates the subtree right: the left child becomes the root.
fn rotate_right(slot: &mut Box<Node>) {
    let mut l = slot
        .left
        .take()
        .expect("rotate_right requires a left child");
    slot.left = l.right.take();
    slot.update();
    std::mem::swap(slot, &mut l);
    // `slot` is now the old left child, `l` the old root.
    slot.right = Some(l);
    slot.update();
}

/// Rotates the subtree left: the right child becomes the root.
fn rotate_left(slot: &mut Box<Node>) {
    let mut r = slot
        .right
        .take()
        .expect("rotate_left requires a right child");
    slot.right = r.left.take();
    slot.update();
    std::mem::swap(slot, &mut r);
    slot.left = Some(r);
    slot.update();
}

fn insert_into(slot: &mut Link, id: Id) -> bool {
    let Some(node) = slot else {
        *slot = Some(Node::new(id));
        return true;
    };
    use std::cmp::Ordering::*;
    match id.cmp(&node.id) {
        Equal => false,
        Less => {
            let inserted = insert_into(&mut node.left, id);
            if inserted {
                node.count += 1;
                if node.left.as_ref().expect("just inserted").prio > node.prio {
                    rotate_right(node);
                }
            }
            inserted
        }
        Greater => {
            let inserted = insert_into(&mut node.right, id);
            if inserted {
                node.count += 1;
                if node.right.as_ref().expect("just inserted").prio > node.prio {
                    rotate_left(node);
                }
            }
            inserted
        }
    }
}

/// Merges two treaps where every id in `a` is less than every id in `b`.
fn merge(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut x), Some(y)) if x.prio >= y.prio => {
            x.right = merge(x.right.take(), Some(y));
            x.update();
            Some(x)
        }
        (Some(x), Some(mut y)) => {
            y.left = merge(Some(x), y.left.take());
            y.update();
            Some(y)
        }
    }
}

fn remove_from(slot: &mut Link, id: Id) -> bool {
    let Some(node) = slot else {
        return false;
    };
    use std::cmp::Ordering::*;
    match id.cmp(&node.id) {
        Less => {
            let removed = remove_from(&mut node.left, id);
            if removed {
                node.count -= 1;
            }
            removed
        }
        Greater => {
            let removed = remove_from(&mut node.right, id);
            if removed {
                node.count -= 1;
            }
            removed
        }
        Equal => {
            let left = node.left.take();
            let right = node.right.take();
            *slot = merge(left, right);
            true
        }
    }
}

/// The order-statistic treap. All operations are O(log n) expected.
#[derive(Clone, Debug, Default)]
pub(crate) struct Treap {
    root: Link,
}

impl Treap {
    pub fn new() -> Self {
        Treap { root: None }
    }

    #[inline]
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Inserts `id`; returns `false` if already present.
    pub fn insert(&mut self, id: Id) -> bool {
        insert_into(&mut self.root, id)
    }

    /// Removes `id`; returns `false` if absent.
    pub fn remove(&mut self, id: Id) -> bool {
        remove_from(&mut self.root, id)
    }

    /// Number of stored ids strictly less than `key` — the tree analogue of
    /// `slice::partition_point(|&p| p < key)`.
    pub fn count_lt(&self, key: Id) -> usize {
        let mut acc = 0;
        let mut cur = &self.root;
        while let Some(node) = cur {
            if node.id < key {
                acc += 1 + size(&node.left);
                cur = &node.right;
            } else {
                cur = &node.left;
            }
        }
        acc
    }

    /// Number of stored ids less than or equal to `key`.
    pub fn count_le(&self, key: Id) -> usize {
        let mut acc = 0;
        let mut cur = &self.root;
        while let Some(node) = cur {
            if node.id <= key {
                acc += 1 + size(&node.left);
                cur = &node.right;
            } else {
                cur = &node.left;
            }
        }
        acc
    }

    /// Ascending rank of `id`, if present.
    pub fn rank_of(&self, id: Id) -> Option<usize> {
        let mut acc = 0;
        let mut cur = &self.root;
        while let Some(node) = cur {
            use std::cmp::Ordering::*;
            match id.cmp(&node.id) {
                Less => cur = &node.left,
                Equal => return Some(acc + size(&node.left)),
                Greater => {
                    acc += 1 + size(&node.left);
                    cur = &node.right;
                }
            }
        }
        None
    }

    /// The id with ascending rank `rank`.
    ///
    /// # Panics
    /// If `rank >= len()`.
    pub fn select(&self, mut rank: usize) -> Id {
        assert!(rank < self.len(), "rank {rank} out of range");
        let mut cur = self.root.as_ref().expect("non-empty by the assert");
        loop {
            let left = size(&cur.left);
            if rank < left {
                cur = cur.left.as_ref().expect("rank in left subtree");
            } else if rank == left {
                return cur.id;
            } else {
                rank -= left + 1;
                cur = cur.right.as_ref().expect("rank in right subtree");
            }
        }
    }

    /// In-order (ascending) iterator over the stored ids.
    pub fn iter(&self) -> TreapIter<'_> {
        let mut it = TreapIter { stack: Vec::new() };
        it.push_left_spine(&self.root);
        it
    }

    /// In-order iterator over the stored ids `>= key`, starting mid-tree:
    /// O(log n) to position, O(1) amortised per item — no rank-chained
    /// `select` calls.
    pub fn iter_from(&self, key: Id) -> TreapIter<'_> {
        let mut it = TreapIter { stack: Vec::new() };
        // Descend towards `key`, stacking exactly the nodes whose own id
        // (and right subtree) are still ahead of the iteration point —
        // the same invariant `push_left_spine` establishes for rank 0.
        let mut cur = &self.root;
        while let Some(node) = cur {
            if node.id >= key {
                it.stack.push(node);
                cur = &node.left;
            } else {
                cur = &node.right;
            }
        }
        it
    }
}

/// Ascending iterator: an explicit left-spine stack, O(depth) space.
pub(crate) struct TreapIter<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> TreapIter<'a> {
    fn push_left_spine(&mut self, mut cur: &'a Link) {
        while let Some(node) = cur {
            self.stack.push(node);
            cur = &node.left;
        }
    }
}

impl Iterator for TreapIter<'_> {
    type Item = Id;

    fn next(&mut self) -> Option<Id> {
        let node = self.stack.pop()?;
        self.push_left_spine(&node.right);
        Some(node.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_select_count_roundtrip() {
        let mut t = Treap::new();
        for x in [50u64, 10, 40, 20, 30] {
            assert!(t.insert(Id::new(x)));
        }
        assert!(!t.insert(Id::new(30)), "duplicate refused");
        assert_eq!(t.len(), 5);
        for (rank, x) in [10u64, 20, 30, 40, 50].into_iter().enumerate() {
            assert_eq!(t.select(rank), Id::new(x));
            assert_eq!(t.rank_of(Id::new(x)), Some(rank));
        }
        assert_eq!(t.count_lt(Id::new(35)), 3);
        assert_eq!(t.count_le(Id::new(30)), 3);
        assert_eq!(t.rank_of(Id::new(35)), None);
        assert!(t.remove(Id::new(30)));
        assert!(!t.remove(Id::new(30)));
        assert_eq!(t.iter().collect::<Vec<_>>().len(), 4);
    }

    #[test]
    fn iter_from_starts_at_first_ge_key() {
        let mut t = Treap::new();
        for x in [50u64, 10, 40, 20, 30] {
            t.insert(Id::new(x));
        }
        let from = |k: u64| t.iter_from(Id::new(k)).map(Id::raw).collect::<Vec<_>>();
        assert_eq!(from(0), vec![10, 20, 30, 40, 50]);
        assert_eq!(from(30), vec![30, 40, 50], "inclusive at an exact hit");
        assert_eq!(from(31), vec![40, 50]);
        assert_eq!(from(51), Vec::<u64>::new());
        assert_eq!(Treap::new().iter_from(Id::new(7)).count(), 0);
    }

    #[test]
    fn shape_is_balanced_under_sorted_insertion() {
        // Hashed priorities must keep the tree shallow even for the worst
        // BST insertion order. Depth bound: generous c·log2(n).
        let n = 4096usize;
        let mut t = Treap::new();
        for i in 0..n {
            t.insert(Id::new(i as u64));
        }
        fn depth(link: &Link) -> usize {
            link.as_ref()
                .map_or(0, |b| 1 + depth(&b.left).max(depth(&b.right)))
        }
        let d = depth(&t.root);
        assert!(d < 4 * 12, "depth {d} for n={n} — treap degenerated");
    }
}
