//! The original sorted-`Vec` ring, kept as a **reference model**.
//!
//! [`VecRing`] is the implementation `Ring` shipped with before the
//! order-statistic treap rewrite: a sorted `Vec<Id>` with binary search for
//! queries and O(n) memmove for insert/remove. It stays in the tree for two
//! jobs only:
//!
//! * **oracle** — the equivalence property tests in `crate::ring` drive
//!   random operation interleavings through both structures and demand
//!   identical answers;
//! * **baseline** — the `ring_scale` criterion bench in `oscar-bench`
//!   measures the treap's construction speedup against it.
//!
//! Production code must use [`crate::Ring`]; nothing outside tests and
//! benches should depend on this type.

use oscar_types::{Arc, Id};

/// Sorted-`Vec` ordered id set: O(log n) queries, O(n) insert/remove.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecRing {
    ids: Vec<Id>,
}

impl VecRing {
    /// Empty ring.
    pub fn new() -> Self {
        VecRing { ids: Vec::new() }
    }

    /// Ring pre-populated from arbitrary (unsorted, possibly duplicate) ids.
    pub fn from_ids(mut ids: Vec<Id>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        VecRing { ids }
    }

    /// Number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no peers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted identifier slice.
    #[inline]
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Membership test.
    pub fn contains(&self, id: Id) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts a peer; returns `false` if the identifier was present.
    pub fn insert(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a peer; returns `false` if absent.
    pub fn remove(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Rank of `id` in ascending identifier order, if present.
    pub fn rank_of(&self, id: Id) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The peer with the given ascending rank.
    ///
    /// # Panics
    /// If `rank >= len`.
    pub fn select(&self, rank: usize) -> Id {
        self.ids[rank]
    }

    /// The owner of `key` (first peer at-or-after, wrapping).
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p < key);
        Some(if pos == self.ids.len() {
            self.ids[0]
        } else {
            self.ids[pos]
        })
    }

    /// The first peer strictly after `id` clockwise (wraps).
    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p <= id);
        Some(if pos == self.ids.len() {
            self.ids[0]
        } else {
            self.ids[pos]
        })
    }

    /// The first peer strictly before `id` clockwise (wraps).
    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p < id);
        Some(if pos == 0 {
            self.ids[self.ids.len() - 1]
        } else {
            self.ids[pos - 1]
        })
    }

    /// The peer `k` clockwise steps after `id` (which must be present).
    pub fn nth_clockwise_of(&self, id: Id, k: usize) -> Option<Id> {
        let rank = self.rank_of(id)?;
        let n = self.ids.len();
        Some(self.ids[(rank + k) % n])
    }

    /// Number of peers whose identifiers lie in `arc`.
    pub fn count_in_arc(&self, arc: &Arc) -> usize {
        if arc.is_empty() || self.ids.is_empty() {
            return 0;
        }
        if arc.is_full() {
            return self.ids.len();
        }
        let start = arc.start();
        let end = arc.end(); // exclusive
        if start < end {
            self.ids.partition_point(|&p| p < end) - self.ids.partition_point(|&p| p < start)
        } else {
            (self.ids.len() - self.ids.partition_point(|&p| p < start))
                + self.ids.partition_point(|&p| p < end)
        }
    }

    /// The identifiers inside `arc`, clockwise from `arc.start()`.
    pub fn ids_in_arc(&self, arc: &Arc) -> Vec<Id> {
        if arc.is_empty() || self.ids.is_empty() {
            return Vec::new();
        }
        let start_pos = self.ids.partition_point(|&p| p < arc.start());
        let n = self.ids.len();
        let count = self.count_in_arc(arc);
        (0..count).map(|i| self.ids[(start_pos + i) % n]).collect()
    }

    /// Exact lower median of the peers in `arc` by clockwise distance from
    /// `arc.start()`.
    pub fn median_in_arc(&self, arc: &Arc) -> Option<Id> {
        let members = self.count_in_arc(arc);
        if members == 0 {
            return None;
        }
        let start_pos = self.ids.partition_point(|&p| p < arc.start());
        let n = self.ids.len();
        let median_offset = members.div_ceil(2) - 1;
        Some(self.ids[(start_pos + median_offset) % n])
    }

    /// Iterates peers clockwise starting from the owner of `from`
    /// (inclusive), visiting every peer exactly once.
    pub fn iter_clockwise_from(&self, from: Id) -> impl Iterator<Item = Id> + '_ {
        let n = self.ids.len();
        let start = if n == 0 {
            0
        } else {
            self.ids.partition_point(|&p| p < from) % n
        };
        (0..n).map(move |i| self.ids[(start + i) % n])
    }
}
