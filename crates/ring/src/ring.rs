//! The ordered ring of peer identifiers.

use crate::treap::Treap;
use oscar_types::{Arc, Id};

/// An ordered set of peer identifiers on the ring.
///
/// Backed by an order-statistic treap (`crate::treap`): insert, remove,
/// membership, rank/select, neighbour and owner lookups are all O(log n)
/// expected, and the arc queries reduce to rank arithmetic on subtree
/// counts. This is what lets `Network` growth scale far past the paper's
/// 10k peers — the previous sorted-`Vec` representation (preserved as
/// [`crate::reference::VecRing`], the property-test oracle and bench
/// baseline) paid an O(n) memmove per membership change, making
/// bootstrap-and-grow Θ(n²).
///
/// Invariants (enforced by construction, checked by property tests against
/// the oracle):
/// * stored ids are strictly ascending in iteration order (no duplicates);
/// * all queries treat the order as circular.
#[derive(Clone, Default)]
pub struct Ring {
    tree: Treap,
}

impl Ring {
    /// Empty ring.
    pub fn new() -> Self {
        Ring { tree: Treap::new() }
    }

    /// Ring pre-populated from arbitrary (unsorted, possibly duplicate) ids.
    pub fn from_ids(ids: Vec<Id>) -> Self {
        let mut ring = Ring::new();
        for id in ids {
            ring.tree.insert(id);
        }
        ring
    }

    /// Number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True iff no peers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.len() == 0
    }

    /// The identifiers in ascending order (in-order tree walk, O(n) total).
    #[inline]
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.tree.iter()
    }

    /// Membership test.
    pub fn contains(&self, id: Id) -> bool {
        self.tree.rank_of(id).is_some()
    }

    /// Inserts a peer; returns `false` if the identifier was present.
    pub fn insert(&mut self, id: Id) -> bool {
        self.tree.insert(id)
    }

    /// Removes a peer; returns `false` if absent.
    pub fn remove(&mut self, id: Id) -> bool {
        self.tree.remove(id)
    }

    /// Rank of `id` in ascending identifier order, if present.
    pub fn rank_of(&self, id: Id) -> Option<usize> {
        self.tree.rank_of(id)
    }

    /// The peer with the given ascending rank.
    ///
    /// # Panics
    /// If `rank >= len`.
    pub fn select(&self, rank: usize) -> Id {
        self.tree.select(rank)
    }

    /// The **owner** of `key`: the first peer at-or-after `key` clockwise
    /// (Chord successor convention — a peer owns the arc
    /// `(predecessor, self]`). `None` on an empty ring.
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.is_empty() {
            return None;
        }
        let pos = self.tree.count_lt(key);
        Some(if pos == self.len() {
            self.select(0) // wrap
        } else {
            self.select(pos)
        })
    }

    /// The first peer **strictly after** `id` clockwise (wraps; returns
    /// `id` itself only when it is the sole peer). `None` on empty ring.
    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.is_empty() {
            return None;
        }
        let pos = self.tree.count_le(id);
        Some(if pos == self.len() {
            self.select(0)
        } else {
            self.select(pos)
        })
    }

    /// The first peer **strictly before** `id` clockwise (wraps; returns
    /// `id` itself only when it is the sole peer). `None` on empty ring.
    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        if self.is_empty() {
            return None;
        }
        let pos = self.tree.count_lt(id);
        Some(if pos == 0 {
            self.select(self.len() - 1)
        } else {
            self.select(pos - 1)
        })
    }

    /// The peer `k` clockwise steps after `id` (which must be present).
    pub fn nth_clockwise_of(&self, id: Id, k: usize) -> Option<Id> {
        let rank = self.rank_of(id)?;
        let n = self.len();
        Some(self.select((rank + k) % n))
    }

    /// Number of peers whose identifiers lie in `arc` — pure rank
    /// arithmetic, O(log n).
    pub fn count_in_arc(&self, arc: &Arc) -> usize {
        if arc.is_empty() || self.is_empty() {
            return 0;
        }
        if arc.is_full() {
            return self.len();
        }
        let start = arc.start();
        let end = arc.end(); // exclusive
        if start < end {
            // non-wrapping: [start, end)
            self.tree.count_lt(end) - self.tree.count_lt(start)
        } else {
            // wrapping: [start, MAX] ∪ [0, end)
            (self.len() - self.tree.count_lt(start)) + self.tree.count_lt(end)
        }
    }

    /// The identifiers inside `arc`, in clockwise order starting at
    /// `arc.start()`.
    pub fn ids_in_arc(&self, arc: &Arc) -> Vec<Id> {
        if arc.is_empty() || self.is_empty() {
            return Vec::new();
        }
        let start_pos = self.tree.count_lt(arc.start());
        let n = self.len();
        let count = self.count_in_arc(arc);
        (0..count)
            .map(|i| self.select((start_pos + i) % n))
            .collect()
    }

    /// Exact median of the peers in `arc`, measured by clockwise distance
    /// from `arc.start()` — the oracle for Oscar's sampled medians.
    ///
    /// With `m` peers the median is the peer at clockwise rank
    /// `⌈m/2⌉ - 1` within the arc (lower median). `None` if the arc holds
    /// no peer.
    pub fn median_in_arc(&self, arc: &Arc) -> Option<Id> {
        let members = self.count_in_arc(arc);
        if members == 0 {
            return None;
        }
        let start_pos = self.tree.count_lt(arc.start());
        let n = self.len();
        let median_offset = members.div_ceil(2) - 1;
        Some(self.select((start_pos + median_offset) % n))
    }

    /// Iterates peers clockwise starting from the owner of `from`
    /// (inclusive), visiting every peer exactly once.
    ///
    /// An in-order treap walk from mid-tree (ids `>= from`) chained with
    /// the wrapped prefix (ids `< from`): O(log n) to start, O(n) for a
    /// full walk — not the O(n log n) a rank-chained `select` would pay.
    pub fn iter_clockwise_from(&self, from: Id) -> impl Iterator<Item = Id> + '_ {
        let wrapped = self.tree.count_lt(from);
        self.tree
            .iter_from(from)
            .chain(self.tree.iter().take(wrapped))
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.ids()).finish()
    }
}

/// Logical (set) equality: same ids, regardless of tree shape.
impl PartialEq for Ring {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.ids().eq(other.ids())
    }
}

impl Eq for Ring {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(ids: &[u64]) -> Ring {
        Ring::from_ids(ids.iter().map(|&x| Id::new(x)).collect())
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Ring::new();
        assert!(r.insert(Id::new(5)));
        assert!(!r.insert(Id::new(5)), "duplicate refused");
        assert!(r.contains(Id::new(5)));
        assert!(r.remove(Id::new(5)));
        assert!(!r.remove(Id::new(5)));
        assert!(r.is_empty());
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let r = ring(&[30, 10, 20, 10]);
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.ids().collect::<Vec<_>>(),
            vec![Id::new(10), Id::new(20), Id::new(30)]
        );
    }

    #[test]
    fn owner_is_chord_successor() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.owner_of(Id::new(5)), Some(Id::new(10)));
        assert_eq!(r.owner_of(Id::new(10)), Some(Id::new(10)), "exact hit owns");
        assert_eq!(r.owner_of(Id::new(11)), Some(Id::new(20)));
        assert_eq!(r.owner_of(Id::new(31)), Some(Id::new(10)), "wraps");
    }

    #[test]
    fn successor_predecessor_wrap() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.successor_of(Id::new(10)), Some(Id::new(20)));
        assert_eq!(r.successor_of(Id::new(30)), Some(Id::new(10)));
        assert_eq!(r.predecessor_of(Id::new(10)), Some(Id::new(30)));
        assert_eq!(r.predecessor_of(Id::new(25)), Some(Id::new(20)));
        // non-member queries are fine too
        assert_eq!(r.successor_of(Id::new(15)), Some(Id::new(20)));
    }

    #[test]
    fn single_peer_is_its_own_neighbourhood() {
        let r = ring(&[42]);
        assert_eq!(r.successor_of(Id::new(42)), Some(Id::new(42)));
        assert_eq!(r.predecessor_of(Id::new(42)), Some(Id::new(42)));
        assert_eq!(r.owner_of(Id::new(7)), Some(Id::new(42)));
    }

    #[test]
    fn empty_ring_has_no_answers() {
        let r = Ring::new();
        assert_eq!(r.owner_of(Id::new(1)), None);
        assert_eq!(r.successor_of(Id::new(1)), None);
        assert_eq!(r.predecessor_of(Id::new(1)), None);
    }

    #[test]
    fn rank_and_select_roundtrip() {
        let r = ring(&[10, 20, 30, 40]);
        for (expect_rank, id) in [(0usize, 10u64), (1, 20), (2, 30), (3, 40)] {
            assert_eq!(r.rank_of(Id::new(id)), Some(expect_rank));
            assert_eq!(r.select(expect_rank), Id::new(id));
        }
        assert_eq!(r.rank_of(Id::new(15)), None);
    }

    #[test]
    fn nth_clockwise_wraps() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.nth_clockwise_of(Id::new(20), 1), Some(Id::new(30)));
        assert_eq!(r.nth_clockwise_of(Id::new(20), 2), Some(Id::new(10)));
        assert_eq!(r.nth_clockwise_of(Id::new(20), 3), Some(Id::new(20)));
        assert_eq!(r.nth_clockwise_of(Id::new(15), 1), None, "non-member");
    }

    #[test]
    fn count_in_arc_plain_and_wrapping() {
        let r = ring(&[10, 20, 30, 40]);
        assert_eq!(r.count_in_arc(&Arc::between(Id::new(10), Id::new(30))), 2); // 10, 20
        assert_eq!(r.count_in_arc(&Arc::between(Id::new(35), Id::new(15))), 2); // 40, 10
        assert_eq!(r.count_in_arc(&Arc::FULL), 4);
        assert_eq!(r.count_in_arc(&Arc::EMPTY), 0);
    }

    #[test]
    fn ids_in_arc_clockwise_order() {
        let r = ring(&[10, 20, 30, 40]);
        let arc = Arc::between(Id::new(35), Id::new(25));
        assert_eq!(
            r.ids_in_arc(&arc),
            vec![Id::new(40), Id::new(10), Id::new(20)]
        );
    }

    #[test]
    fn median_in_arc_oracle() {
        let r = ring(&[10, 20, 30, 40, 50]);
        // arc [5, 55) holds all five; lower median is the 3rd (rank 2): 30
        let arc = Arc::between(Id::new(5), Id::new(55));
        assert_eq!(r.median_in_arc(&arc), Some(Id::new(30)));
        // arc with four members [10,50): 10,20,30,40 -> lower median 20
        let arc4 = Arc::between(Id::new(10), Id::new(50));
        assert_eq!(r.median_in_arc(&arc4), Some(Id::new(20)));
        // empty arc
        assert_eq!(
            r.median_in_arc(&Arc::between(Id::new(11), Id::new(19))),
            None
        );
    }

    #[test]
    fn median_in_wrapping_arc() {
        let r = ring(&[10, 20, 900, 950]);
        // arc starting at 895 wrapping to 25: members 900, 950, 10, 20 -> lower median 950
        let arc = Arc::between(Id::new(895), Id::new(25));
        assert_eq!(r.median_in_arc(&arc), Some(Id::new(950)));
    }

    #[test]
    fn iter_clockwise_visits_all_once() {
        let r = ring(&[10, 20, 30]);
        let seen: Vec<Id> = r.iter_clockwise_from(Id::new(25)).collect();
        assert_eq!(seen, vec![Id::new(30), Id::new(10), Id::new(20)]);
    }

    #[test]
    fn equality_is_content_not_history() {
        // Same set via different operation histories must compare equal.
        let mut a = ring(&[10, 20, 30, 40]);
        a.remove(Id::new(40));
        let b = ring(&[30, 20, 10]);
        assert_eq!(a, b);
        assert_ne!(a, ring(&[10, 20]));
        assert_eq!(
            format!("{a:?}"),
            format!("{:?}", b.ids().collect::<Vec<_>>())
        );
    }

    proptest! {
        #[test]
        fn prop_sorted_unique(ids in prop::collection::vec(any::<u64>(), 0..200)) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let s: Vec<Id> = r.ids().collect();
            for w in s.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn prop_owner_owns_its_arc(ids in prop::collection::vec(any::<u64>(), 1..100), key: u64) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let key = Id::new(key);
            let owner = r.owner_of(key).unwrap();
            let pred = r.predecessor_of(owner).unwrap();
            // key ∈ (pred, owner]  (full ring when pred == owner)
            prop_assert!(key.in_cw_open_closed(pred, owner));
        }

        #[test]
        fn prop_successor_cycle_covers_ring(ids in prop::collection::vec(any::<u64>(), 1..50)) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let n = r.len();
            let start = r.select(0);
            let mut cur = start;
            for _ in 0..n {
                cur = r.successor_of(cur).unwrap();
            }
            prop_assert_eq!(cur, start, "n successor hops return to start");
        }

        #[test]
        fn prop_count_in_complementary_arcs(ids in prop::collection::vec(any::<u64>(), 0..100), a: u64, b: u64) {
            prop_assume!(a != b);
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let x = Arc::between(Id::new(a), Id::new(b));
            let y = Arc::between(Id::new(b), Id::new(a));
            prop_assert_eq!(r.count_in_arc(&x) + r.count_in_arc(&y), r.len());
        }

        #[test]
        fn prop_median_is_member_and_halves(ids in prop::collection::hash_set(any::<u64>(), 1..80)) {
            let ids: Vec<Id> = ids.into_iter().map(Id::new).collect();
            let r = Ring::from_ids(ids);
            let arc = Arc::FULL;
            let m = r.median_in_arc(&arc).unwrap();
            prop_assert!(r.contains(m));
            // Count members at-or-before the median (clockwise from arc
            // start): must be ⌈n/2⌉ by the lower-median convention.
            let upto = Arc::between(arc.start(), m);
            let at_or_before = r.count_in_arc(&upto) + 1; // +1 for m itself
            prop_assert_eq!(at_or_before, r.len().div_ceil(2));
        }
    }

    /// Operational equivalence against the sorted-Vec reference model: any
    /// interleaving of mutations and queries must be indistinguishable.
    mod oracle_equivalence {
        use super::*;
        use crate::reference::VecRing;

        /// Compare every read-only query on both structures.
        fn assert_same_views(
            treap: &Ring,
            oracle: &VecRing,
            probe: Id,
            arc: &Arc,
        ) -> std::result::Result<(), TestCaseError> {
            prop_assert_eq!(treap.len(), oracle.len());
            prop_assert_eq!(treap.is_empty(), oracle.is_empty());
            prop_assert_eq!(treap.ids().collect::<Vec<_>>(), oracle.ids().to_vec());
            prop_assert_eq!(treap.contains(probe), oracle.contains(probe));
            prop_assert_eq!(treap.rank_of(probe), oracle.rank_of(probe));
            prop_assert_eq!(treap.owner_of(probe), oracle.owner_of(probe));
            prop_assert_eq!(treap.successor_of(probe), oracle.successor_of(probe));
            prop_assert_eq!(treap.predecessor_of(probe), oracle.predecessor_of(probe));
            prop_assert_eq!(
                treap.nth_clockwise_of(probe, 3),
                oracle.nth_clockwise_of(probe, 3)
            );
            for rank in 0..treap.len() {
                prop_assert_eq!(treap.select(rank), oracle.select(rank));
            }
            prop_assert_eq!(treap.count_in_arc(arc), oracle.count_in_arc(arc));
            prop_assert_eq!(treap.ids_in_arc(arc), oracle.ids_in_arc(arc));
            prop_assert_eq!(treap.median_in_arc(arc), oracle.median_in_arc(arc));
            prop_assert_eq!(
                treap.iter_clockwise_from(probe).collect::<Vec<_>>(),
                oracle.iter_clockwise_from(probe).collect::<Vec<_>>()
            );
            Ok(())
        }

        proptest! {
            #[test]
            fn prop_treap_matches_vec_reference(
                // Small id universe (0..64) forces frequent duplicate
                // inserts and hits on remove; raw u64 arc endpoints produce
                // wrapping and non-wrapping arcs alike.
                ops in prop::collection::vec((0u8..2, 0u64..64), 1..200),
                probe: u64,
                a: u64,
                b: u64,
            ) {
                let mut treap = Ring::new();
                let mut oracle = VecRing::new();
                let arcs = [
                    Arc::between(Id::new(a), Id::new(b)),
                    Arc::between(Id::new(b), Id::new(a)),
                    Arc::FULL,
                    Arc::EMPTY,
                ];
                for (op, x) in ops {
                    let id = Id::new(x);
                    match op {
                        0 => prop_assert_eq!(treap.insert(id), oracle.insert(id)),
                        _ => prop_assert_eq!(treap.remove(id), oracle.remove(id)),
                    }
                    for arc in &arcs {
                        assert_same_views(&treap, &oracle, Id::new(probe), arc)?;
                    }
                }
            }

            #[test]
            fn prop_from_ids_matches_vec_reference(
                ids in prop::collection::vec(any::<u64>(), 0..150),
                probe: u64,
                a: u64,
                b: u64,
            ) {
                let ids: Vec<Id> = ids.into_iter().map(Id::new).collect();
                let treap = Ring::from_ids(ids.clone());
                let oracle = VecRing::from_ids(ids);
                let arc = Arc::between(Id::new(a), Id::new(b));
                assert_same_views(&treap, &oracle, Id::new(probe), &arc)?;
            }
        }
    }
}
