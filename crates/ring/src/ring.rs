//! The ordered ring of peer identifiers.

use oscar_types::{Arc, Id};

/// An ordered set of peer identifiers on the ring.
///
/// Invariants (enforced by construction, checked by `debug_assert`s and
/// property tests):
/// * `ids` is strictly ascending (no duplicates);
/// * all queries treat the vector as circular.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ring {
    ids: Vec<Id>,
}

impl Ring {
    /// Empty ring.
    pub fn new() -> Self {
        Ring { ids: Vec::new() }
    }

    /// Ring pre-populated from arbitrary (unsorted, possibly duplicate) ids.
    pub fn from_ids(mut ids: Vec<Id>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Ring { ids }
    }

    /// Number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no peers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted identifier slice.
    #[inline]
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Membership test.
    pub fn contains(&self, id: Id) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts a peer; returns `false` if the identifier was present.
    pub fn insert(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a peer; returns `false` if absent.
    pub fn remove(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Rank of `id` in ascending identifier order, if present.
    pub fn rank_of(&self, id: Id) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The peer with the given ascending rank.
    ///
    /// # Panics
    /// If `rank >= len`.
    pub fn select(&self, rank: usize) -> Id {
        self.ids[rank]
    }

    /// The **owner** of `key`: the first peer at-or-after `key` clockwise
    /// (Chord successor convention — a peer owns the arc
    /// `(predecessor, self]`). `None` on an empty ring.
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p < key);
        Some(if pos == self.ids.len() {
            self.ids[0] // wrap
        } else {
            self.ids[pos]
        })
    }

    /// The first peer **strictly after** `id` clockwise (wraps; returns
    /// `id` itself only when it is the sole peer). `None` on empty ring.
    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p <= id);
        Some(if pos == self.ids.len() {
            self.ids[0]
        } else {
            self.ids[pos]
        })
    }

    /// The first peer **strictly before** `id` clockwise (wraps; returns
    /// `id` itself only when it is the sole peer). `None` on empty ring.
    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        if self.ids.is_empty() {
            return None;
        }
        let pos = self.ids.partition_point(|&p| p < id);
        Some(if pos == 0 {
            self.ids[self.ids.len() - 1]
        } else {
            self.ids[pos - 1]
        })
    }

    /// The peer `k` clockwise steps after `id` (which must be present).
    pub fn nth_clockwise_of(&self, id: Id, k: usize) -> Option<Id> {
        let rank = self.rank_of(id)?;
        let n = self.ids.len();
        Some(self.ids[(rank + k) % n])
    }

    /// Number of peers whose identifiers lie in `arc`.
    pub fn count_in_arc(&self, arc: &Arc) -> usize {
        if arc.is_empty() || self.ids.is_empty() {
            return 0;
        }
        if arc.is_full() {
            return self.ids.len();
        }
        let start = arc.start();
        let end = arc.end(); // exclusive
        if start < end {
            // non-wrapping: [start, end)
            self.ids.partition_point(|&p| p < end) - self.ids.partition_point(|&p| p < start)
        } else {
            // wrapping: [start, MAX] ∪ [0, end)
            (self.ids.len() - self.ids.partition_point(|&p| p < start))
                + self.ids.partition_point(|&p| p < end)
        }
    }

    /// The identifiers inside `arc`, in clockwise order starting at
    /// `arc.start()`.
    pub fn ids_in_arc(&self, arc: &Arc) -> Vec<Id> {
        if arc.is_empty() || self.ids.is_empty() {
            return Vec::new();
        }
        let start_pos = self.ids.partition_point(|&p| p < arc.start());
        let n = self.ids.len();
        let count = self.count_in_arc(arc);
        (0..count).map(|i| self.ids[(start_pos + i) % n]).collect()
    }

    /// Exact median of the peers in `arc`, measured by clockwise distance
    /// from `arc.start()` — the oracle for Oscar's sampled medians.
    ///
    /// With `m` peers the median is the peer at clockwise rank
    /// `⌈m/2⌉ - 1` within the arc (lower median). `None` if the arc holds
    /// no peer.
    pub fn median_in_arc(&self, arc: &Arc) -> Option<Id> {
        let members = self.count_in_arc(arc);
        if members == 0 {
            return None;
        }
        let start_pos = self.ids.partition_point(|&p| p < arc.start());
        let n = self.ids.len();
        let median_offset = members.div_ceil(2) - 1;
        Some(self.ids[(start_pos + median_offset) % n])
    }

    /// Iterates peers clockwise starting from the owner of `from`
    /// (inclusive), visiting every peer exactly once.
    pub fn iter_clockwise_from(&self, from: Id) -> impl Iterator<Item = Id> + '_ {
        let n = self.ids.len();
        let start = if n == 0 {
            0
        } else {
            self.ids.partition_point(|&p| p < from) % n
        };
        (0..n).map(move |i| self.ids[(start + i) % n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(ids: &[u64]) -> Ring {
        Ring::from_ids(ids.iter().map(|&x| Id::new(x)).collect())
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Ring::new();
        assert!(r.insert(Id::new(5)));
        assert!(!r.insert(Id::new(5)), "duplicate refused");
        assert!(r.contains(Id::new(5)));
        assert!(r.remove(Id::new(5)));
        assert!(!r.remove(Id::new(5)));
        assert!(r.is_empty());
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let r = ring(&[30, 10, 20, 10]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.ids(), &[Id::new(10), Id::new(20), Id::new(30)]);
    }

    #[test]
    fn owner_is_chord_successor() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.owner_of(Id::new(5)), Some(Id::new(10)));
        assert_eq!(r.owner_of(Id::new(10)), Some(Id::new(10)), "exact hit owns");
        assert_eq!(r.owner_of(Id::new(11)), Some(Id::new(20)));
        assert_eq!(r.owner_of(Id::new(31)), Some(Id::new(10)), "wraps");
    }

    #[test]
    fn successor_predecessor_wrap() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.successor_of(Id::new(10)), Some(Id::new(20)));
        assert_eq!(r.successor_of(Id::new(30)), Some(Id::new(10)));
        assert_eq!(r.predecessor_of(Id::new(10)), Some(Id::new(30)));
        assert_eq!(r.predecessor_of(Id::new(25)), Some(Id::new(20)));
        // non-member queries are fine too
        assert_eq!(r.successor_of(Id::new(15)), Some(Id::new(20)));
    }

    #[test]
    fn single_peer_is_its_own_neighbourhood() {
        let r = ring(&[42]);
        assert_eq!(r.successor_of(Id::new(42)), Some(Id::new(42)));
        assert_eq!(r.predecessor_of(Id::new(42)), Some(Id::new(42)));
        assert_eq!(r.owner_of(Id::new(7)), Some(Id::new(42)));
    }

    #[test]
    fn empty_ring_has_no_answers() {
        let r = Ring::new();
        assert_eq!(r.owner_of(Id::new(1)), None);
        assert_eq!(r.successor_of(Id::new(1)), None);
        assert_eq!(r.predecessor_of(Id::new(1)), None);
    }

    #[test]
    fn rank_and_select_roundtrip() {
        let r = ring(&[10, 20, 30, 40]);
        for (expect_rank, id) in [(0usize, 10u64), (1, 20), (2, 30), (3, 40)] {
            assert_eq!(r.rank_of(Id::new(id)), Some(expect_rank));
            assert_eq!(r.select(expect_rank), Id::new(id));
        }
        assert_eq!(r.rank_of(Id::new(15)), None);
    }

    #[test]
    fn nth_clockwise_wraps() {
        let r = ring(&[10, 20, 30]);
        assert_eq!(r.nth_clockwise_of(Id::new(20), 1), Some(Id::new(30)));
        assert_eq!(r.nth_clockwise_of(Id::new(20), 2), Some(Id::new(10)));
        assert_eq!(r.nth_clockwise_of(Id::new(20), 3), Some(Id::new(20)));
        assert_eq!(r.nth_clockwise_of(Id::new(15), 1), None, "non-member");
    }

    #[test]
    fn count_in_arc_plain_and_wrapping() {
        let r = ring(&[10, 20, 30, 40]);
        assert_eq!(r.count_in_arc(&Arc::between(Id::new(10), Id::new(30))), 2); // 10, 20
        assert_eq!(r.count_in_arc(&Arc::between(Id::new(35), Id::new(15))), 2); // 40, 10
        assert_eq!(r.count_in_arc(&Arc::FULL), 4);
        assert_eq!(r.count_in_arc(&Arc::EMPTY), 0);
    }

    #[test]
    fn ids_in_arc_clockwise_order() {
        let r = ring(&[10, 20, 30, 40]);
        let arc = Arc::between(Id::new(35), Id::new(25));
        assert_eq!(
            r.ids_in_arc(&arc),
            vec![Id::new(40), Id::new(10), Id::new(20)]
        );
    }

    #[test]
    fn median_in_arc_oracle() {
        let r = ring(&[10, 20, 30, 40, 50]);
        // arc [5, 55) holds all five; lower median is the 3rd (rank 2): 30
        let arc = Arc::between(Id::new(5), Id::new(55));
        assert_eq!(r.median_in_arc(&arc), Some(Id::new(30)));
        // arc with four members [10,50): 10,20,30,40 -> lower median 20
        let arc4 = Arc::between(Id::new(10), Id::new(50));
        assert_eq!(r.median_in_arc(&arc4), Some(Id::new(20)));
        // empty arc
        assert_eq!(
            r.median_in_arc(&Arc::between(Id::new(11), Id::new(19))),
            None
        );
    }

    #[test]
    fn median_in_wrapping_arc() {
        let r = ring(&[10, 20, 900, 950]);
        // arc starting at 895 wrapping to 25: members 900, 950, 10, 20 -> lower median 950
        let arc = Arc::between(Id::new(895), Id::new(25));
        assert_eq!(r.median_in_arc(&arc), Some(Id::new(950)));
    }

    #[test]
    fn iter_clockwise_visits_all_once() {
        let r = ring(&[10, 20, 30]);
        let seen: Vec<Id> = r.iter_clockwise_from(Id::new(25)).collect();
        assert_eq!(seen, vec![Id::new(30), Id::new(10), Id::new(20)]);
    }

    proptest! {
        #[test]
        fn prop_sorted_unique(ids in prop::collection::vec(any::<u64>(), 0..200)) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let s = r.ids();
            for w in s.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn prop_owner_owns_its_arc(ids in prop::collection::vec(any::<u64>(), 1..100), key: u64) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let key = Id::new(key);
            let owner = r.owner_of(key).unwrap();
            let pred = r.predecessor_of(owner).unwrap();
            // key ∈ (pred, owner]  (full ring when pred == owner)
            prop_assert!(key.in_cw_open_closed(pred, owner));
        }

        #[test]
        fn prop_successor_cycle_covers_ring(ids in prop::collection::vec(any::<u64>(), 1..50)) {
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let n = r.len();
            let start = r.select(0);
            let mut cur = start;
            for _ in 0..n {
                cur = r.successor_of(cur).unwrap();
            }
            prop_assert_eq!(cur, start, "n successor hops return to start");
        }

        #[test]
        fn prop_count_in_complementary_arcs(ids in prop::collection::vec(any::<u64>(), 0..100), a: u64, b: u64) {
            prop_assume!(a != b);
            let r = Ring::from_ids(ids.into_iter().map(Id::new).collect());
            let x = Arc::between(Id::new(a), Id::new(b));
            let y = Arc::between(Id::new(b), Id::new(a));
            prop_assert_eq!(r.count_in_arc(&x) + r.count_in_arc(&y), r.len());
        }

        #[test]
        fn prop_median_is_member_and_halves(ids in prop::collection::hash_set(any::<u64>(), 1..80)) {
            let ids: Vec<Id> = ids.into_iter().map(Id::new).collect();
            let r = Ring::from_ids(ids);
            let arc = Arc::FULL;
            let m = r.median_in_arc(&arc).unwrap();
            prop_assert!(r.contains(m));
            // Count members at-or-before the median (clockwise from arc
            // start): must be ⌈n/2⌉ by the lower-median convention.
            let upto = Arc::between(arc.start(), m);
            let at_or_before = r.count_in_arc(&upto) + 1; // +1 for m itself
            prop_assert_eq!(at_or_before, r.len().div_ceil(2));
        }
    }
}
