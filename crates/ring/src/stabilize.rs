//! Ring stabilisation after crashes.
//!
//! The paper assumes "the ring structure was preserved by the devised
//! self-stabilizing techniques (e.g. Chord ring maintenance algorithms)".
//! We model the *outcome* of those protocols rather than their message
//! exchange: after a crash wave, the live peers' successor/predecessor
//! pointers are re-stitched as if Chord stabilisation had converged —
//! i.e. the live ring is simply the sub-ring induced by live peers.
//!
//! The message-level cost of stabilisation is orthogonal to the paper's
//! metric (search cost), which is why modelling the converged state is the
//! faithful choice; the unstabilised fault model in `oscar-sim::churn`
//! exists to quantify what the assumption is worth.

use crate::Ring;
use oscar_types::Id;

/// Builds the stabilised (live-only) ring from a full ring and a liveness
/// predicate. The result is exactly the sub-ring of live peers.
pub fn stitch_live_ring<F>(full: &Ring, mut is_alive: F) -> Ring
where
    F: FnMut(Id) -> bool,
{
    Ring::from_ids(full.ids().filter(|&id| is_alive(id)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;
    use rand::Rng;

    fn ring(ids: &[u64]) -> Ring {
        Ring::from_ids(ids.iter().map(|&x| Id::new(x)).collect())
    }

    #[test]
    fn stitching_removes_dead_only() {
        let full = ring(&[10, 20, 30, 40, 50]);
        let live = stitch_live_ring(&full, |id| id.raw() != 20 && id.raw() != 40);
        assert_eq!(
            live.ids().collect::<Vec<_>>(),
            vec![Id::new(10), Id::new(30), Id::new(50)]
        );
        // successor chain skips the dead
        assert_eq!(live.successor_of(Id::new(10)), Some(Id::new(30)));
    }

    #[test]
    fn all_alive_is_identity() {
        let full = ring(&[1, 2, 3]);
        let live = stitch_live_ring(&full, |_| true);
        assert_eq!(live, full);
    }

    #[test]
    fn all_dead_is_empty() {
        let full = ring(&[1, 2, 3]);
        let live = stitch_live_ring(&full, |_| false);
        assert!(live.is_empty());
    }

    #[test]
    fn stitched_ring_preserves_order_under_random_kill() {
        let mut rng = SeedTree::new(5).rng();
        let ids: Vec<Id> = (0..1000).map(|_| Id::new(rng.gen())).collect();
        let full = Ring::from_ids(ids);
        let live = stitch_live_ring(&full, |_| rng.gen::<f64>() > 0.33);
        // order preserved, strictly ascending
        let live_ids: Vec<Id> = live.ids().collect();
        for w in live_ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        // every live id was in the full ring
        for &id in &live_ids {
            assert!(full.contains(id));
        }
    }
}
