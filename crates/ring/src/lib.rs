//! # oscar-ring — the ordered identifier ring
//!
//! Every overlay in this workspace (Oscar, Mercury) sits on the same
//! substrate the paper assumes: a ring of peers ordered by identifier with
//! Chord-style successor/predecessor maintenance. This crate is that
//! substrate: an ordered set of [`Id`](oscar_types::Id)s with
//!
//! * successor / predecessor / owner-of-key queries (wrap-around),
//! * rank / select (needed to resolve "query the k-th live peer" workloads
//!   and to compute exact medians as test oracles),
//! * arc population counts and exact arc medians (the oracles against which
//!   sampling-based estimation is validated),
//! * a stabilisation helper that re-stitches the ring after crashes.
//!
//! The representation is an **order-statistic treap** (the private `treap` module): a BST
//! keyed by id, heap-ordered on hash-derived priorities, with subtree
//! counts. Every operation — insert, remove, rank, select, and the arc
//! queries via rank arithmetic — runs in O(log n) expected, which keeps
//! bootstrap-and-grow linearithmic and makes 10⁵–10⁶-peer simulations
//! feasible. The previous sorted-`Vec` representation (O(n) memmove per
//! membership change, Θ(n²) growth) survives as [`reference::VecRing`]:
//! the oracle for the equivalence property tests and the baseline for the
//! `ring_scale` bench in `oscar-bench`.

pub mod reference;
pub mod ring;
pub mod stabilize;
mod treap;

pub use ring::Ring;
pub use stabilize::stitch_live_ring;
