//! # oscar-ring — the sorted identifier ring
//!
//! Every overlay in this workspace (Oscar, Mercury) sits on the same
//! substrate the paper assumes: a ring of peers ordered by identifier with
//! Chord-style successor/predecessor maintenance. This crate is that
//! substrate: an ordered set of [`Id`]s with
//!
//! * successor / predecessor / owner-of-key queries (wrap-around),
//! * rank / select (needed to resolve "query the k-th live peer" workloads
//!   and to compute exact medians as test oracles),
//! * arc population counts and exact arc medians (the oracles against which
//!   sampling-based estimation is validated),
//! * a stabilisation helper that re-stitches the ring after crashes.
//!
//! The representation is a sorted `Vec<Id>`: at the paper's scale (10⁴
//! peers) binary search + memmove beats any tree in both time and clarity.
//! Insert/remove are O(n); the simulation performs ~10⁴ of each per run,
//! which is microseconds of memmove. (An order-statistics tree would be the
//! swap-in replacement at 10⁷+ peers.)

pub mod ring;
pub mod stabilize;

pub use ring::Ring;
pub use stabilize::stitch_live_ring;
