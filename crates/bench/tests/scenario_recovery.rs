//! Scenario-engine acceptance: the regional-outage campaign must
//! actually recover, and the machine-runnable scenario subset must be
//! bit-deterministic on a protocol driver.

use oscar_bench::{machine_phases_for, run_scenario, standard_scenarios, Scale, Scenario};
use oscar_keydist::GnutellaKeys;
use oscar_protocol::{FaultPlan, PeerConfig, RepairPolicy};
use oscar_sim::{run_machine_phases, DesDriver, MachineChurnConfig};
use oscar_types::SeedTree;

fn by_name(name: &str) -> Scenario {
    standard_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"))
}

#[test]
fn regional_outage_recovers_to_pre_outage_delivery() {
    // The scenario kills a contiguous 15% ring arc under reactive-k2,
    // heals, and must end at least as deliverable as before the outage.
    // The shipped check carries 0.005 slack (background churn can cost
    // a stray query in any window); this test re-asserts the strict
    // recovered >= pre comparison at a pinned scale and seed so a
    // future check edit cannot silently weaken the criterion.
    let sc = by_name("regional_outage");
    let out = run_scenario(&sc, &Scale::small(300, 17)).unwrap();
    let pre = out.phase_tail_mean(0, |w| w.queries.success_rate);
    let recovered = out.phase_tail_mean(3, |w| w.queries.success_rate);
    assert!(pre > 0.9, "steady phase must be healthy, got {pre}");
    // Backtracking routes around the hole, so the outage shows up as
    // wasted traffic (dead-link probes) and tail cost, not lost
    // deliveries — the unstabilised-ring waste story.
    let steady_waste = out.phase_tail_mean(0, |w| w.queries.mean_wasted);
    let damaged_waste = out.phase_tail_mean(1, |w| w.queries.mean_wasted);
    assert!(
        damaged_waste > steady_waste * 5.0 + 0.1,
        "killing 15% of the ring must be observable as wasted traffic: \
         steady {steady_waste}, outage {damaged_waste}"
    );
    let healed_waste = out.phase_tail_mean(3, |w| w.queries.mean_wasted);
    assert!(
        healed_waste < damaged_waste / 2.0,
        "healing must clear the dead-link probing: outage {damaged_waste}, \
         recovery {healed_waste}"
    );
    assert!(
        recovered >= pre,
        "delivery must recover to >= pre-outage after heal: pre {pre}, recovered {recovered}"
    );
    assert!(
        out.passed(),
        "regional_outage checks failed: {:?}",
        out.checks
    );
}

#[test]
fn machine_backend_runs_flash_crowd_deterministically() {
    // The machine-runnable subset of a scenario translates into
    // MachinePhases and runs on a protocol driver with bit-identical
    // windows per (phases, seed) — the backend half of the scenario
    // engine's determinism contract.
    let scale = Scale::small(48, 19);
    let sc = by_name("flash_crowd");
    let phases = machine_phases_for(&sc, &scale).unwrap();
    let run = || {
        let peer_cfg = PeerConfig {
            repair: RepairPolicy::ReactiveK { k: 2 },
            ..PeerConfig::default()
        };
        let mut driver = DesDriver::new_with_faults(scale.seed, peer_cfg, FaultPlan::reliable());
        let cfg = MachineChurnConfig {
            initial_peers: scale.target,
            build_walks: 3,
            probe_every: 100,
        };
        run_machine_phases(
            &mut driver,
            &GnutellaKeys::default(),
            &cfg,
            &phases,
            SeedTree::new(scale.seed),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "machine scenario runs must be bit-deterministic");
    // Shape: steady span, burst (no windows), burst aftermath window,
    // aftermath span.
    assert_eq!(a.len(), 4);
    assert!(a[1].is_empty(), "the mass-join phase measures nothing");
    let steady_live = a[0].last().unwrap().live_at_end;
    let after_burst = a[2][0].live_at_end;
    assert_eq!(
        after_burst,
        steady_live + 5,
        "ceil(48 * 0.10) = 5 peers must join in the burst"
    );
}
