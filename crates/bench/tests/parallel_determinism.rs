//! Parallel sweeps must be a pure wall-time optimisation: every CSV a
//! figure driver emits has to be byte-identical whether the runs execute
//! sequentially (`OSCAR_THREADS=1`) or fanned out over worker threads.
//!
//! Each growth/churn run derives all of its randomness from its own
//! `SeedTree` child of `Scale::seed`, so execution order cannot leak into
//! any result; these tests pin that property end to end, at the level the
//! acceptance criterion is stated: the rendered CSV bytes.

use oscar_analytics::series::to_csv;
use oscar_bench::figures::{
    fig1b_report, fig1c_report, fig2_report, mercury_compare_report, phase_reports, run_fig1_suite,
    run_phase_suite, run_steady_churn_suite, steady_churn_reports,
};
use oscar_bench::{run_churn_experiment, run_steady_churn_experiment, Scale};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::GnutellaKeys;

#[test]
fn fig1_suite_csvs_identical_across_thread_counts() {
    let csvs = |threads: usize| {
        let scale = Scale::small(150, 3).with_threads(threads);
        let suite = run_fig1_suite(&scale).unwrap();
        vec![
            to_csv(fig1b_report(&suite).series()),
            to_csv(fig1c_report(&suite, &scale).series()),
            to_csv(mercury_compare_report(&suite, &scale).series()),
        ]
    };
    let sequential = csvs(1);
    assert_eq!(sequential, csvs(4), "1 vs 4 threads");
    assert_eq!(sequential, csvs(0), "1 vs all-cores auto");
}

#[test]
fn fig2_churn_csvs_identical_across_thread_counts() {
    let csv = |threads: usize| {
        let scale = Scale::small(150, 5).with_threads(threads);
        let report = fig2_report(&scale, &ConstantDegrees::paper(), "constant").unwrap();
        to_csv(report.series())
    };
    assert_eq!(csv(1), csv(4));
}

#[test]
fn steady_churn_csvs_identical_across_thread_counts() {
    // The repro_churn acceptance criterion: every steady-state CSV must be
    // byte-identical whether the per-level engine runs execute
    // sequentially or fan out over worker threads.
    let csvs = |threads: usize| {
        let scale = Scale::small(150, 9).with_threads(threads);
        let results = run_steady_churn_suite(&scale, 3).unwrap();
        steady_churn_reports(&results)
            .iter()
            .map(|(_, r)| to_csv(r.series()))
            .collect::<Vec<_>>()
    };
    let sequential = csvs(1);
    assert_eq!(sequential, csvs(4), "1 vs 4 threads");
    assert_eq!(sequential, csvs(0), "1 vs all-cores auto");
}

#[test]
fn phase_diagram_csvs_identical_across_thread_counts() {
    // The repro_phase acceptance criterion: the 3-axis sweep (churn level
    // × repair policy × successor-list length) fans its cells over
    // `OSCAR_THREADS` on owned clones, and every rendered CSV must be
    // byte-identical whether the cells run sequentially or on 4 workers.
    let csvs = |threads: usize| {
        let scale = Scale::small(120, 21).with_threads(threads);
        let cells = run_phase_suite(&scale, 2).unwrap();
        phase_reports(&cells)
            .iter()
            .map(|(_, r)| to_csv(r.series()))
            .collect::<Vec<_>>()
    };
    let sequential = csvs(1);
    assert_eq!(sequential, csvs(4), "1 vs 4 threads");
}

#[test]
fn steady_churn_windows_identical_across_thread_counts() {
    // Below the CSV rendering: the raw per-window stats must match field
    // for field.
    let run = |threads: usize| {
        let scale = Scale::small(150, 11).with_threads(threads);
        let builder = OscarBuilder::new(OscarConfig::default());
        let schedules = oscar_bench::standard_churn_schedules(&scale);
        run_steady_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &schedules,
            3,
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(3);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.windows, rb.windows, "windows diverged at {}", ra.label);
    }
}

#[test]
fn scenario_suite_artifacts_identical_across_thread_counts() {
    // The repro_scenarios acceptance criterion: the whole scenario suite
    // fans one scenario per worker, and both rendered artifacts — the
    // per-window CSV body and the markdown report — must be
    // byte-identical at any thread count. Scenario streams are keyed by
    // name, not suite position, so scheduling cannot leak in.
    let artifacts = |threads: usize| {
        let scale = Scale::small(150, 13).with_threads(threads);
        let outcomes = oscar_bench::run_all_scenarios(&scale).unwrap();
        outcomes
            .iter()
            .map(|o| {
                let rows: Vec<String> = o
                    .rows
                    .iter()
                    .map(|r| format!("{}|{}|{:?}", r.window, r.phase_label, r.stats))
                    .collect();
                (o.name, rows, oscar_bench::render_scenario_report(o))
            })
            .collect::<Vec<_>>()
    };
    let sequential = artifacts(1);
    assert_eq!(sequential, artifacts(4), "1 vs 4 threads");
}

#[test]
fn churn_experiment_stats_identical_across_thread_counts() {
    // Below the CSV rendering too: the raw per-checkpoint stats must match
    // field for field (CSV rounding can never be doing the equalising).
    let run = |threads: usize| {
        let scale = Scale::small(150, 7).with_threads(threads);
        let builder = OscarBuilder::new(OscarConfig::default());
        run_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &[0.0, 0.10, 0.33],
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(3);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.fraction, rb.fraction);
        assert_eq!(ra.cost_by_size.len(), rb.cost_by_size.len());
        for ((sa, qa), (sb, qb)) in ra.cost_by_size.iter().zip(&rb.cost_by_size) {
            assert_eq!(sa, sb);
            assert_eq!(qa, qb, "stats diverged at size {sa}");
        }
    }
}
