//! Criterion benches: random-walk sampling (the construction hot path).
//!
//! A full figure run performs ~10⁸ walk steps; these benches watch the
//! per-sample cost of the walker under its three regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oscar_degree::DegreeCaps;
use oscar_sim::{FaultModel, Network, PeerIdx, WalkConfig, Walker};
use oscar_types::{Arc, Id, SeedTree};
use rand::Rng;

/// Ring + `extra` random long links per peer.
fn test_net(n: u64, extra: usize, seed: u64) -> Network {
    let mut net = Network::new(FaultModel::StabilizedRing);
    let step = u64::MAX / n;
    let idxs: Vec<PeerIdx> = (0..n)
        .map(|i| {
            net.add_peer(Id::new(i * step + 1), DegreeCaps::symmetric(64))
                .unwrap()
        })
        .collect();
    let mut rng = SeedTree::new(seed).rng();
    for &i in &idxs {
        for _ in 0..extra {
            let j = idxs[rng.gen_range(0..idxs.len())];
            let _ = net.try_link(i, j);
        }
    }
    net
}

fn bench_uniform_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker/uniform");
    for n in [256u64, 1024, 4096] {
        let net = test_net(n, 8, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut walker = Walker::new(&net, WalkConfig::default());
            let mut rng = SeedTree::new(2).rng();
            b.iter(|| walker.sample(PeerIdx(0), None, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_restricted_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker/restricted");
    let net = test_net(1024, 8, 3);
    for frac_pow in [1u32, 3, 6] {
        // arcs covering 1/2, 1/8, 1/64 of the ring
        let arc = Arc::between(Id::new(1), Id::new(1 + (u64::MAX >> frac_pow)));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("1_over_{}", 1u64 << frac_pow)),
            &arc,
            |b, arc| {
                let mut walker = Walker::new(&net, WalkConfig::default());
                let mut rng = SeedTree::new(4).rng();
                let start = net.idx_of(Id::new(1)).unwrap();
                b.iter(|| walker.sample(start, Some(arc), &mut rng).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_mh_correction_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker/mh");
    let net = test_net(1024, 8, 5);
    for (label, mh) in [("with_mh", true), ("without_mh", false)] {
        group.bench_function(label, |b| {
            let cfg = WalkConfig {
                burn_in: 24,
                metropolis_hastings: mh,
                ..WalkConfig::default()
            };
            let mut walker = Walker::new(&net, cfg);
            let mut rng = SeedTree::new(6).rng();
            b.iter(|| walker.sample(PeerIdx(0), None, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_uniform_sampling,
    bench_restricted_sampling,
    bench_mh_correction_overhead
);
criterion_main!(benches);
