//! Criterion bench: ring construction at scale — order-statistic treap vs
//! the sorted-Vec reference model.
//!
//! The authoritative `Ring` sits on every `Network::add_peer`/`kill`/
//! `depart`, so its insert cost bounds how large a network the simulator
//! can grow. This bench builds rings of N ∈ {1k, 10k, 50k} pseudo-random
//! ids with both representations; the treap's O(log n) insert should beat
//! the Vec's O(n) memmove by ≥ 5× at N = 50k and keep widening with N.
//! A mixed churn workload (insert/remove interleavings at steady state)
//! covers the kill/depart path as well.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oscar_ring::reference::VecRing;
use oscar_ring::Ring;
use oscar_types::{Id, SeedTree};
use rand::Rng;

/// Distinct pseudo-random ids (duplicates are astronomically unlikely and
/// harmless: both structures refuse them identically).
fn random_ids(n: usize, seed: u64) -> Vec<Id> {
    let mut rng = SeedTree::new(seed).rng();
    (0..n).map(|_| Id::new(rng.gen())).collect()
}

fn bench_grow(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_scale/grow");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 50_000] {
        let ids = random_ids(n, 1);
        group.bench_with_input(BenchmarkId::new("treap", n), &ids, |b, ids| {
            b.iter(|| {
                let mut r = Ring::new();
                for &id in ids {
                    r.insert(id);
                }
                r.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("vec-baseline", n), &ids, |b, ids| {
            b.iter(|| {
                let mut r = VecRing::new();
                for &id in ids {
                    r.insert(id);
                }
                r.len()
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_scale/churn_10k_ops");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let ids = random_ids(n, 2);
        let wave = random_ids(10_000, 3);
        let treap_base = {
            let mut r = Ring::new();
            for &id in &ids {
                r.insert(id);
            }
            r
        };
        let vec_base = {
            let mut r = VecRing::new();
            for &id in &ids {
                r.insert(id);
            }
            r
        };
        // Steady-state churn: remove an existing id, insert a fresh one —
        // then undo, so every iteration starts from the same membership
        // without a clone inside the timed body (the vendored criterion has
        // no iter_batched; a per-iteration treap clone is ~n allocations
        // and would swamp the 10k O(log n) ops being measured). The undo
        // ops are churn ops of the same shape, so the comparison is fair.
        group.bench_with_input(BenchmarkId::new("treap", n), &ids, |b, ids| {
            let mut r = treap_base.clone();
            b.iter(|| {
                for (i, &incoming) in wave.iter().enumerate() {
                    r.remove(ids[(i * 7919) % ids.len()]);
                    r.insert(incoming);
                }
                for (i, &incoming) in wave.iter().enumerate() {
                    r.remove(incoming);
                    r.insert(ids[(i * 7919) % ids.len()]);
                }
                r.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("vec-baseline", n), &ids, |b, ids| {
            let mut r = vec_base.clone();
            b.iter(|| {
                for (i, &incoming) in wave.iter().enumerate() {
                    r.remove(ids[(i * 7919) % ids.len()]);
                    r.insert(incoming);
                }
                for (i, &incoming) in wave.iter().enumerate() {
                    r.remove(incoming);
                    r.insert(ids[(i * 7919) % ids.len()]);
                }
                r.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grow, bench_churn);
criterion_main!(benches);
