//! Criterion benches: query routing (the measurement hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::GnutellaKeys;
use oscar_sim::{kill_fraction, route_to_owner, FaultModel, Network, Overlay, RoutePolicy};
use oscar_types::{Id, SeedTree};
use rand::Rng;

fn grown_network(n: usize, seed: u64) -> Network {
    let mut ov = Overlay::new(
        OscarBuilder::new(OscarConfig::default()),
        FaultModel::StabilizedRing,
        seed,
    );
    ov.grow_to(n, &GnutellaKeys::default(), &ConstantDegrees::paper())
        .unwrap();
    ov.network().clone()
}

fn bench_route_fault_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/fault_free");
    for n in [512usize, 2048] {
        let net = grown_network(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let policy = RoutePolicy::default();
            let mut rng = SeedTree::new(2).rng();
            b.iter(|| {
                let src = net.random_live_peer(&mut rng).unwrap();
                let key = Id::new(rng.gen());
                route_to_owner(&net, src, key, &policy)
            });
        });
    }
    group.finish();
}

fn bench_route_under_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/churn_33pct");
    let mut net = grown_network(2048, 3);
    let mut crng = SeedTree::new(4).rng();
    kill_fraction(&mut net, 0.33, &mut crng).unwrap();
    group.bench_function("stabilized", |b| {
        let policy = RoutePolicy::default();
        let mut rng = SeedTree::new(5).rng();
        b.iter(|| {
            let src = net.random_live_peer(&mut rng).unwrap();
            let key = Id::new(rng.gen());
            route_to_owner(&net, src, key, &policy)
        });
    });
    let mut unstab = net.clone();
    unstab.set_fault_model(FaultModel::UnstabilizedRing);
    group.bench_function("unstabilized", |b| {
        let policy = RoutePolicy::default();
        let mut rng = SeedTree::new(6).rng();
        b.iter(|| {
            let src = unstab.random_live_peer(&mut rng).unwrap();
            let key = Id::new(rng.gen());
            route_to_owner(&unstab, src, key, &policy)
        });
    });
    group.finish();
}

fn bench_ring_only_baseline(c: &mut Criterion) {
    // O(N) ring walking vs O(log²N) with long links, as wall time.
    let mut group = c.benchmark_group("routing/policy");
    group.sample_size(30);
    let net = grown_network(1024, 7);
    for (label, use_long) in [("with_long_links", true), ("ring_only", false)] {
        group.bench_function(label, |b| {
            let policy = RoutePolicy {
                use_long_links: use_long,
                max_messages: 1 << 16,
            };
            let mut rng = SeedTree::new(8).rng();
            b.iter(|| {
                let src = net.random_live_peer(&mut rng).unwrap();
                let key = Id::new(rng.gen());
                route_to_owner(&net, src, key, &policy)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_route_fault_free,
    bench_route_under_churn,
    bench_ring_only_baseline
);
criterion_main!(benches);
