//! Criterion benches: one per paper table/figure, at bounded scale.
//!
//! Each bench runs the same pipeline its `repro_*` binary runs at paper
//! scale, shrunk so `cargo bench` terminates in minutes. They measure the
//! *harness* cost (how long a figure takes to regenerate), which is the
//! number a user planning a full reproduction needs.

use criterion::{criterion_group, criterion_main, Criterion};
use oscar_bench::experiments::{run_churn_experiment, run_growth_experiment};
use oscar_bench::figures::fig1a_report;
use oscar_bench::Scale;
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::{ConstantDegrees, SpikyDegrees};
use oscar_keydist::GnutellaKeys;
use oscar_mercury::{MercuryBuilder, MercuryConfig};

fn bench_fig1a(c: &mut Criterion) {
    c.bench_function("figures/fig1a_degree_pdf", |b| {
        let scale = Scale::small(100, 1);
        b.iter(|| fig1a_report(&scale));
    });
}

fn bench_fig1bc_growth_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig1bc_growth_400");
    group.sample_size(10);
    let scale = Scale::small(400, 2);
    let keys = GnutellaKeys::default();
    group.bench_function("oscar_constant", |b| {
        let builder = OscarBuilder::new(OscarConfig::default());
        b.iter(|| {
            run_growth_experiment(&builder, &keys, &ConstantDegrees::paper(), &scale, "c")
                .unwrap()
                .final_utilization
        });
    });
    group.bench_function("oscar_realistic", |b| {
        let builder = OscarBuilder::new(OscarConfig::default());
        let degrees = SpikyDegrees::paper();
        b.iter(|| {
            run_growth_experiment(&builder, &keys, &degrees, &scale, "r")
                .unwrap()
                .final_utilization
        });
    });
    group.bench_function("mercury_constant", |b| {
        let builder = MercuryBuilder::new(MercuryConfig::default());
        b.iter(|| {
            run_growth_experiment(&builder, &keys, &ConstantDegrees::paper(), &scale, "m")
                .unwrap()
                .final_utilization
        });
    });
    group.finish();
}

fn bench_fig2_churn_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig2_churn_400");
    group.sample_size(10);
    let scale = Scale::small(400, 3);
    let keys = GnutellaKeys::default();
    group.bench_function("constant_3_fractions", |b| {
        let builder = OscarBuilder::new(OscarConfig::default());
        b.iter(|| {
            run_churn_experiment(
                &builder,
                &keys,
                &ConstantDegrees::paper(),
                &scale,
                &[0.0, 0.10, 0.33],
            )
            .unwrap()
            .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1a,
    bench_fig1bc_growth_run,
    bench_fig2_churn_run
);
criterion_main!(benches);
