//! Criterion benches: overlay construction (Oscar vs Mercury).
//!
//! Covers the two construction phases separately (partition/CDF
//! estimation, link acquisition) and end-to-end growth, so a regression in
//! either phase is attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oscar_core::{estimate_partitions, OscarBuilder, OscarConfig};
use oscar_degree::{ConstantDegrees, DegreeCaps};
use oscar_keydist::GnutellaKeys;
use oscar_mercury::{MercuryBuilder, MercuryConfig};
use oscar_sim::{FaultModel, Network, Overlay, OverlayBuilder, PeerIdx};
use oscar_types::{Id, SeedTree};
use rand::Rng;

fn test_net(n: u64, extra: usize, seed: u64) -> Network {
    let mut net = Network::new(FaultModel::StabilizedRing);
    let step = u64::MAX / n;
    let idxs: Vec<PeerIdx> = (0..n)
        .map(|i| {
            net.add_peer(Id::new(i * step + 1), DegreeCaps::symmetric(64))
                .unwrap()
        })
        .collect();
    let mut rng = SeedTree::new(seed).rng();
    for &i in &idxs {
        for _ in 0..extra {
            let j = idxs[rng.gen_range(0..idxs.len())];
            let _ = net.try_link(i, j);
        }
    }
    net
}

fn bench_partition_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/partitions");
    for n in [512u64, 2048] {
        let mut net = test_net(n, 8, 1);
        let cfg = OscarConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = SeedTree::new(2).rng();
            b.iter(|| estimate_partitions(&mut net, PeerIdx(0), &cfg, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_build_links_per_peer(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/build_links");
    group.sample_size(20);
    let oscar = OscarBuilder::new(OscarConfig::default());
    let mercury = MercuryBuilder::new(MercuryConfig::default());
    {
        let n = 1024u64;
        group.bench_function(BenchmarkId::new("oscar", n), |b| {
            let mut net = test_net(n, 8, 3);
            let mut rng = SeedTree::new(4).rng();
            b.iter(|| {
                net.unlink_long_out(PeerIdx(7));
                oscar.build_links(&mut net, PeerIdx(7), &mut rng).unwrap();
            });
        });
        group.bench_function(BenchmarkId::new("mercury", n), |b| {
            let mut net = test_net(n, 8, 5);
            let mut rng = SeedTree::new(6).rng();
            b.iter(|| {
                net.unlink_long_out(PeerIdx(7));
                mercury.build_links(&mut net, PeerIdx(7), &mut rng).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_grow_to(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/grow_to_512");
    group.sample_size(10);
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    group.bench_function("oscar", |b| {
        b.iter(|| {
            let mut ov = Overlay::new(
                OscarBuilder::new(OscarConfig::default()),
                FaultModel::StabilizedRing,
                7,
            );
            ov.grow_to(512, &keys, &degrees).unwrap();
            ov.network().len()
        });
    });
    group.bench_function("mercury", |b| {
        b.iter(|| {
            let mut ov = Overlay::new(
                MercuryBuilder::new(MercuryConfig::default()),
                FaultModel::StabilizedRing,
                7,
            );
            ov.grow_to(512, &keys, &degrees).unwrap();
            ov.network().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_estimation,
    bench_build_links_per_peer,
    bench_grow_to
);
criterion_main!(benches);
