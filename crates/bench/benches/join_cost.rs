//! Per-join cost of the Oscar construction hot loop at scale, recorded as
//! machine-readable data points (`BENCH_join.json`) so the perf
//! trajectory of the join path is tracked, not anecdotal.
//!
//! A join is dominated by walk sampling: ~log₂N medians ×
//! `median_sample_size` walks × `burn_in` Metropolis–Hastings steps for
//! partition estimation, plus the candidate-sampling walks of link
//! acquisition. The bench grows one Oscar overlay to `OSCAR_JOIN_BENCH_N`
//! peers (default 10,000), then times **real joins** — `add_peer` +
//! `build_links`, invalidation churn included — on identical id/seed
//! schedules against clones of the grown network, under three walker
//! regimes:
//!
//! * `uncached`  — the collect-then-retain baseline (`WalkConfig::without_cache`),
//! * `cached`    — the walk-adjacency fast path (default config),
//! * `chained`   — fast path + thinned chained sampling (`with_chained_sampling`).
//!
//! Results are printed and written to `<results dir>/BENCH_join.json`;
//! the committed `BENCH_join.json` at the repository root is the tracked
//! baseline.
//!
//! ```sh
//! cargo bench -p oscar-bench --bench join_cost
//! OSCAR_JOIN_BENCH_N=2000 cargo bench -p oscar-bench --bench join_cost
//! ```

use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::{ConstantDegrees, DegreeDistribution};
use oscar_keydist::{GnutellaKeys, KeyDistribution};
use oscar_sim::{FaultModel, GrowthConfig, GrowthDriver, Network, OverlayBuilder};
use oscar_types::SeedTree;
use std::time::Instant;

/// Timed joins per round (each is add_peer + full link construction).
const JOINS: usize = 64;
/// Measurement rounds, each on a fresh clone; the fastest is reported.
const ROUNDS: usize = 3;

fn bench_n() -> usize {
    // Malformed values are a hard error, matching `Scale::from_env`: a
    // typo like "2k" must not silently time the full 10k schedule.
    match std::env::var("OSCAR_JOIN_BENCH_N") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 100 => n,
            _ => {
                eprintln!("join_cost: OSCAR_JOIN_BENCH_N must be an integer >= 100, got {s:?}");
                std::process::exit(2);
            }
        },
        Err(_) => 10_000,
    }
}

/// Fastest-of-`ROUNDS` mean per-join wall time under `cfg`: each round
/// clones the grown network and performs `JOINS` complete joins on the
/// same deterministic id/degree/seed schedule, so the three variants do
/// identical logical work and differ only in the walker path.
fn time_joins(net: &Network, cfg: OscarConfig, seed: u64) -> f64 {
    let builder = OscarBuilder::new(cfg);
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let mut best = f64::INFINITY;
    for round in 0..ROUNDS {
        let mut net = net.clone();
        let schedule = SeedTree::new(seed).child(round as u64);
        let mut id_rng = schedule.child(1).rng();
        let t0 = Instant::now();
        for i in 0..JOINS {
            let caps = degrees.sample(&mut id_rng);
            let p = loop {
                let id = keys.sample(&mut id_rng);
                if let Ok(p) = net.add_peer(id, caps) {
                    break p;
                }
            };
            let mut rng = schedule.child2(2, i as u64).rng();
            builder
                .build_links(&mut net, p, &mut rng)
                .expect("join succeeds");
        }
        let per_join = t0.elapsed().as_secs_f64() / JOINS as f64;
        best = best.min(per_join);
    }
    best * 1e9
}

fn main() {
    let n = bench_n();
    eprintln!("join_cost: growing oscar overlay to {n} peers...");
    let mut net = Network::new(FaultModel::StabilizedRing);
    let builder = OscarBuilder::new(OscarConfig::default());
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: n,
        seed_size: 8,
        checkpoints: vec![n],
        rewire_at_checkpoints: true,
    });
    driver
        .run(
            &mut net,
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            SeedTree::new(42),
            |_, _| Ok(()),
        )
        .expect("growth succeeds");

    let uncached_cfg = OscarConfig {
        walk: oscar_sim::WalkConfig::default().without_cache(),
        ..OscarConfig::default()
    };
    let cached_cfg = OscarConfig::default();
    let chained_cfg = OscarConfig::default().with_chained_sampling(12);

    let uncached = time_joins(&net, uncached_cfg, 1);
    let cached = time_joins(&net, cached_cfg, 1);
    let chained = time_joins(&net, chained_cfg, 1);

    let speedup_cached = uncached / cached;
    let speedup_chained = uncached / chained;
    println!(
        "join_cost/full_join/{n}/uncached  {:>12.0} ns/join",
        uncached
    );
    println!(
        "join_cost/full_join/{n}/cached    {:>12.0} ns/join   ({speedup_cached:.2}x)",
        cached
    );
    println!(
        "join_cost/full_join/{n}/chained   {:>12.0} ns/join   ({speedup_chained:.2}x)",
        chained
    );

    let json = format!(
        "{{\n  \"bench\": \"join_cost\",\n  \"n_peers\": {n},\n  \"joins_timed\": {JOINS},\n  \
         \"rounds\": {ROUNDS},\n  \"uncached_ns_per_join\": {uncached:.0},\n  \
         \"cached_ns_per_join\": {cached:.0},\n  \"chained_ns_per_join\": {chained:.0},\n  \
         \"speedup_cached_over_uncached\": {speedup_cached:.2},\n  \
         \"speedup_chained_over_uncached\": {speedup_chained:.2}\n}}\n"
    );
    // `cargo bench` runs with the package dir as cwd, so resolve the
    // default results dir against the workspace root, where the repro
    // binaries put their CSVs.
    let dir = std::env::var("OSCAR_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_join.json");
    std::fs::write(&path, &json).expect("write BENCH_join.json");
    println!("json: {}", path.display());
}
