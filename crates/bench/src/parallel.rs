//! Deterministic fan-out of independent experiment tasks over scoped
//! threads.
//!
//! Every experiment in this crate is a pure function of a [`crate::Scale`]
//! and a seed-tree path, so independent runs can execute in any order —
//! including concurrently — without changing a single byte of output. This
//! module provides the one primitive the drivers need: run a fixed list of
//! closures on up to `threads` workers and return their results **in task
//! order**. With `threads <= 1` the tasks run inline on the caller's
//! thread, which is exactly the pre-parallelism behaviour
//! (`OSCAR_THREADS=1`).
//!
//! `std::thread::scope` keeps everything borrow-friendly (tasks may borrow
//! the caller's `Scale`, networks, configs) and dependency-free. A worker
//! panic propagates to the caller when the scope joins, so a failing task
//! cannot be silently dropped.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A unit of experiment work: boxed so heterogeneous closures (different
/// builders, different figures) can share one task list.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs `tasks` on up to `threads` workers; returns results in task order.
///
/// Work is handed out through a shared counter, so long tasks do not
/// convoy behind short ones; each result lands in its task's slot, so the
/// output order is independent of scheduling.
pub fn run_tasks<T: Send>(threads: usize, tasks: Vec<Task<'_, T>>) -> Vec<T> {
    let n = tasks.len();
    if threads <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let slots: Vec<Mutex<Option<Task<'_, T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("each task index is claimed once");
                let result = task();
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1usize, 2, 4, 16] {
            let tasks: Vec<Task<usize>> = (0..20usize)
                .map(|i| {
                    Box::new(move || {
                        // Stagger so late tasks often finish first.
                        std::thread::sleep(std::time::Duration::from_micros((20 - i as u64) * 50));
                        i * i
                    }) as Task<usize>
                })
                .collect();
            let out = run_tasks(threads, tasks);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let base = [10usize, 20, 30];
        let tasks: Vec<Task<usize>> = base
            .iter()
            .map(|v| Box::new(move || v + 1) as Task<usize>)
            .collect();
        assert_eq!(run_tasks(2, tasks), vec![11, 21, 31]);
    }

    #[test]
    fn empty_and_single_task_lists_work() {
        assert!(run_tasks::<u8>(4, Vec::new()).is_empty());
        let one: Vec<Task<u8>> = vec![Box::new(|| 7)];
        assert_eq!(run_tasks(4, one), vec![7]);
    }

    #[test]
    fn worker_panic_propagates() {
        let tasks: Vec<Task<u8>> = vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_tasks(2, tasks)));
        assert!(r.is_err());
    }
}
