//! Experiment scale configuration.
//!
//! The paper's experiments run to 10,000 peers with checkpoints every
//! 1,000. A full regeneration takes minutes; `OSCAR_SCALE` scales the
//! whole schedule proportionally, both down for quick validation runs and
//! up for the large-scale smokes the order-statistic ring enables:
//!
//! ```sh
//! OSCAR_SCALE=2000 cargo run --release -p oscar-bench --bin repro_fig1c
//! OSCAR_SCALE=100000 cargo run --release -p oscar-bench --bin repro_fig1c
//! ```
//!
//! A malformed `OSCAR_SCALE`/`OSCAR_SEED` is a hard error, not a silent
//! fallback: a typo like `OSCAR_SCALE=2k` used to run the full paper
//! schedule for minutes and then be mistaken for the intended quick run.

use oscar_protocol::PeerConfig;
use oscar_types::Error;

/// Scale and seed of an experiment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Final network size (paper: 10,000).
    pub target: usize,
    /// Checkpoint spacing (paper: 1,000).
    pub step: usize,
    /// Root experiment seed.
    pub seed: u64,
    /// Worker-thread budget for the parallel experiment drivers
    /// (`OSCAR_THREADS`): `0` means "all available parallelism", `1` is
    /// fully sequential. Every run derives its randomness from its own
    /// seed-tree child, so the thread count never changes any result —
    /// only wall time (asserted by `tests/parallel_determinism.rs`).
    pub threads: usize,
}

impl Scale {
    /// The paper's scale.
    pub fn paper() -> Self {
        Scale {
            target: 10_000,
            step: 1_000,
            seed: 42,
            threads: 0,
        }
    }

    /// Same scale with an explicit thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved worker-thread budget (`threads`, or all available
    /// parallelism when 0).
    pub fn thread_count(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Scale from the environment: `OSCAR_SCALE` (target size; step is
    /// target/10) and `OSCAR_SEED`. Defaults to [`Scale::paper`] when the
    /// variables are unset; set-but-unparsable values are
    /// [`Error::InvalidConfig`] so a typo cannot silently run the full
    /// paper schedule.
    pub fn from_env() -> oscar_types::Result<Self> {
        let mut scale = Scale::paper();
        if let Ok(s) = std::env::var("OSCAR_SCALE") {
            let target = s.trim().parse::<usize>().map_err(|e| {
                Error::InvalidConfig(format!(
                    "OSCAR_SCALE must be a positive integer peer count, got {s:?} ({e})"
                ))
            })?;
            if target == 0 {
                return Err(Error::InvalidConfig(
                    "OSCAR_SCALE must be a positive integer peer count, got 0".into(),
                ));
            }
            if target < 100 {
                // The schedule floor, announced rather than silent.
                eprintln!("oscar-bench: OSCAR_SCALE={target} below the 100-peer floor; using 100");
            }
            let target = target.max(100);
            scale.target = target;
            scale.step = (target / 10).max(50);
        }
        if let Ok(s) = std::env::var("OSCAR_SEED") {
            scale.seed = s.trim().parse::<u64>().map_err(|e| {
                Error::InvalidConfig(format!(
                    "OSCAR_SEED must be an unsigned 64-bit integer, got {s:?} ({e})"
                ))
            })?;
        }
        if let Ok(s) = std::env::var("OSCAR_THREADS") {
            let threads = s.trim().parse::<usize>().map_err(|e| {
                Error::InvalidConfig(format!(
                    "OSCAR_THREADS must be a positive thread count, got {s:?} ({e})"
                ))
            })?;
            if threads == 0 {
                return Err(Error::InvalidConfig(
                    "OSCAR_THREADS must be >= 1 (unset it for all cores)".into(),
                ));
            }
            scale.threads = threads;
        }
        Ok(scale)
    }

    /// [`Scale::from_env`] for the repro binaries: prints the
    /// configuration error and exits non-zero instead of running the wrong
    /// experiment.
    pub fn from_env_or_exit() -> Self {
        Self::from_env().unwrap_or_else(|e| {
            eprintln!("oscar-bench: {e}");
            std::process::exit(2);
        })
    }

    /// Reduced scale for tests and Criterion benches (sequential by
    /// default: tests assert on single-run behaviour, and determinism
    /// tests opt in to threads explicitly).
    pub fn small(target: usize, seed: u64) -> Self {
        Scale {
            target,
            step: (target / 5).max(20),
            seed,
            threads: 1,
        }
    }

    /// Steady-churn measurement windows per level from the environment
    /// (`OSCAR_CHURN_WINDOWS`; default 8) — used by both `repro_churn`
    /// (windows per churn level) and `repro_phase` (windows per phase
    /// cell). Must be >= 2 — the steady-state aggregate is the last half
    /// of the windows — and a malformed value is a hard error like the
    /// other knobs.
    pub fn churn_windows_from_env() -> oscar_types::Result<usize> {
        match std::env::var("OSCAR_CHURN_WINDOWS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 2 => Ok(n),
                _ => Err(Error::InvalidConfig(format!(
                    "OSCAR_CHURN_WINDOWS must be an integer >= 2, got {s:?}"
                ))),
            },
            Err(_) => Ok(8),
        }
    }

    /// [`Scale::churn_windows_from_env`] for the repro binaries: prints
    /// the configuration error and exits non-zero.
    pub fn churn_windows_from_env_or_exit() -> usize {
        Self::churn_windows_from_env().unwrap_or_else(|e| {
            eprintln!("oscar-bench: {e}");
            std::process::exit(2);
        })
    }

    /// The checkpoint sizes: `step, 2·step, …, target`.
    pub fn checkpoints(&self) -> Vec<usize> {
        let mut cps: Vec<usize> = (1..)
            .map(|k| k * self.step)
            .take_while(|&s| s < self.target)
            .collect();
        cps.push(self.target);
        cps
    }

    /// Checkpoints the figures plot (the paper's x axis starts at 2·step:
    /// 2,000..10,000).
    pub fn figure_checkpoints(&self) -> Vec<usize> {
        self.checkpoints()
            .into_iter()
            .filter(|&s| s >= 2 * self.step)
            .collect()
    }
}

/// The knobs every repro binary accepts implicitly: the [`Scale`]
/// family (parsed by every binary's `Scale::from_env`) plus the output
/// and gating knobs that configure routing rather than the experiment.
const BASE_KNOBS: [&str; 5] = [
    "OSCAR_SCALE",
    "OSCAR_SEED",
    "OSCAR_THREADS",
    "OSCAR_RESULTS_DIR",
    "OSCAR_BENCH_TOLERANCE",
];

/// Rejects `OSCAR_*` environment variables the calling binary would
/// silently ignore. `extra` lists the knobs the binary reads beyond
/// the base set of `OSCAR_SCALE`/`OSCAR_SEED`/`OSCAR_THREADS`/
/// `OSCAR_RESULTS_DIR`/`OSCAR_BENCH_TOLERANCE` (e.g.
/// `OSCAR_CHURN_WINDOWS` for `repro_churn`).
///
/// An exported-but-unread knob used to be a silent no-op: setting
/// `OSCAR_CHURN_WINDOWS` for `repro_fig1a`, or typo'ing
/// `OSCAR_CHURN_WINDOW`, ran the default experiment and was then
/// mistaken for the tuned one. Like the parse errors above, ignoring
/// is worse than refusing — the full knob table lives in
/// `ARCHITECTURE.md`.
pub fn reject_unused_knobs(extra: &[&str]) -> oscar_types::Result<()> {
    let mut unused: Vec<String> = std::env::vars()
        .map(|(k, _)| k)
        .filter(|k| {
            k.starts_with("OSCAR_")
                && !BASE_KNOBS.contains(&k.as_str())
                && !extra.contains(&k.as_str())
        })
        .collect();
    if unused.is_empty() {
        return Ok(());
    }
    unused.sort();
    Err(Error::InvalidConfig(format!(
        "this binary does not read {}: unset it, or check ARCHITECTURE.md's \
         OSCAR_* knob table for which binary does",
        unused.join(", ")
    )))
}

/// [`reject_unused_knobs`] for the repro binaries: prints the
/// configuration error and exits non-zero before running the wrong
/// experiment.
pub fn reject_unused_knobs_or_exit(extra: &[&str]) {
    if let Err(e) = reject_unused_knobs(extra) {
        eprintln!("oscar-bench: {e}");
        std::process::exit(2);
    }
}

/// Protocol-machine tunables from the environment, for the binaries that
/// drive [`oscar_protocol::PeerMachine`] fleets (`repro_faults`,
/// `repro_saturation`, `repro_churn` in machine mode):
///
/// * `OSCAR_DEDUP_WINDOW` — per-peer duplicate-suppression window
///   (messages remembered; default [`PeerConfig::default`]'s 128);
/// * `OSCAR_MAX_RETRIES` — retry budget per reliable op (default 3,
///   though several binaries override it for lossy sweeps);
/// * `OSCAR_REPAIR_K` — ring-probe depth for the reactive repair policy
///   (applies only when the run's policy is `ReactiveK`).
///
/// Unset knobs leave the binary's own configuration untouched; a
/// malformed value is a hard error like every other `OSCAR_*` knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineKnobs {
    /// Override for [`PeerConfig::dedup_window`].
    pub dedup_window: Option<usize>,
    /// Override for [`PeerConfig::max_retries`].
    pub max_retries: Option<u32>,
    /// Override for the `ReactiveK` probe depth.
    pub repair_k: Option<usize>,
}

impl MachineKnobs {
    /// Reads the three knobs from the environment. Unset means `None`;
    /// set-but-unparsable is [`Error::InvalidConfig`].
    pub fn from_env() -> oscar_types::Result<Self> {
        let mut knobs = MachineKnobs::default();
        if let Ok(s) = std::env::var("OSCAR_DEDUP_WINDOW") {
            let w = s
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "OSCAR_DEDUP_WINDOW must be a positive message count, got {s:?}"
                    ))
                })?;
            knobs.dedup_window = Some(w);
        }
        if let Ok(s) = std::env::var("OSCAR_MAX_RETRIES") {
            let r = s.trim().parse::<u32>().map_err(|e| {
                Error::InvalidConfig(format!(
                    "OSCAR_MAX_RETRIES must be a retry count (0 disables retries), got {s:?} ({e})"
                ))
            })?;
            knobs.max_retries = Some(r);
        }
        if let Ok(s) = std::env::var("OSCAR_REPAIR_K") {
            let k = s
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&k| k >= 1)
                .ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "OSCAR_REPAIR_K must be a positive probe depth, got {s:?}"
                    ))
                })?;
            knobs.repair_k = Some(k);
        }
        Ok(knobs)
    }

    /// [`MachineKnobs::from_env`] for the repro binaries: prints the
    /// configuration error and exits non-zero.
    pub fn from_env_or_exit() -> Self {
        Self::from_env().unwrap_or_else(|e| {
            eprintln!("oscar-bench: {e}");
            std::process::exit(2);
        })
    }

    /// Applies the set knobs on top of a binary's base `PeerConfig`.
    /// `repair_k` only retunes an already-reactive policy — it never
    /// changes *which* policy a run uses, only how deep it probes.
    pub fn apply(&self, mut cfg: PeerConfig) -> PeerConfig {
        if let Some(w) = self.dedup_window {
            cfg.dedup_window = w;
        }
        if let Some(r) = self.max_retries {
            cfg.max_retries = r;
        }
        if let Some(k) = self.repair_k {
            if let oscar_protocol::RepairPolicy::ReactiveK { .. } = cfg.repair {
                cfg.repair = oscar_protocol::RepairPolicy::ReactiveK { k };
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_the_paper() {
        let s = Scale::paper();
        assert_eq!(s.target, 10_000);
        assert_eq!(s.checkpoints().len(), 10);
        assert_eq!(s.checkpoints()[0], 1000);
        assert_eq!(*s.checkpoints().last().unwrap(), 10_000);
        assert_eq!(s.figure_checkpoints()[0], 2000);
    }

    #[test]
    fn checkpoints_cover_uneven_targets() {
        let s = Scale {
            target: 2500,
            step: 1000,
            seed: 1,
            threads: 1,
        };
        assert_eq!(s.checkpoints(), vec![1000, 2000, 2500]);
    }

    #[test]
    fn from_env_parses_or_errors_loudly() {
        let _lock = crate::env_guard::lock();
        let _cleanup =
            crate::env_guard::RemoveOnDrop(&["OSCAR_SCALE", "OSCAR_SEED", "OSCAR_THREADS"]);
        std::env::remove_var("OSCAR_SCALE");
        std::env::remove_var("OSCAR_SEED");
        std::env::remove_var("OSCAR_THREADS");
        assert_eq!(Scale::from_env().unwrap(), Scale::paper());
        assert!(Scale::paper().thread_count() >= 1);

        std::env::set_var("OSCAR_SCALE", "2000");
        std::env::set_var("OSCAR_SEED", "7");
        std::env::set_var("OSCAR_THREADS", "4");
        let s = Scale::from_env().unwrap();
        assert_eq!((s.target, s.step, s.seed, s.threads), (2000, 200, 7, 4));
        assert_eq!(s.thread_count(), 4);

        // thread typos and zero are hard errors, like the other knobs
        std::env::set_var("OSCAR_THREADS", "four");
        let err = Scale::from_env().unwrap_err();
        assert!(err.to_string().contains("OSCAR_THREADS"), "{err}");
        std::env::set_var("OSCAR_THREADS", "0");
        let err = Scale::from_env().unwrap_err();
        assert!(err.to_string().contains("OSCAR_THREADS"), "{err}");
        std::env::remove_var("OSCAR_THREADS");

        // the typo that used to silently run the full paper schedule
        std::env::set_var("OSCAR_SCALE", "2k");
        let err = Scale::from_env().unwrap_err();
        assert!(err.to_string().contains("OSCAR_SCALE"), "{err}");

        // zero parses but is not a runnable peer count
        std::env::set_var("OSCAR_SCALE", "0");
        let err = Scale::from_env().unwrap_err();
        assert!(err.to_string().contains("got 0"), "{err}");

        std::env::set_var("OSCAR_SCALE", "2000");
        std::env::set_var("OSCAR_SEED", "-1");
        let err = Scale::from_env().unwrap_err();
        assert!(err.to_string().contains("OSCAR_SEED"), "{err}");
    }

    #[test]
    fn churn_windows_parse_or_error_loudly() {
        let _lock = crate::env_guard::lock();
        let _cleanup = crate::env_guard::RemoveOnDrop(&["OSCAR_CHURN_WINDOWS"]);
        std::env::remove_var("OSCAR_CHURN_WINDOWS");
        assert_eq!(Scale::churn_windows_from_env().unwrap(), 8);
        std::env::set_var("OSCAR_CHURN_WINDOWS", "12");
        assert_eq!(Scale::churn_windows_from_env().unwrap(), 12);
        for bad in ["1", "0", "eight", "-3"] {
            std::env::set_var("OSCAR_CHURN_WINDOWS", bad);
            let err = Scale::churn_windows_from_env().unwrap_err();
            assert!(err.to_string().contains("OSCAR_CHURN_WINDOWS"), "{err}");
        }
    }

    #[test]
    fn machine_knobs_parse_apply_or_error_loudly() {
        let _lock = crate::env_guard::lock();
        let _cleanup = crate::env_guard::RemoveOnDrop(&[
            "OSCAR_DEDUP_WINDOW",
            "OSCAR_MAX_RETRIES",
            "OSCAR_REPAIR_K",
        ]);
        for v in ["OSCAR_DEDUP_WINDOW", "OSCAR_MAX_RETRIES", "OSCAR_REPAIR_K"] {
            std::env::remove_var(v);
        }
        // Unset knobs are all-None and `apply` is the identity.
        let knobs = MachineKnobs::from_env().unwrap();
        assert_eq!(knobs, MachineKnobs::default());
        let base = PeerConfig::default();
        assert_eq!(knobs.apply(base.clone()).dedup_window, base.dedup_window);
        assert_eq!(knobs.apply(base.clone()).max_retries, base.max_retries);

        std::env::set_var("OSCAR_DEDUP_WINDOW", "256");
        std::env::set_var("OSCAR_MAX_RETRIES", "0");
        std::env::set_var("OSCAR_REPAIR_K", "4");
        let knobs = MachineKnobs::from_env().unwrap();
        let reactive = PeerConfig {
            repair: oscar_protocol::RepairPolicy::ReactiveK { k: 2 },
            ..PeerConfig::default()
        };
        let tuned = knobs.apply(reactive);
        assert_eq!(tuned.dedup_window, 256);
        assert_eq!(tuned.max_retries, 0);
        assert_eq!(
            tuned.repair,
            oscar_protocol::RepairPolicy::ReactiveK { k: 4 }
        );
        // repair_k never flips a non-reactive policy.
        let off = knobs.apply(PeerConfig::default());
        assert_eq!(off.repair, PeerConfig::default().repair);

        for (var, bad) in [
            ("OSCAR_DEDUP_WINDOW", "0"),
            ("OSCAR_DEDUP_WINDOW", "many"),
            ("OSCAR_MAX_RETRIES", "-1"),
            ("OSCAR_MAX_RETRIES", "three"),
            ("OSCAR_REPAIR_K", "0"),
            ("OSCAR_REPAIR_K", "deep"),
        ] {
            for v in ["OSCAR_DEDUP_WINDOW", "OSCAR_MAX_RETRIES", "OSCAR_REPAIR_K"] {
                std::env::remove_var(v);
            }
            std::env::set_var(var, bad);
            let err = MachineKnobs::from_env().unwrap_err();
            assert!(err.to_string().contains(var), "{var}={bad}: {err}");
        }
    }

    #[test]
    fn unused_knobs_error_loudly() {
        let _lock = crate::env_guard::lock();
        let _cleanup =
            crate::env_guard::RemoveOnDrop(&["OSCAR_CHURN_WINDOWS", "OSCAR_CHURN_WINDOW"]);
        std::env::remove_var("OSCAR_CHURN_WINDOWS");
        std::env::remove_var("OSCAR_CHURN_WINDOW");
        // Base knobs and declared extras pass.
        reject_unused_knobs(&[]).unwrap();
        std::env::set_var("OSCAR_CHURN_WINDOWS", "12");
        reject_unused_knobs(&["OSCAR_CHURN_WINDOWS"]).unwrap();
        // A knob the binary does not read is refused, not ignored.
        let err = reject_unused_knobs(&[]).unwrap_err();
        assert!(err.to_string().contains("OSCAR_CHURN_WINDOWS"), "{err}");
        std::env::remove_var("OSCAR_CHURN_WINDOWS");
        // So is a typo of one it does read.
        std::env::set_var("OSCAR_CHURN_WINDOW", "12");
        let err = reject_unused_knobs(&["OSCAR_CHURN_WINDOWS"]).unwrap_err();
        assert!(err.to_string().contains("OSCAR_CHURN_WINDOW"), "{err}");
    }

    #[test]
    fn small_scale_has_five_checkpoints() {
        let s = Scale::small(500, 9);
        assert_eq!(s.checkpoints(), vec![100, 200, 300, 400, 500]);
        assert_eq!(s.seed, 9);
    }
}
