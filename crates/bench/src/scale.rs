//! Experiment scale configuration.
//!
//! The paper's experiments run to 10,000 peers with checkpoints every
//! 1,000. A full regeneration takes minutes; `OSCAR_SCALE` shrinks the
//! whole schedule proportionally for quick validation runs:
//!
//! ```sh
//! OSCAR_SCALE=2000 cargo run --release -p oscar-bench --bin repro_fig1c
//! ```

/// Scale and seed of an experiment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Final network size (paper: 10,000).
    pub target: usize,
    /// Checkpoint spacing (paper: 1,000).
    pub step: usize,
    /// Root experiment seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's scale.
    pub fn paper() -> Self {
        Scale {
            target: 10_000,
            step: 1_000,
            seed: 42,
        }
    }

    /// Scale from the environment: `OSCAR_SCALE` (target size; step is
    /// target/10) and `OSCAR_SEED`. Defaults to [`Scale::paper`].
    pub fn from_env() -> Self {
        let mut scale = Scale::paper();
        if let Ok(s) = std::env::var("OSCAR_SCALE") {
            if let Ok(target) = s.trim().parse::<usize>() {
                let target = target.max(100);
                scale.target = target;
                scale.step = (target / 10).max(50);
            }
        }
        if let Ok(s) = std::env::var("OSCAR_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                scale.seed = seed;
            }
        }
        scale
    }

    /// Reduced scale for tests and Criterion benches.
    pub fn small(target: usize, seed: u64) -> Self {
        Scale {
            target,
            step: (target / 5).max(20),
            seed,
        }
    }

    /// The checkpoint sizes: `step, 2·step, …, target`.
    pub fn checkpoints(&self) -> Vec<usize> {
        let mut cps: Vec<usize> = (1..)
            .map(|k| k * self.step)
            .take_while(|&s| s < self.target)
            .collect();
        cps.push(self.target);
        cps
    }

    /// Checkpoints the figures plot (the paper's x axis starts at 2·step:
    /// 2,000..10,000).
    pub fn figure_checkpoints(&self) -> Vec<usize> {
        self.checkpoints()
            .into_iter()
            .filter(|&s| s >= 2 * self.step)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_the_paper() {
        let s = Scale::paper();
        assert_eq!(s.target, 10_000);
        assert_eq!(s.checkpoints().len(), 10);
        assert_eq!(s.checkpoints()[0], 1000);
        assert_eq!(*s.checkpoints().last().unwrap(), 10_000);
        assert_eq!(s.figure_checkpoints()[0], 2000);
    }

    #[test]
    fn checkpoints_cover_uneven_targets() {
        let s = Scale {
            target: 2500,
            step: 1000,
            seed: 1,
        };
        assert_eq!(s.checkpoints(), vec![1000, 2000, 2500]);
    }

    #[test]
    fn small_scale_has_five_checkpoints() {
        let s = Scale::small(500, 9);
        assert_eq!(s.checkpoints(), vec![100, 200, 300, 400, 500]);
        assert_eq!(s.seed, 9);
    }
}
