//! The scenario engine: named, seeded, multi-phase stress campaigns.
//!
//! A [`Scenario`] is a declarative sequence of [`PhaseSpec`]s — steady
//! churn spans, sinusoidal (diurnal) churn, mass-join bursts, contiguous
//! ring-arc outages, targeted top-degree kills, partition masks, heals
//! and drifting-hotspot query storms — run against one grown Oscar
//! overlay, measured per window, and judged by [`Check`]s. Each run
//! renders two artifacts with byte-stable formatting:
//!
//! * `scenario_<name>.csv` — one row per measurement window
//!   ([`write_scenario_csv`]; columns documented in `results/README.md`);
//! * `reports/<name>.md` — a self-documenting markdown report
//!   ([`write_scenario_report`]): config echo, phase timeline, window
//!   table, check verdicts.
//!
//! Determinism: a scenario's stream is keyed by `(scale.seed, name)` —
//! [`scenario_tag`] hashes the name, so a scenario's numbers never
//! depend on its position in the suite, and [`run_all_scenarios`] fans
//! the suite over [`Scale::thread_count`] workers with byte-identical
//! artifacts at any thread count (`tests/parallel_determinism.rs`).
//! Phase `p` draws from `child2(LBL_PHASE, p)`, window `w` within it
//! from `child2(LBL_WINDOW, w)` (scope `bench_scenario`).
//!
//! Backends: phases execute on the oracle engine
//! ([`oscar_sim::run_continuous_churn_with`] plus the
//! [`oscar_sim::scenario_hooks`] shocks). The subset of phases the
//! protocol machines support translates via [`machine_phases_for`] into
//! [`MachinePhase`]s runnable on any `ProtocolDriver` through
//! [`oscar_sim::run_machine_phases`] — partition masks and
//! targeted-degree kills need the oracle's global view and stay
//! legacy-only.

use crate::experiments::{churn_schedule_for, steady_mean_of};
use crate::parallel::{run_tasks, Task};
use crate::report::Report;
use crate::scale::Scale;
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::{ConstantDegrees, DegreeDistribution, SpikyDegrees};
use oscar_keydist::{GnutellaKeys, QueryWorkload};
use oscar_sim::scenario_hooks::{
    burst_joins, kill_ring_arc, kill_top_degree, reactive_heal, sever_arc_links,
};
use oscar_sim::{
    run_continuous_churn_with, ChurnSchedule, ChurnWindowStats, FaultModel, GrowthConfig,
    GrowthDriver, MachinePhase, Network, PeerIdx, RepairPolicy,
};
use oscar_types::labels::bench_scenario::{LBL_GROW, LBL_PHASE, LBL_RUN, LBL_WINDOW};
use oscar_types::{Result, SeedTree};
use std::path::PathBuf;

/// Ring-probe reach of the scenario suite's reactive repair (the
/// "reactive-k2" regime of the phase diagram).
const NEIGHBORS_K: usize = 2;

/// Successor-list length every scenario routes with after growth: long
/// enough to survive isolated corpses, short enough that shocks hurt.
const SUCC_LIST_LEN: usize = 4;

/// Which degree-cap distribution a scenario's peers draw from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DegreeKind {
    /// Homogeneous caps ([`ConstantDegrees::paper`]).
    Constant,
    /// Heterogeneous Gnutella-style caps ([`SpikyDegrees::paper`]):
    /// a few high-budget hubs over a modest majority.
    Spiky,
}

impl DegreeKind {
    fn dist(&self) -> Box<dyn DegreeDistribution> {
        match self {
            DegreeKind::Constant => Box::new(ConstantDegrees::paper()),
            DegreeKind::Spiky => Box::new(SpikyDegrees::paper()),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DegreeKind::Constant => "constant(paper)",
            DegreeKind::Spiky => "spiky(paper)",
        }
    }
}

/// One phase of a scenario.
#[derive(Clone, Debug)]
pub enum PhaseSpec {
    /// Steady Poisson churn at `turnover` of the population per window,
    /// measured for `windows` windows.
    Churn {
        /// Phase label in artifacts.
        label: &'static str,
        /// Per-window peer turnover as a fraction of the grown size.
        turnover: f64,
        /// Measurement windows.
        windows: usize,
    },
    /// Sinusoidal churn: window `w` runs at
    /// `mean · (1 + amplitude · sin(2π·w / period))` turnover — a day
    /// of load compressed into `period` windows.
    Diurnal {
        /// Phase label in artifacts.
        label: &'static str,
        /// Mean per-window turnover.
        mean: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
        /// Windows per full sine period.
        period: usize,
        /// Measurement windows.
        windows: usize,
    },
    /// Background churn with a drifting-hotspot query workload: window
    /// `w`'s measurement batch draws `hot_fraction` of its targets from
    /// a `width`-wide ring region centred at `w / windows` (one full
    /// lap of the ring over the phase).
    QueryStorm {
        /// Phase label in artifacts.
        label: &'static str,
        /// Per-window background turnover.
        turnover: f64,
        /// Measurement windows (also the drift resolution).
        windows: usize,
        /// Hot-region width as a ring fraction.
        width: f64,
        /// Fraction of each batch aimed into the hot region.
        hot_fraction: f64,
    },
    /// Flash crowd: `fraction · live` peers join at once, then one
    /// zero-churn window measures the aftermath.
    MassJoin {
        /// Phase label in artifacts.
        label: &'static str,
        /// Burst size as a fraction of the current live population.
        fraction: f64,
    },
    /// Regional outage: kills the contiguous ring arc of
    /// `fraction · live` peers starting at ring position `start`, then
    /// one zero-churn window measures the damage.
    KillArc {
        /// Phase label in artifacts.
        label: &'static str,
        /// Arc start as a ring fraction (wraps).
        start: f64,
        /// Fraction of the live population killed.
        fraction: f64,
    },
    /// Targeted attack: kills the `fraction · live` highest-degree
    /// peers, then one zero-churn window measures the damage.
    TargetedKill {
        /// Phase label in artifacts.
        label: &'static str,
        /// Fraction of the live population killed.
        fraction: f64,
    },
    /// Partition mask: severs every long link crossing the
    /// `[start, start + fraction)` arc boundary (both directions), then
    /// one zero-churn window measures the split overlay.
    Partition {
        /// Phase label in artifacts.
        label: &'static str,
        /// Arc start as a ring fraction (wraps).
        start: f64,
        /// Arc width as a ring fraction.
        fraction: f64,
    },
    /// Reactive heal: rewires the survivors bordering all damage since
    /// the last heal (plus anyone holding a dangling link), then one
    /// zero-churn window measures the healed overlay.
    Heal {
        /// Phase label in artifacts.
        label: &'static str,
    },
}

impl PhaseSpec {
    /// The phase's label in artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseSpec::Churn { label, .. }
            | PhaseSpec::Diurnal { label, .. }
            | PhaseSpec::QueryStorm { label, .. }
            | PhaseSpec::MassJoin { label, .. }
            | PhaseSpec::KillArc { label, .. }
            | PhaseSpec::TargetedKill { label, .. }
            | PhaseSpec::Partition { label, .. }
            | PhaseSpec::Heal { label } => label,
        }
    }

    /// Phase kind for the timeline table.
    fn kind(&self) -> &'static str {
        match self {
            PhaseSpec::Churn { .. } => "churn",
            PhaseSpec::Diurnal { .. } => "diurnal",
            PhaseSpec::QueryStorm { .. } => "query-storm",
            PhaseSpec::MassJoin { .. } => "mass-join",
            PhaseSpec::KillArc { .. } => "kill-arc",
            PhaseSpec::TargetedKill { .. } => "targeted-kill",
            PhaseSpec::Partition { .. } => "partition",
            PhaseSpec::Heal { .. } => "heal",
        }
    }

    /// Human parameter echo for the timeline table.
    fn detail(&self) -> String {
        match self {
            PhaseSpec::Churn { turnover, .. } => {
                format!("turnover {:.1}%/win", turnover * 100.0)
            }
            PhaseSpec::Diurnal {
                mean,
                amplitude,
                period,
                ..
            } => format!(
                "mean {:.1}%/win, swing ±{:.0}%, period {period} windows",
                mean * 100.0,
                amplitude * 100.0
            ),
            PhaseSpec::QueryStorm {
                turnover,
                width,
                hot_fraction,
                ..
            } => format!(
                "turnover {:.1}%/win, hotspot width {width}, hot fraction {hot_fraction}, \
                 center drifts one full lap",
                turnover * 100.0
            ),
            PhaseSpec::MassJoin { fraction, .. } => {
                format!("burst of {:.0}% of the live population", fraction * 100.0)
            }
            PhaseSpec::KillArc {
                start, fraction, ..
            } => format!(
                "kill arc [{start}, {:.2}) = {:.0}% of the ring",
                start + fraction,
                fraction * 100.0
            ),
            PhaseSpec::TargetedKill { fraction, .. } => {
                format!("kill top {:.0}% by degree", fraction * 100.0)
            }
            PhaseSpec::Partition {
                start, fraction, ..
            } => format!(
                "sever all long links crossing the [{start}, {:.2}) arc boundary",
                start + fraction
            ),
            PhaseSpec::Heal { .. } => "rewire damage-adjacent survivors".into(),
        }
    }

    /// Measurement windows this phase contributes (shock phases measure
    /// exactly one aftermath window).
    fn window_count(&self) -> usize {
        match self {
            PhaseSpec::Churn { windows, .. }
            | PhaseSpec::Diurnal { windows, .. }
            | PhaseSpec::QueryStorm { windows, .. } => *windows,
            _ => 1,
        }
    }
}

/// A pass/fail criterion over a scenario's measured windows. Phase
/// indices refer to the scenario's phase list; multi-window phases are
/// judged by their steady-state tail (last half of their windows, like
/// [`steady_mean_of`]).
#[derive(Clone, Debug)]
pub enum Check {
    /// Phase `phase`'s tail-mean delivery rate must be at least `min`.
    MinDelivery {
        /// Judged phase.
        phase: usize,
        /// Inclusive lower bound on tail-mean `success_rate`.
        min: f64,
    },
    /// Phase `after`'s tail-mean delivery must recover to at least
    /// phase `before`'s tail-mean minus `slack`.
    RecoversDelivery {
        /// Baseline phase (typically the pre-shock steady span).
        before: usize,
        /// Judged phase (typically the post-heal recovery span).
        after: usize,
        /// Tolerated shortfall (0.0 = must fully recover).
        slack: f64,
    },
    /// Phase `phase`'s tail-mean query cost must stay at or under `max`.
    MaxMeanCost {
        /// Judged phase.
        phase: usize,
        /// Inclusive upper bound on tail-mean `mean_cost`.
        max: f64,
    },
    /// The final window's live population must be at least
    /// `min · scale.target` (no scenario may quietly depopulate).
    MinLiveFraction {
        /// Lower bound as a fraction of the grown size.
        min: f64,
    },
}

/// The evaluated outcome of one [`Check`].
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// What was checked, human-readable.
    pub label: String,
    /// The measured value.
    pub observed: f64,
    /// The bound it was held against.
    pub bound: f64,
    /// Whether the bound held.
    pub passed: bool,
}

/// One measured window of a scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioRow {
    /// Global window index across the whole scenario.
    pub window: usize,
    /// Index of the phase that produced it.
    pub phase: usize,
    /// That phase's label.
    pub phase_label: &'static str,
    /// The window's books (shock phases patch their membership deltas
    /// — burst joins, arc kills — into their aftermath window).
    pub stats: ChurnWindowStats,
    /// Free-form shock annotation ("killed 300", "severed 124 links").
    pub note: String,
}

/// A named, seeded, multi-phase stress campaign.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Artifact-stable name (`scenario_<name>.csv`, `reports/<name>.md`).
    pub name: &'static str,
    /// One-paragraph description rendered into the report.
    pub description: &'static str,
    /// Degree-cap distribution of the grown substrate.
    pub degrees: DegreeKind,
    /// The phase sequence.
    pub phases: Vec<PhaseSpec>,
    /// Pass/fail criteria.
    pub checks: Vec<Check>,
}

/// A completed scenario run: every measured window plus the evaluated
/// checks.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub name: &'static str,
    /// The scenario's description.
    pub description: &'static str,
    /// The scenario as run (phase echo for the report).
    pub scenario: Scenario,
    /// Root seed of the run (`scale.seed`; the scenario's own stream is
    /// additionally keyed by [`scenario_tag`] of its name).
    pub seed: u64,
    /// Grown substrate size.
    pub target: usize,
    /// Every measured window, in order.
    pub rows: Vec<ScenarioRow>,
    /// Evaluated checks, in declaration order.
    pub checks: Vec<CheckOutcome>,
}

impl ScenarioOutcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Tail-mean of `f` over the windows of phase `p` (last half of a
    /// multi-window phase; the single window of a shock phase).
    pub fn phase_tail_mean(&self, p: usize, f: impl Fn(&ChurnWindowStats) -> f64) -> f64 {
        let windows: Vec<ChurnWindowStats> = self
            .rows
            .iter()
            .filter(|r| r.phase == p)
            .map(|r| r.stats.clone())
            .collect();
        steady_mean_of(&windows, f)
    }
}

/// FNV-1a of the scenario name: the `child2(LBL_RUN, tag)` key that
/// makes a scenario's stream independent of its position in the suite.
pub fn scenario_tag(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The suite's churn schedule at `turnover`: the standard ladder
/// schedule with the reactive-k2 repair regime every scenario uses.
fn scenario_schedule(turnover: f64, scale: &Scale) -> ChurnSchedule {
    ChurnSchedule {
        repair: RepairPolicy::Reactive {
            neighbors_k: NEIGHBORS_K,
        },
        ..churn_schedule_for(turnover.max(0.0), scale)
    }
}

/// Runs one engine window and returns its books.
#[allow(clippy::too_many_arguments)]
fn one_window(
    net: &mut Network,
    builder: &OscarBuilder,
    keys: &GnutellaKeys,
    degrees: &dyn DegreeDistribution,
    schedule: &ChurnSchedule,
    workload: &QueryWorkload,
    wseed: SeedTree,
) -> Result<ChurnWindowStats> {
    let mut windows =
        run_continuous_churn_with(net, builder, keys, degrees, schedule, workload, 1, wseed)?;
    Ok(windows.pop().expect("asked for exactly one window"))
}

/// Runs `sc` at `scale` on the oracle backend and evaluates its checks.
///
/// Grows a fresh Oscar overlay to `scale.target` under the stabilised
/// ring, then flips to [`FaultModel::UnstabilizedRing`] with a
/// successor list of 4 — corpses stay visible and damage costs real
/// delivery — and executes the phases in order. Pure function of
/// `(sc, scale.target, scale.seed)`.
pub fn run_scenario(sc: &Scenario, scale: &Scale) -> Result<ScenarioOutcome> {
    let seed = SeedTree::new(scale.seed).child2(LBL_RUN, scenario_tag(sc.name));
    let builder = OscarBuilder::new(OscarConfig::default());
    let keys = GnutellaKeys::default();
    let degrees = sc.degrees.dist();

    let mut net = Network::new(FaultModel::StabilizedRing);
    GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: vec![scale.target],
        rewire_at_checkpoints: true,
    })
    .run(
        &mut net,
        &builder,
        &keys,
        degrees.as_ref(),
        seed.child(LBL_GROW),
        |_, _| Ok(()),
    )?;
    net.set_fault_model(FaultModel::UnstabilizedRing);
    net.set_succ_list_len(SUCC_LIST_LEN);

    let mut rows: Vec<ScenarioRow> = Vec::new();
    // Survivors bordering un-healed damage, accumulated across shocks
    // and consumed by the next Heal phase.
    let mut pending_repairs: Vec<PeerIdx> = Vec::new();
    let zero = scenario_schedule(0.0, scale);

    for (p, phase) in sc.phases.iter().enumerate() {
        let pseed = seed.child2(LBL_PHASE, p as u64);
        let push = |stats: ChurnWindowStats, note: String, rows: &mut Vec<ScenarioRow>| {
            let mut stats = stats;
            stats.window = rows.len();
            rows.push(ScenarioRow {
                window: stats.window,
                phase: p,
                phase_label: phase.label(),
                stats,
                note,
            });
        };
        match phase {
            PhaseSpec::Churn {
                turnover, windows, ..
            } => {
                let schedule = scenario_schedule(*turnover, scale);
                for w in 0..*windows {
                    let stats = one_window(
                        &mut net,
                        &builder,
                        &keys,
                        degrees.as_ref(),
                        &schedule,
                        &QueryWorkload::UniformPeers,
                        pseed.child2(LBL_WINDOW, w as u64),
                    )?;
                    push(stats, String::new(), &mut rows);
                }
            }
            PhaseSpec::Diurnal {
                mean,
                amplitude,
                period,
                windows,
                ..
            } => {
                for w in 0..*windows {
                    let angle = std::f64::consts::TAU * w as f64 / (*period).max(1) as f64;
                    let turnover = mean * (1.0 + amplitude * angle.sin());
                    let schedule = scenario_schedule(turnover, scale);
                    let stats = one_window(
                        &mut net,
                        &builder,
                        &keys,
                        degrees.as_ref(),
                        &schedule,
                        &QueryWorkload::UniformPeers,
                        pseed.child2(LBL_WINDOW, w as u64),
                    )?;
                    push(
                        stats,
                        format!("turnover {:.2}%", turnover * 100.0),
                        &mut rows,
                    );
                }
            }
            PhaseSpec::QueryStorm {
                turnover,
                windows,
                width,
                hot_fraction,
                ..
            } => {
                let schedule = scenario_schedule(*turnover, scale);
                for w in 0..*windows {
                    let center = w as f64 / (*windows).max(1) as f64;
                    let workload = QueryWorkload::Hotspot {
                        center,
                        width: *width,
                        hot_fraction: *hot_fraction,
                    };
                    let stats = one_window(
                        &mut net,
                        &builder,
                        &keys,
                        degrees.as_ref(),
                        &schedule,
                        &workload,
                        pseed.child2(LBL_WINDOW, w as u64),
                    )?;
                    push(stats, format!("hotspot center {center:.3}"), &mut rows);
                }
            }
            PhaseSpec::MassJoin { fraction, .. } => {
                let count = ((net.live_count() as f64 * fraction).ceil() as usize).max(1);
                let joined =
                    burst_joins(&mut net, &builder, &keys, degrees.as_ref(), count, &pseed)?;
                let mut stats = one_window(
                    &mut net,
                    &builder,
                    &keys,
                    degrees.as_ref(),
                    &zero,
                    &QueryWorkload::UniformPeers,
                    pseed.child2(LBL_WINDOW, 0),
                )?;
                stats.joins += joined.len() as u64;
                push(stats, format!("{} joined at once", joined.len()), &mut rows);
            }
            PhaseSpec::KillArc {
                start, fraction, ..
            } => {
                let damage = kill_ring_arc(&mut net, *start, *fraction, NEIGHBORS_K)?;
                pending_repairs.extend_from_slice(&damage.repair_set);
                let mut stats = one_window(
                    &mut net,
                    &builder,
                    &keys,
                    degrees.as_ref(),
                    &zero,
                    &QueryWorkload::UniformPeers,
                    pseed.child2(LBL_WINDOW, 0),
                )?;
                stats.crashes += damage.victims.len() as u64;
                push(
                    stats,
                    format!("killed {} contiguous peers", damage.victims.len()),
                    &mut rows,
                );
            }
            PhaseSpec::TargetedKill { fraction, .. } => {
                let damage = kill_top_degree(&mut net, *fraction, NEIGHBORS_K)?;
                pending_repairs.extend_from_slice(&damage.repair_set);
                let mut stats = one_window(
                    &mut net,
                    &builder,
                    &keys,
                    degrees.as_ref(),
                    &zero,
                    &QueryWorkload::UniformPeers,
                    pseed.child2(LBL_WINDOW, 0),
                )?;
                stats.crashes += damage.victims.len() as u64;
                push(
                    stats,
                    format!("killed {} highest-degree peers", damage.victims.len()),
                    &mut rows,
                );
            }
            PhaseSpec::Partition {
                start, fraction, ..
            } => {
                let damage = sever_arc_links(&mut net, *start, *fraction)?;
                pending_repairs.extend_from_slice(&damage.repair_set);
                let stats = one_window(
                    &mut net,
                    &builder,
                    &keys,
                    degrees.as_ref(),
                    &zero,
                    &QueryWorkload::UniformPeers,
                    pseed.child2(LBL_WINDOW, 0),
                )?;
                push(
                    stats,
                    format!("severed {} crossing links", damage.severed),
                    &mut rows,
                );
            }
            PhaseSpec::Heal { .. } => {
                let (repairs, cost) = reactive_heal(&mut net, &builder, &pending_repairs, &pseed)?;
                pending_repairs.clear();
                let mut stats = one_window(
                    &mut net,
                    &builder,
                    &keys,
                    degrees.as_ref(),
                    &zero,
                    &QueryWorkload::UniformPeers,
                    pseed.child2(LBL_WINDOW, 0),
                )?;
                stats.repairs += repairs;
                stats.repair_cost += cost;
                push(stats, format!("rewired {repairs} peers"), &mut rows);
            }
        }
    }

    let mut outcome = ScenarioOutcome {
        name: sc.name,
        description: sc.description,
        scenario: sc.clone(),
        seed: scale.seed,
        target: scale.target,
        rows,
        checks: Vec::new(),
    };
    outcome.checks = sc
        .checks
        .iter()
        .map(|c| evaluate_check(c, &outcome))
        .collect();
    Ok(outcome)
}

/// Evaluates one check against a completed run.
fn evaluate_check(check: &Check, out: &ScenarioOutcome) -> CheckOutcome {
    let phase_label = |p: usize| {
        out.scenario
            .phases
            .get(p)
            .map(|ph| ph.label())
            .unwrap_or("?")
    };
    match check {
        Check::MinDelivery { phase, min } => {
            let observed = out.phase_tail_mean(*phase, |w| w.queries.success_rate);
            CheckOutcome {
                label: format!("delivery in '{}' >= {min:.3}", phase_label(*phase)),
                observed,
                bound: *min,
                passed: observed >= *min,
            }
        }
        Check::RecoversDelivery {
            before,
            after,
            slack,
        } => {
            let base = out.phase_tail_mean(*before, |w| w.queries.success_rate);
            let observed = out.phase_tail_mean(*after, |w| w.queries.success_rate);
            let bound = base - slack;
            CheckOutcome {
                label: format!(
                    "delivery in '{}' recovers to >= '{}' - {slack:.3}",
                    phase_label(*after),
                    phase_label(*before)
                ),
                observed,
                bound,
                passed: observed >= bound,
            }
        }
        Check::MaxMeanCost { phase, max } => {
            let observed = out.phase_tail_mean(*phase, |w| w.queries.mean_cost);
            CheckOutcome {
                label: format!("mean cost in '{}' <= {max:.1}", phase_label(*phase)),
                observed,
                bound: *max,
                passed: observed <= *max,
            }
        }
        Check::MinLiveFraction { min } => {
            let observed = out
                .rows
                .last()
                .map(|r| r.stats.live_at_end as f64 / out.target as f64)
                .unwrap_or(0.0);
            CheckOutcome {
                label: format!("final live population >= {:.0}% of grown", min * 100.0),
                observed,
                bound: *min,
                passed: observed >= *min,
            }
        }
    }
}

/// The committed scenario suite: five adversarial/heterogeneous
/// campaigns plus a partition exercise, all under the reactive-k2
/// repair regime on the unstabilised ring.
pub fn standard_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "flash_crowd",
            description: "Steady 1%/window churn, then a mass-join burst of 10% of the \
                          population at once (10x the steady per-window join volume), then the \
                          aftermath: does admission-by-protocol absorb a flash crowd without \
                          hurting delivery?",
            degrees: DegreeKind::Constant,
            phases: vec![
                PhaseSpec::Churn {
                    label: "steady",
                    turnover: 0.01,
                    windows: 3,
                },
                PhaseSpec::MassJoin {
                    label: "burst",
                    fraction: 0.10,
                },
                PhaseSpec::Churn {
                    label: "aftermath",
                    turnover: 0.01,
                    windows: 5,
                },
            ],
            checks: vec![
                Check::MinDelivery {
                    phase: 2,
                    min: 0.90,
                },
                Check::RecoversDelivery {
                    before: 0,
                    after: 2,
                    slack: 0.05,
                },
                Check::MinLiveFraction { min: 0.8 },
            ],
        },
        Scenario {
            name: "diurnal",
            description: "Two full sinusoidal load cycles: per-window turnover swings +/-80% \
                          around a 1% mean, modelling the day/night churn rhythm of a real \
                          deployment. Delivery must hold through the peaks.",
            degrees: DegreeKind::Constant,
            phases: vec![PhaseSpec::Diurnal {
                label: "cycles",
                mean: 0.01,
                amplitude: 0.8,
                period: 8,
                windows: 16,
            }],
            checks: vec![
                Check::MinDelivery {
                    phase: 0,
                    min: 0.90,
                },
                Check::MinLiveFraction { min: 0.7 },
            ],
        },
        Scenario {
            name: "regional_outage",
            description: "A contiguous 15% arc of the identifier ring goes dark at once (one \
                          region, one data centre), is measured damaged, then the survivors \
                          bordering the hole heal reactively. Delivery must recover to at \
                          least its pre-outage level.",
            degrees: DegreeKind::Constant,
            phases: vec![
                PhaseSpec::Churn {
                    label: "steady",
                    turnover: 0.005,
                    windows: 3,
                },
                PhaseSpec::KillArc {
                    label: "outage",
                    start: 0.25,
                    fraction: 0.15,
                },
                PhaseSpec::Heal { label: "heal" },
                PhaseSpec::Churn {
                    label: "recovery",
                    turnover: 0.005,
                    windows: 5,
                },
            ],
            checks: vec![
                // Half a percent of slack: the recovery tail runs under
                // live background churn, so a single in-window crash can
                // cost one query without indicting the heal. The strict
                // recovered >= pre comparison is pinned (at a fixed
                // scale and seed) by tests/scenario_recovery.rs.
                Check::RecoversDelivery {
                    before: 0,
                    after: 3,
                    slack: 0.005,
                },
                Check::MinLiveFraction { min: 0.7 },
            ],
        },
        Scenario {
            name: "targeted_attack",
            description: "Heterogeneous (spiky) degree caps, then an adversary kills the top \
                          5% of peers by long-link degree — the hubs. The repair regime must \
                          rebuild routing around the missing hubs.",
            degrees: DegreeKind::Spiky,
            phases: vec![
                PhaseSpec::Churn {
                    label: "steady",
                    turnover: 0.005,
                    windows: 3,
                },
                PhaseSpec::TargetedKill {
                    label: "attack",
                    fraction: 0.05,
                },
                PhaseSpec::Heal { label: "heal" },
                PhaseSpec::Churn {
                    label: "recovery",
                    turnover: 0.005,
                    windows: 5,
                },
            ],
            checks: vec![
                Check::RecoversDelivery {
                    before: 0,
                    after: 3,
                    slack: 0.02,
                },
                Check::MinLiveFraction { min: 0.8 },
            ],
        },
        Scenario {
            name: "hotspot_drift",
            description: "Heterogeneous degree caps under mild churn while every window's \
                          query batch aims 80% of its traffic into a narrow hot region whose \
                          center drifts one full lap of the ring — a moving flash-interest \
                          workload (mixture over the gnutella key distribution).",
            degrees: DegreeKind::Spiky,
            phases: vec![PhaseSpec::QueryStorm {
                label: "storm",
                turnover: 0.005,
                windows: 12,
                width: 0.05,
                hot_fraction: 0.8,
            }],
            checks: vec![
                Check::MinDelivery {
                    phase: 0,
                    min: 0.90,
                },
                Check::MinLiveFraction { min: 0.8 },
            ],
        },
        Scenario {
            name: "partition_heal",
            description: "Every long link crossing a ring-arc boundary is severed at once — a \
                          partition mask splitting the shortcut graph in two — then the cut \
                          edge is healed reactively. Delivery must recover.",
            degrees: DegreeKind::Constant,
            phases: vec![
                PhaseSpec::Churn {
                    label: "steady",
                    turnover: 0.005,
                    windows: 2,
                },
                PhaseSpec::Partition {
                    label: "partition",
                    start: 0.0,
                    fraction: 0.5,
                },
                PhaseSpec::Heal { label: "heal" },
                PhaseSpec::Churn {
                    label: "recovery",
                    turnover: 0.005,
                    windows: 4,
                },
            ],
            checks: vec![
                Check::RecoversDelivery {
                    before: 0,
                    after: 3,
                    slack: 0.02,
                },
                Check::MinLiveFraction { min: 0.8 },
            ],
        },
    ]
}

/// Runs the whole suite, one scenario per task, fanned over
/// [`Scale::thread_count`] workers. Scenario streams are keyed by name
/// (not position), so the artifacts are byte-identical at any thread
/// count.
pub fn run_all_scenarios(scale: &Scale) -> Result<Vec<ScenarioOutcome>> {
    let suite = standard_scenarios();
    let tasks: Vec<Task<Result<ScenarioOutcome>>> = suite
        .into_iter()
        .map(|sc| {
            let scale = scale.clone();
            Box::new(move || run_scenario(&sc, &scale)) as Task<Result<ScenarioOutcome>>
        })
        .collect();
    run_tasks(scale.thread_count(), tasks).into_iter().collect()
}

/// Translates the machine-runnable subset of a scenario's phases into
/// [`MachinePhase`]s for [`oscar_sim::run_machine_phases`] (any
/// `ProtocolDriver`). Diurnal and query-storm phases unroll into
/// per-window spans; partition masks, targeted-degree kills and heal
/// phases need the oracle's global view and return `None`.
pub fn machine_phases_for(sc: &Scenario, scale: &Scale) -> Option<Vec<MachinePhase>> {
    let mut out = Vec::new();
    for phase in &sc.phases {
        match phase {
            PhaseSpec::Churn {
                turnover, windows, ..
            } => out.push(MachinePhase::Churn {
                schedule: scenario_schedule(*turnover, scale),
                workload: QueryWorkload::UniformPeers,
                windows: *windows,
            }),
            PhaseSpec::Diurnal {
                mean,
                amplitude,
                period,
                windows,
                ..
            } => {
                for w in 0..*windows {
                    let angle = std::f64::consts::TAU * w as f64 / (*period).max(1) as f64;
                    out.push(MachinePhase::Churn {
                        schedule: scenario_schedule(mean * (1.0 + amplitude * angle.sin()), scale),
                        workload: QueryWorkload::UniformPeers,
                        windows: 1,
                    });
                }
            }
            PhaseSpec::QueryStorm {
                turnover,
                windows,
                width,
                hot_fraction,
                ..
            } => {
                for w in 0..*windows {
                    out.push(MachinePhase::Churn {
                        schedule: scenario_schedule(*turnover, scale),
                        workload: QueryWorkload::Hotspot {
                            center: w as f64 / (*windows).max(1) as f64,
                            width: *width,
                            hot_fraction: *hot_fraction,
                        },
                        windows: 1,
                    });
                }
            }
            PhaseSpec::MassJoin { fraction, .. } => {
                out.push(MachinePhase::MassJoin {
                    count: ((scale.target as f64 * fraction).ceil() as usize).max(1),
                });
                out.push(MachinePhase::Churn {
                    schedule: scenario_schedule(0.0, scale),
                    workload: QueryWorkload::UniformPeers,
                    windows: 1,
                });
            }
            PhaseSpec::KillArc {
                start, fraction, ..
            } => {
                out.push(MachinePhase::KillArc {
                    start: *start,
                    fraction: *fraction,
                });
                out.push(MachinePhase::Churn {
                    schedule: scenario_schedule(0.0, scale),
                    workload: QueryWorkload::UniformPeers,
                    windows: 1,
                });
            }
            PhaseSpec::TargetedKill { .. }
            | PhaseSpec::Partition { .. }
            | PhaseSpec::Heal { .. } => {
                return None;
            }
        }
    }
    Some(out)
}

/// Renders a float with a fixed number of decimals — the one float
/// formatting the CSV and report use, so artifacts are byte-stable.
fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Writes `scenario_<name>.csv` (one row per measured window) into the
/// results directory and returns its path. Columns are documented in
/// `results/README.md`.
pub fn write_scenario_csv(out: &ScenarioOutcome) -> std::io::Result<PathBuf> {
    let mut csv = String::from(
        "window,phase,phase_label,live,joins,crashes,departs,repairs,repair_cost,suppressed,\
         delivery,mean_cost,p50_cost,p95_cost,se_cost,mean_wasted\n",
    );
    for r in &out.rows {
        let q = &r.stats.queries;
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.window,
            r.phase,
            r.phase_label,
            r.stats.live_at_end,
            r.stats.joins,
            r.stats.crashes,
            r.stats.departs,
            r.stats.repairs,
            r.stats.repair_cost,
            r.stats.suppressed,
            fmt(q.success_rate, 4),
            fmt(q.mean_cost, 3),
            fmt(q.p50_cost, 3),
            fmt(q.p95_cost, 3),
            fmt(q.se_cost, 4),
            fmt(q.mean_wasted, 3),
        ));
    }
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("scenario_{}.csv", out.name));
    std::fs::write(&path, csv)?;
    Ok(path)
}

/// Renders the self-documenting markdown report of one run. Pure
/// function of the outcome — no timestamps, no wall-clock — so the
/// report is byte-identical across reruns and thread counts.
pub fn render_scenario_report(out: &ScenarioOutcome) -> String {
    let mut md = String::new();
    md.push_str(&format!("# Scenario: {}\n\n", out.name));
    md.push_str(&format!("> {}\n\n", out.description));
    md.push_str("## Configuration\n\n");
    md.push_str(&format!(
        "- grown substrate: {} peers (Oscar builder, gnutella keys, {} degree caps)\n",
        out.target,
        out.scenario.degrees.name()
    ));
    md.push_str(&format!(
        "- fault model: unstabilised ring, successor list {SUCC_LIST_LEN}\n\
         - repair regime: reactive, ring-neighbourhood k = {NEIGHBORS_K}\n\
         - root seed: {} (scenario stream keyed by name, tag {:#018x})\n\n",
        out.seed,
        scenario_tag(out.name)
    ));
    md.push_str("## Phase timeline\n\n");
    md.push_str("| # | phase | kind | windows | parameters |\n");
    md.push_str("|---|-------|------|---------|------------|\n");
    for (i, ph) in out.scenario.phases.iter().enumerate() {
        md.push_str(&format!(
            "| {i} | {} | {} | {} | {} |\n",
            ph.label(),
            ph.kind(),
            ph.window_count(),
            ph.detail()
        ));
    }
    md.push_str("\n## Windows\n\n");
    md.push_str(
        "| w | phase | live | joins | crashes | departs | repairs | repair msgs | delivery | \
         mean cost | p50 | p95 | se | wasted | note |\n",
    );
    md.push_str(
        "|---|-------|------|-------|---------|---------|---------|-------------|----------|\
         -----------|-----|-----|----|--------|------|\n",
    );
    for r in &out.rows {
        let q = &r.stats.queries;
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.window,
            r.phase_label,
            r.stats.live_at_end,
            r.stats.joins,
            r.stats.crashes,
            r.stats.departs,
            r.stats.repairs,
            r.stats.repair_cost,
            fmt(q.success_rate, 4),
            fmt(q.mean_cost, 2),
            fmt(q.p50_cost, 2),
            fmt(q.p95_cost, 2),
            fmt(q.se_cost, 3),
            fmt(q.mean_wasted, 2),
            if r.note.is_empty() { "-" } else { &r.note },
        ));
    }
    md.push_str("\n## Checks\n\n");
    md.push_str("| check | bound | observed | verdict |\n");
    md.push_str("|-------|-------|----------|---------|\n");
    for c in &out.checks {
        md.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            c.label,
            fmt(c.bound, 4),
            fmt(c.observed, 4),
            if c.passed { "PASS" } else { "**FAIL**" },
        ));
    }
    md.push_str(&format!(
        "\nVerdict: **{}**\n",
        if out.passed() { "PASS" } else { "FAIL" }
    ));
    md
}

/// Writes `reports/<name>.md` into the results directory and returns
/// its path.
pub fn write_scenario_report(out: &ScenarioOutcome) -> std::io::Result<PathBuf> {
    let dir = Report::results_dir().join("reports");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.md", out.name));
    std::fs::write(&path, render_scenario_report(out))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::small(200, 9)
    }

    #[test]
    fn suite_names_are_unique_and_stable() {
        let suite = standard_scenarios();
        let names: Vec<&str> = suite.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "flash_crowd",
                "diurnal",
                "regional_outage",
                "targeted_attack",
                "hotspot_drift",
                "partition_heal"
            ]
        );
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        // Tags are how suite position independence is achieved — they
        // must differ per name.
        let mut tags: Vec<u64> = names.iter().map(|n| scenario_tag(n)).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), names.len());
    }

    #[test]
    fn flash_crowd_runs_and_counts_windows() {
        let sc = &standard_scenarios()[0];
        let out = run_scenario(sc, &tiny()).unwrap();
        // 3 steady + 1 burst aftermath + 5 aftermath windows.
        assert_eq!(out.rows.len(), 9);
        assert_eq!(out.rows[3].phase_label, "burst");
        assert!(out.rows[3].stats.joins >= 20, "10% of 200 joined at once");
        assert_eq!(out.checks.len(), sc.checks.len());
        // Every row's global index is its position.
        for (i, r) in out.rows.iter().enumerate() {
            assert_eq!(r.window, i);
            assert_eq!(r.stats.window, i);
        }
    }

    #[test]
    fn scenario_artifacts_are_deterministic() {
        let sc = &standard_scenarios()[2]; // regional_outage: uses hooks + heal
        let a = run_scenario(sc, &tiny()).unwrap();
        let b = run_scenario(sc, &tiny()).unwrap();
        assert_eq!(render_scenario_report(&a), render_scenario_report(&b));
    }

    #[test]
    fn machine_translation_covers_the_machine_runnable_subset() {
        let suite = standard_scenarios();
        let scale = tiny();
        let by_name = |n: &str| suite.iter().find(|s| s.name == n).unwrap();
        // flash_crowd: churn + mass-join + churn → 2 extra aftermath spans.
        let phases = machine_phases_for(by_name("flash_crowd"), &scale).unwrap();
        assert_eq!(phases.len(), 4);
        assert!(matches!(phases[1], MachinePhase::MassJoin { count: 20 }));
        // regional_outage has a Heal phase — oracle-only.
        assert!(machine_phases_for(by_name("regional_outage"), &scale).is_none());
        assert!(machine_phases_for(by_name("targeted_attack"), &scale).is_none());
        assert!(machine_phases_for(by_name("partition_heal"), &scale).is_none());
        // diurnal unrolls per window; hotspot_drift drifts per window.
        assert_eq!(
            machine_phases_for(by_name("diurnal"), &scale)
                .unwrap()
                .len(),
            16
        );
        let storm = machine_phases_for(by_name("hotspot_drift"), &scale).unwrap();
        assert_eq!(storm.len(), 12);
        let MachinePhase::Churn { workload, .. } = &storm[6] else {
            panic!("storm windows are churn spans");
        };
        assert_eq!(workload.name(), "hotspot(c=0.500,w=0.05,f=0.8)");
    }

    #[test]
    fn report_renders_all_sections_and_verdict() {
        let sc = &standard_scenarios()[0];
        let out = run_scenario(sc, &tiny()).unwrap();
        let md = render_scenario_report(&out);
        for section in [
            "# Scenario: flash_crowd",
            "## Configuration",
            "## Phase timeline",
            "## Windows",
            "## Checks",
            "Verdict: **",
        ] {
            assert!(md.contains(section), "missing {section:?}");
        }
        // One window table row per measured window.
        assert!(
            md.lines()
                .filter(|l| l.starts_with("| ") && l.contains(" | "))
                .count()
                >= out.rows.len()
        );
    }

    #[test]
    fn csv_has_one_row_per_window_and_stable_header() {
        let _lock = crate::env_guard::lock();
        let _cleanup = crate::env_guard::RemoveOnDrop(&["OSCAR_RESULTS_DIR"]);
        let dir = std::env::temp_dir().join("oscar_scenario_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("OSCAR_RESULTS_DIR", &dir);
        let sc = &standard_scenarios()[0];
        let out = run_scenario(sc, &tiny()).unwrap();
        let path = write_scenario_csv(&out).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines = content.lines();
        assert!(lines
            .next()
            .unwrap()
            .starts_with("window,phase,phase_label,live,joins"));
        assert_eq!(lines.count(), out.rows.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
