//! The scenario suite: adversarial and heterogeneous stress campaigns
//! past the paper's steady-state figures — flash crowds, diurnal load,
//! regional outages, targeted hub attacks, drifting query hotspots and
//! partition/heal cycles (see `oscar_bench::scenario`).
//!
//! ```sh
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_scenarios
//! ```
//!
//! Per scenario, the run writes `scenario_<name>.csv` (one row per
//! measurement window) and a self-documenting markdown report
//! `reports/<name>.md` into the results directory — both byte-identical
//! at any `OSCAR_THREADS` and across reruns at the same
//! `OSCAR_SCALE`/`OSCAR_SEED`. The suite summary lands in
//! `BENCH_scenarios.json` (windows/sec throughput gated by
//! `bench_check`, plus per-scenario delivery and verdicts). Exits
//! non-zero if any scenario check fails: a red scenario is a regression
//! in the overlay's resilience story, not a formatting problem.

use oscar_bench::{run_all_scenarios, write_scenario_csv, write_scenario_report, Report, Scale};

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    eprintln!(
        "[scenarios] growing {}-peer substrates and running the scenario suite...",
        scale.target
    );
    let t = std::time::Instant::now();
    let outcomes = run_all_scenarios(&scale).expect("scenario suite");
    let secs = t.elapsed().as_secs_f64();

    let mut failed = 0usize;
    let mut per_scenario = String::new();
    for (i, out) in outcomes.iter().enumerate() {
        let csv = write_scenario_csv(out)?;
        let report = write_scenario_report(out)?;
        let delivery_min = out
            .rows
            .iter()
            .map(|r| r.stats.queries.success_rate)
            .fold(f64::INFINITY, f64::min);
        let delivery_final = out
            .rows
            .last()
            .map(|r| r.stats.queries.success_rate)
            .unwrap_or(0.0);
        let verdict = if out.passed() { "pass" } else { "FAIL" };
        if !out.passed() {
            failed += 1;
        }
        println!(
            "scenario {:<16} {:>2} windows  min delivery {:.4}  final {:.4}  {}  ({}, {})",
            out.name,
            out.rows.len(),
            delivery_min,
            delivery_final,
            verdict,
            csv.display(),
            report.display()
        );
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        per_scenario.push_str(&format!(
            "    {{ \"scenario\": \"{}\", \"windows\": {}, \"min_delivery\": {:.4}, \
             \"final_delivery\": {:.4}, \"checks_passed\": {}, \"checks_total\": {} }}{comma}\n",
            out.name,
            out.rows.len(),
            delivery_min,
            delivery_final,
            out.checks.iter().filter(|c| c.passed).count(),
            out.checks.len(),
        ));
    }

    let total_windows: usize = outcomes.iter().map(|o| o.rows.len()).sum();
    let windows_per_sec = total_windows as f64 / secs.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"scenarios\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"scenarios\": {},\n  \"total_windows\": {total_windows},\n  \
         \"suite_secs\": {secs:.2},\n  \"windows_per_sec\": {windows_per_sec:.2},\n  \
         \"failed_scenarios\": {failed},\n  \"results\": [\n{per_scenario}  ]\n}}\n",
        scale.target,
        scale.seed,
        outcomes.len(),
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_scenarios.json");
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    eprintln!(
        "scenarios: {} suites, {total_windows} windows in {secs:.1}s \
         ({windows_per_sec:.2} windows/s)",
        outcomes.len()
    );
    if failed > 0 {
        eprintln!(
            "repro_scenarios: {failed} scenario(s) failed their checks — see the \
             reports under {}/reports/",
            dir.display()
        );
        std::process::exit(1);
    }
    Ok(())
}
