//! Steady-state continuous churn: the regime past the paper's one-shot
//! crash waves. Drives sustained Poisson join/crash/depart at the
//! standard churn-level ladder and measures cost, wasted traffic, success
//! rate and live population per window — on either churn backend:
//!
//! * **legacy** (default) — the oracle engine: grow one Oscar overlay,
//!   then run [`oscar_sim::run_continuous_churn`] per level. Failure
//!   detection is free (the engine knows who died) and repairs are
//!   builder calls.
//! * **machine** (`OSCAR_CHURN_BACKEND=machine`) — the protocol stack:
//!   each level bootstraps a [`oscar_protocol::PeerMachine`] fleet on a
//!   discrete-event driver by real joins and runs
//!   [`oscar_sim::run_machine_churn`], where death must be *detected*
//!   (ring probes, bounced sends) and every repair is messages.
//!
//! ```sh
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_churn
//! OSCAR_CHURN_BACKEND=machine OSCAR_SCALE=2000 cargo run --release -p oscar-bench --bin repro_churn
//! OSCAR_CHURN_WINDOWS=12 cargo run --release -p oscar-bench --bin repro_churn
//! ```
//!
//! The per-level runs fan out over `OSCAR_THREADS` workers; every CSV is
//! byte-identical at any thread count (pinned by
//! `tests/parallel_determinism.rs`). Besides the CSVs, the run writes
//! `<results dir>/BENCH_churn.json` (legacy) or `BENCH_churn_machine.json`
//! (machine) — windows/sec throughput + steady-state mean cost per churn
//! level; the committed files at the repository root are the tracked
//! baselines. The machine backend additionally honours the
//! `OSCAR_DEDUP_WINDOW`/`OSCAR_MAX_RETRIES`/`OSCAR_REPAIR_K` knobs, and
//! **fails** if any [`oscar_protocol::ProtocolEvent::Fault`] fires: a
//! fault is a machine invariant violation, never expected in seeded runs.

use oscar_bench::figures::steady_churn_reports;
use oscar_bench::{
    grow_steady_churn_substrate, run_machine_churn_experiment, run_steady_churn_on,
    standard_churn_schedules, MachineKnobs, Report, Scale, SteadyChurnResult,
};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::GnutellaKeys;

/// Which engine drives the churn schedule.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Backend {
    Legacy,
    Machine,
}

fn backend_from_env() -> Backend {
    match std::env::var("OSCAR_CHURN_BACKEND") {
        Ok(s) => match s.trim() {
            "legacy" => Backend::Legacy,
            "machine" => Backend::Machine,
            other => {
                eprintln!(
                    "repro_churn: OSCAR_CHURN_BACKEND must be \"legacy\" or \"machine\", \
                     got {other:?}"
                );
                std::process::exit(2);
            }
        },
        Err(_) => Backend::Legacy,
    }
}

/// Renders the per-level JSON block shared by both backends.
fn levels_json(results: &[SteadyChurnResult]) -> String {
    let mut per_level = String::new();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        per_level.push_str(&format!(
            "    {{ \"level\": \"{}\", \"steady_mean_cost\": {:.3}, \
             \"steady_mean_wasted\": {:.3}, \"steady_success_rate\": {:.4}, \
             \"steady_live\": {:.0} }}{comma}\n",
            r.label,
            r.steady_mean(|w| w.queries.mean_cost),
            r.steady_mean(|w| w.queries.mean_wasted),
            r.steady_mean(|w| w.queries.success_rate),
            r.steady_mean(|w| w.live_at_end as f64),
        ));
    }
    per_level
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[
        "OSCAR_CHURN_WINDOWS",
        "OSCAR_CHURN_BACKEND",
        "OSCAR_DEDUP_WINDOW",
        "OSCAR_MAX_RETRIES",
        "OSCAR_REPAIR_K",
    ]);
    let scale = Scale::from_env_or_exit();
    let windows = Scale::churn_windows_from_env_or_exit();
    let backend = backend_from_env();
    let keys = GnutellaKeys::default();
    let schedules = standard_churn_schedules(&scale);

    let (results, bench_name, json_file, grow_secs, engine_secs, faults) = match backend {
        Backend::Legacy => {
            let builder = OscarBuilder::new(OscarConfig::default());
            let degrees = ConstantDegrees::paper();
            eprintln!(
                "[churn-engine] growing to {} then running {} windows x {} churn levels...",
                scale.target,
                windows,
                schedules.len()
            );
            // Growth and engine are timed separately so the windows/sec
            // baseline tracks the churn engine alone — a growth/join-path
            // regression must not masquerade as an engine one.
            let t_grow = std::time::Instant::now();
            let net = grow_steady_churn_substrate(&builder, &keys, &degrees, &scale)
                .expect("steady churn substrate");
            let grow_secs = t_grow.elapsed().as_secs_f64();
            let t_engine = std::time::Instant::now();
            let results =
                run_steady_churn_on(&net, &builder, &keys, &degrees, &scale, &schedules, windows)
                    .expect("steady churn suite");
            (
                results,
                "steady_churn",
                "BENCH_churn.json",
                grow_secs,
                t_engine.elapsed().as_secs_f64(),
                0u64,
            )
        }
        Backend::Machine => {
            let knobs = MachineKnobs::from_env_or_exit();
            eprintln!(
                "[churn-machine] bootstrapping {}-peer machine fleets, then {} windows x {} \
                 churn levels...",
                scale.target,
                windows,
                schedules.len()
            );
            // The machine backend has no separate growth phase — each
            // level's fleet bootstraps by real joins inside the run, so
            // the whole wall time is the engine's.
            let t_engine = std::time::Instant::now();
            let (results, faults) =
                run_machine_churn_experiment(&keys, &scale, &schedules, windows, knobs)
                    .expect("machine churn suite");
            (
                results,
                "steady_churn_machine",
                "BENCH_churn_machine.json",
                0.0,
                t_engine.elapsed().as_secs_f64(),
                faults,
            )
        }
    };

    for (name, report) in steady_churn_reports(&results) {
        match backend {
            Backend::Legacy => report.emit(name)?,
            Backend::Machine => report.emit(&format!("machine_{name}"))?,
        };
    }

    let total_windows = results.iter().map(|r| r.windows.len()).sum::<usize>();
    let windows_per_sec = total_windows as f64 / engine_secs.max(1e-9);
    let per_level = levels_json(&results);
    let json = format!(
        "{{\n  \"bench\": \"{bench_name}\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"windows_per_level\": {windows},\n  \"total_windows\": {total_windows},\n  \
         \"grow_secs\": {grow_secs:.2},\n  \"engine_secs\": {engine_secs:.2},\n  \
         \"windows_per_sec\": {windows_per_sec:.2},\n  \"faults\": {faults},\n  \
         \"levels\": [\n{per_level}  ]\n}}\n",
        scale.target, scale.seed,
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(json_file);
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    eprintln!(
        "steady churn [{bench_name}]: grew in {grow_secs:.1}s; {total_windows} windows in \
         {engine_secs:.1}s ({windows_per_sec:.2} windows/s)"
    );
    if faults > 0 {
        eprintln!(
            "repro_churn: {faults} protocol fault(s) fired — machine invariants violated; \
             a seeded run must be fault-free"
        );
        std::process::exit(1);
    }
    Ok(())
}
