//! Steady-state continuous churn: the regime past the paper's one-shot
//! crash waves. Grows one Oscar overlay, then drives sustained Poisson
//! join/crash/depart at the standard churn-level ladder and measures
//! cost, wasted traffic, success rate and live population per window.
//!
//! ```sh
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_churn
//! OSCAR_CHURN_WINDOWS=12 cargo run --release -p oscar-bench --bin repro_churn
//! ```
//!
//! The per-level engine runs fan out over `OSCAR_THREADS` workers; every
//! CSV is byte-identical at any thread count (pinned by
//! `tests/parallel_determinism.rs`). Besides the CSVs, the run writes
//! `<results dir>/BENCH_churn.json` (windows/sec throughput + steady-state
//! mean cost per churn level); the committed `BENCH_churn.json` at the
//! repository root is the tracked baseline.

use oscar_bench::figures::steady_churn_reports;
use oscar_bench::{
    grow_steady_churn_substrate, run_steady_churn_on, standard_churn_schedules, Report, Scale,
};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::GnutellaKeys;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_or_exit();
    let windows = Scale::churn_windows_from_env_or_exit();
    let builder = OscarBuilder::new(OscarConfig::default());
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let schedules = standard_churn_schedules(&scale);
    eprintln!(
        "[churn-engine] growing to {} then running {} windows x {} churn levels...",
        scale.target,
        windows,
        schedules.len()
    );

    // Growth and engine are timed separately so the windows/sec baseline
    // tracks the churn engine alone — a growth/join-path regression must
    // not masquerade as an engine one.
    let t_grow = std::time::Instant::now();
    let net = grow_steady_churn_substrate(&builder, &keys, &degrees, &scale)
        .expect("steady churn substrate");
    let grow_secs = t_grow.elapsed().as_secs_f64();
    let t_engine = std::time::Instant::now();
    let results = run_steady_churn_on(&net, &builder, &keys, &degrees, &scale, &schedules, windows)
        .expect("steady churn suite");
    let engine_secs = t_engine.elapsed().as_secs_f64();

    for (name, report) in steady_churn_reports(&results) {
        report.emit(name)?;
    }

    let total_windows = results.iter().map(|r| r.windows.len()).sum::<usize>();
    let windows_per_sec = total_windows as f64 / engine_secs.max(1e-9);
    let mut per_level = String::new();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        per_level.push_str(&format!(
            "    {{ \"level\": \"{}\", \"steady_mean_cost\": {:.3}, \
             \"steady_mean_wasted\": {:.3}, \"steady_success_rate\": {:.4}, \
             \"steady_live\": {:.0} }}{comma}\n",
            r.label,
            r.steady_mean(|w| w.queries.mean_cost),
            r.steady_mean(|w| w.queries.mean_wasted),
            r.steady_mean(|w| w.queries.success_rate),
            r.steady_mean(|w| w.live_at_end as f64),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"steady_churn\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"windows_per_level\": {windows},\n  \"total_windows\": {total_windows},\n  \
         \"grow_secs\": {grow_secs:.2},\n  \"engine_secs\": {engine_secs:.2},\n  \
         \"windows_per_sec\": {windows_per_sec:.2},\n  \"levels\": [\n{per_level}  ]\n}}\n",
        scale.target, scale.seed,
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_churn.json");
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    eprintln!(
        "steady churn: grew in {grow_secs:.1}s; {total_windows} windows in {engine_secs:.1}s \
         ({windows_per_sec:.2} windows/s)"
    );
    Ok(())
}
