//! Regenerates Figure 1(b) (relative degree load, three in-degree
//! distributions) and the E3 comparison (Mercury's degree-volume
//! utilisation).
//!
//! ```sh
//! OSCAR_SCALE=10000 cargo run --release -p oscar-bench --bin repro_fig1b
//! ```

use oscar_bench::figures::{fig1b_report, run_fig1_suite};
use oscar_bench::Scale;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    let suite = run_fig1_suite(&scale).expect("fig1 suite");
    fig1b_report(&suite).emit("fig1b_degree_load")?;
    Ok(())
}
