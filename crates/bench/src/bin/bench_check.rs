//! CI gate: diff freshly-benched `results/BENCH_*.json` against the
//! committed repo-root baselines and fail on throughput regressions.
//!
//! ```sh
//! ./target/release/bench_check [baseline_dir] [results_dir] [BENCH_*.json ...]
//! ```
//!
//! Defaults: baselines in the current directory (the repo root in CI),
//! candidates in `results/` (or `$OSCAR_RESULTS_DIR`). Trailing
//! arguments select a subset of the tracked files — so a smoke job that
//! only regenerates `BENCH_faults.json` can gate on just that file —
//! and a name outside the tracked set is a usage error, not a silent
//! no-op. For every selected baseline a before/after table is printed;
//! the process exits
//!
//! * `0` — all gated keys (`windows_per_sec`, `queries_per_sec`,
//!   `*_ns_per_join`, `steady_delivery_pct`, `retry_amplification`)
//!   within tolerance (`$OSCAR_BENCH_TOLERANCE`, default 0.30 = 30%),
//! * `1` — at least one gated key regressed past tolerance,
//! * `2` — a file is missing/unreadable, an argument names an untracked
//!   file, or the tolerance is malformed (the bench step did not run;
//!   gating would be meaningless).

use oscar_bench::baseline::{compare, render_table, DEFAULT_TOLERANCE};
use oscar_bench::Report;
use std::path::PathBuf;

/// The tracked baselines, by file name (repo root and results dir agree).
const TRACKED: [&str; 7] = [
    "BENCH_join.json",
    "BENCH_churn.json",
    "BENCH_churn_machine.json",
    "BENCH_growth.json",
    "BENCH_saturation.json",
    "BENCH_faults.json",
    "BENCH_scenarios.json",
];

fn read_or_exit(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!(
            "bench_check: cannot read {} ({e}) — did the bench step run?",
            path.display()
        );
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
    let results_dir = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(Report::results_dir);
    let selected: Vec<String> = args.collect();
    for name in &selected {
        if !TRACKED.contains(&name.as_str()) {
            eprintln!(
                "bench_check: {name} is not a tracked baseline (tracked: {})",
                TRACKED.join(", ")
            );
            std::process::exit(2);
        }
    }
    let tolerance = match std::env::var("OSCAR_BENCH_TOLERANCE") {
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..10.0).contains(t))
            .unwrap_or_else(|| {
                eprintln!(
                    "bench_check: OSCAR_BENCH_TOLERANCE must be a fraction in [0, 10), got {s:?}"
                );
                std::process::exit(2);
            }),
        Err(_) => DEFAULT_TOLERANCE,
    };

    let mut regressions = 0usize;
    for name in TRACKED
        .into_iter()
        .filter(|n| selected.is_empty() || selected.iter().any(|s| s == n))
    {
        let baseline = read_or_exit(&baseline_dir.join(name));
        let candidate = read_or_exit(&results_dir.join(name));
        let cmp = compare(&baseline, &candidate, tolerance).unwrap_or_else(|e| {
            eprintln!("bench_check: {name}: {e}");
            std::process::exit(2);
        });
        println!("{}", render_table(name, &cmp));
        regressions += cmp.regressions;
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} gated key(s) regressed more than {:.0}% — \
             see the tables above. If the change is intentional, refresh the \
             committed BENCH_*.json baselines from this run's artifacts.",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: all gated keys within {:.0}% of the committed baselines",
        tolerance * 100.0
    );
}
