//! Regenerates Figure 2(a): search cost under churn, constant in-degree
//! distribution (Gnutella keys; crash fractions 0%, 10%, 33%).
//!
//! ```sh
//! OSCAR_SCALE=10000 cargo run --release -p oscar-bench --bin repro_fig2a
//! ```

use oscar_bench::figures::fig2_report;
use oscar_bench::Scale;
use oscar_degree::ConstantDegrees;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    fig2_report(&scale, &ConstantDegrees::paper(), "constant")
        .expect("fig2a experiment")
        .emit("fig2a_churn_constant")?;
    Ok(())
}
