//! The churn phase diagram: where does delivery actually break?
//!
//! Sweeps churn level (2–20% of the population per window) × repair
//! policy (no repair at all — the control column where delivery actually
//! collapses — whole-network sweep, reactive k=2 neighbour repair,
//! probe-triggered repair) × successor-list length (1, 2, 4) on one grown
//! Oscar overlay, under the **unstabilised** ring — ring pointers keep
//! aiming at corpses, so the successor list and the repair policy are all
//! that stand between sustained churn and lost queries.
//!
//! ```sh
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_phase
//! OSCAR_CHURN_WINDOWS=12 cargo run --release -p oscar-bench --bin repro_phase
//! ```
//!
//! The per-cell engine runs fan out over `OSCAR_THREADS` workers; every
//! CSV is byte-identical at any thread count (pinned by
//! `tests/parallel_determinism.rs`). Outputs `churn_phase_*.csv` under
//! `results/` plus a steady-state table per cell on stdout.

use oscar_bench::figures::{phase_reports, run_phase_suite};
use oscar_bench::Scale;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&["OSCAR_CHURN_WINDOWS"]);
    let scale = Scale::from_env_or_exit();
    let windows = Scale::churn_windows_from_env_or_exit();

    let t0 = std::time::Instant::now();
    let cells = run_phase_suite(&scale, windows).expect("phase suite");
    let secs = t0.elapsed().as_secs_f64();

    for (name, report) in phase_reports(&cells) {
        report.emit(name)?;
    }

    println!("\n==== steady-state phase cells ====\n");
    println!("| level | policy | succ | success | cost | wasted | repairs/win | repair msgs/win |");
    println!("|---|---|---|---|---|---|---|---|");
    for c in &cells {
        println!(
            "| {} | {} | {} | {:.3} | {:.2} | {:.2} | {:.0} | {:.0} |",
            c.level,
            c.policy,
            c.succ_list_len,
            c.steady_mean(|w| w.queries.success_rate),
            c.steady_mean(|w| w.queries.mean_cost),
            c.steady_mean(|w| w.queries.mean_wasted),
            c.steady_mean(|w| w.repairs as f64),
            c.steady_mean(|w| w.repair_cost as f64),
        );
    }
    eprintln!(
        "phase diagram: {} cells x {} windows in {secs:.1}s",
        cells.len(),
        windows
    );
    Ok(())
}
