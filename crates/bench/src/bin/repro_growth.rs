//! Growth-loop timing per `OSCAR_SCALE` decade — the wall-time trajectory
//! of the substrate construction itself.
//!
//! ```sh
//! OSCAR_SCALE=2000 cargo run --release -p oscar-bench --bin repro_growth
//! ```
//!
//! Grows a fresh Oscar overlay (paper protocol: Gnutella keys, constant
//! degrees, final rewire-all) at each decade of the configured scale —
//! 100, 1,000, … up to `OSCAR_SCALE` (so `2000` times 100, 1,000 and
//! 2,000) — sequentially and alone in the process, and writes
//! `<results dir>/BENCH_growth.json` with seconds and ns-per-join per
//! decade. The committed `BENCH_growth.json` at the repository root is
//! the tracked baseline; `bench_check` gates CI on the
//! `d<N>_ns_per_join` keys, so a growth/join-path slowdown fails the
//! build instead of hiding in slower CI.

use oscar_bench::{grow_steady_churn_substrate, Report, Scale};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::GnutellaKeys;

/// The timed sizes: every power-of-ten decade from 100 up to (and
/// including) `target`, plus `target` itself when it is not a decade.
fn decades(target: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut d = 100usize;
    while d < target {
        sizes.push(d);
        d = d.saturating_mul(10);
    }
    sizes.push(target);
    sizes
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    let builder = OscarBuilder::new(OscarConfig::default());
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let sizes = decades(scale.target);
    eprintln!(
        "[growth] timing substrate growth at {} decades up to {} (seed {})...",
        sizes.len(),
        scale.target,
        scale.seed
    );

    println!("| n_peers | secs | ns/join |");
    println!("|---|---|---|");
    let mut decade_rows = String::new();
    let mut top_keys = String::new();
    for (i, &n) in sizes.iter().enumerate() {
        let decade_scale = Scale {
            target: n,
            step: (n / 10).max(50),
            ..scale.clone()
        };
        let t0 = std::time::Instant::now();
        let net = grow_steady_churn_substrate(&builder, &keys, &degrees, &decade_scale)
            .expect("growth substrate");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(net.live_count(), n, "growth must reach the decade size");
        let ns_per_join = secs * 1e9 / n as f64;
        println!("| {n} | {secs:.3} | {:.0} |", ns_per_join);
        let comma = if i + 1 < sizes.len() { "," } else { "" };
        decade_rows.push_str(&format!(
            "    {{ \"n_peers\": {n}, \"secs\": {secs:.3} }}{comma}\n"
        ));
        top_keys.push_str(&format!(",\n  \"d{n}_ns_per_join\": {:.0}", ns_per_join));
    }

    let json = format!(
        "{{\n  \"bench\": \"growth\",\n  \"seed\": {},\n  \"max_target\": {},\n  \
         \"decades\": [\n{decade_rows}  ]{top_keys}\n}}\n",
        scale.seed, scale.target,
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_growth.json");
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    Ok(())
}
