//! Regenerates every table and figure of the paper in one run, reusing
//! the heavy growth experiments across figures.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_all            # paper scale
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_all
//! ```
//!
//! The three heavy, mutually independent computations — the Figure 1
//! growth suite (itself 5 parallel growths), the constant-degree churn
//! experiment, and the realistic-degree churn experiment — run
//! concurrently under the `OSCAR_THREADS` budget; reports are then
//! emitted in the usual fixed order, so stdout and every CSV are
//! byte-identical to a sequential (`OSCAR_THREADS=1`) run.
//!
//! Outputs: ASCII plots + Markdown tables on stdout, CSVs under
//! `results/` (override with `OSCAR_RESULTS_DIR`).
//!
//! The steady-state continuous-churn experiment — beyond the paper's
//! one-shot crash waves — has its own driver, `repro_churn`, so the two
//! can run side by side without duplicating the churn-engine sweep.

use oscar_bench::figures::{
    fig1a_report, fig1b_report, fig1c_report, fig2_report, mercury_compare_report, run_fig1_suite,
    Fig1Suite,
};
use oscar_bench::parallel::{run_tasks, Task};
use oscar_bench::{Report, Scale};
use oscar_degree::{ConstantDegrees, SpikyDegrees};

/// One independent heavy computation of the full regeneration.
enum Piece {
    Suite(Box<Fig1Suite>),
    Fig(Report),
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    eprintln!(
        "regenerating all figures at scale {} (step {}, seed {}, {} threads)",
        scale.target,
        scale.step,
        scale.seed,
        scale.thread_count()
    );
    let t0 = std::time::Instant::now();

    // Figure 1(a): pure model, cheap.
    fig1a_report(&scale).emit("fig1a_degree_pdf")?;

    // Figures 1(b), 1(c), E3 and E7 share the growth suite; the two churn
    // figures are independent of it and of each other.
    let tasks: Vec<Task<Piece>> = vec![
        Box::new(|| Piece::Suite(Box::new(run_fig1_suite(&scale).expect("fig1 suite")))),
        Box::new(|| {
            Piece::Fig(fig2_report(&scale, &ConstantDegrees::paper(), "constant").expect("fig2a"))
        }),
        Box::new(|| {
            Piece::Fig(fig2_report(&scale, &SpikyDegrees::paper(), "realistic").expect("fig2b"))
        }),
    ];
    let mut pieces = run_tasks(scale.thread_count(), tasks).into_iter();
    let Some(Piece::Suite(suite)) = pieces.next() else {
        unreachable!("task 0 is the fig1 suite");
    };
    let (Some(Piece::Fig(fig2a)), Some(Piece::Fig(fig2b))) = (pieces.next(), pieces.next()) else {
        unreachable!("tasks 1 and 2 are the churn figures");
    };

    fig1b_report(&suite).emit("fig1b_degree_load")?;
    fig1c_report(&suite, &scale).emit("fig1c_search_cost")?;
    mercury_compare_report(&suite, &scale).emit("mercury_compare")?;
    fig2a.emit("fig2a_churn_constant")?;
    fig2b.emit("fig2b_churn_realistic")?;

    eprintln!("all figures regenerated in {:.1?}", t0.elapsed());
    Ok(())
}
