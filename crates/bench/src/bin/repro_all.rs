//! Regenerates every table and figure of the paper in one run, reusing
//! the heavy growth experiments across figures.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_all            # paper scale
//! OSCAR_SCALE=2000 cargo run --release -p oscar-bench --bin repro_all
//! ```
//!
//! Outputs: ASCII plots + Markdown tables on stdout, CSVs under
//! `results/` (override with `OSCAR_RESULTS_DIR`).

use oscar_bench::figures::{
    fig1a_report, fig1b_report, fig1c_report, fig2_report, mercury_compare_report, run_fig1_suite,
};
use oscar_bench::Scale;
use oscar_degree::{ConstantDegrees, SpikyDegrees};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_or_exit();
    eprintln!(
        "regenerating all figures at scale {} (step {}, seed {})",
        scale.target, scale.step, scale.seed
    );
    let t0 = std::time::Instant::now();

    // Figure 1(a): pure model, cheap.
    fig1a_report(&scale).emit("fig1a_degree_pdf")?;

    // Figures 1(b), 1(c), E3 and E7 share the growth suite.
    let suite = run_fig1_suite(&scale).expect("fig1 suite");
    fig1b_report(&suite).emit("fig1b_degree_load")?;
    fig1c_report(&suite, &scale).emit("fig1c_search_cost")?;
    mercury_compare_report(&suite, &scale).emit("mercury_compare")?;

    // Figure 2(a): churn with constant degrees.
    fig2_report(&scale, &ConstantDegrees::paper(), "constant")
        .expect("fig2a")
        .emit("fig2a_churn_constant")?;

    // Figure 2(b): churn with the realistic (spiky) degrees.
    fig2_report(&scale, &SpikyDegrees::paper(), "realistic")
        .expect("fig2b")
        .emit("fig2b_churn_realistic")?;

    eprintln!("all figures regenerated in {:.1?}", t0.elapsed());
    Ok(())
}
