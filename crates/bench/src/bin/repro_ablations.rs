//! Ablations A1–A5 (DESIGN.md §4): which design choices buy what.
//!
//! * A1 — power-of-two choices on/off: degree-volume utilisation & cost
//! * A2 — median sample size sweep: cost vs sampling effort
//! * A3 — sampled vs oracle medians: what the sampling error costs
//! * A4 — stabilised vs unstabilised ring at 33% crashes (+ successor-list
//!   length): what the paper's ring assumption is worth
//! * A5 — skewed (Zipf) access load: delivery concentration
//!
//! Runs at `min(OSCAR_SCALE, 4000)` — ablations need many full growths.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_ablations
//! ```

use oscar_analytics::Series;
use oscar_bench::{run_growth_experiment, Report, Scale};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::ConstantDegrees;
use oscar_keydist::{GnutellaKeys, QueryWorkload};
use oscar_sim::{kill_fraction, run_query_batch, FaultModel, Network, RoutePolicy};
use oscar_types::SeedTree;

fn ablation_scale() -> Scale {
    let mut scale = Scale::from_env_or_exit();
    if scale.target > 4000 {
        scale.target = 4000;
        scale.step = 400;
    }
    scale
}

fn grow_with(config: OscarConfig, scale: &Scale, label: &str) -> oscar_bench::GrowthRunResult {
    let builder = OscarBuilder::new(config);
    run_growth_experiment(
        &builder,
        &GnutellaKeys::default(),
        &ConstantDegrees::paper(),
        scale,
        label,
    )
    .expect("growth run")
}

fn final_cost(r: &oscar_bench::GrowthRunResult) -> f64 {
    r.cost_by_size
        .last()
        .map(|(_, s)| s.mean_cost)
        .unwrap_or(0.0)
}

fn a1_power_of_two(scale: &Scale) -> std::io::Result<()> {
    eprintln!("[A1] power-of-two choices on/off...");
    let with = grow_with(OscarConfig::default(), scale, "po2 on");
    let without = grow_with(
        OscarConfig::default().without_power_of_two(),
        scale,
        "po2 off",
    );
    let mut report = Report::new("A1: power-of-two choices", "variant (0 = off, 1 = on)");
    let mut util = Series::new("degree volume utilisation");
    util.push(0.0, without.final_utilization);
    util.push(1.0, with.final_utilization);
    let mut cost = Series::new("final mean search cost");
    cost.push(0.0, final_cost(&without));
    cost.push(1.0, final_cost(&with));
    report.add_series(util);
    report.add_series(cost);
    report.add_note(format!(
        "utilisation: off {:.1}% -> on {:.1}%; cost: off {:.2} -> on {:.2}",
        without.final_utilization * 100.0,
        with.final_utilization * 100.0,
        final_cost(&without),
        final_cost(&with)
    ));
    report.emit("ablation_a1_power_of_two")?;
    Ok(())
}

fn a2_sample_size(scale: &Scale) -> std::io::Result<()> {
    eprintln!("[A2] median sample size sweep...");
    let mut cost = Series::new("final mean search cost");
    let mut walks = Series::new("walk steps per peer (x1000)");
    for s in [4usize, 8, 12, 24, 48] {
        let cfg = OscarConfig {
            median_sample_size: s,
            ..OscarConfig::default()
        };
        let run = grow_with(cfg, scale, "sweep");
        cost.push(s as f64, final_cost(&run));
        let steps = run.network.metrics.get(oscar_sim::MsgKind::WalkStep) as f64
            / run.network.len() as f64
            / 1000.0;
        walks.push(s as f64, steps);
    }
    let mut report = Report::new("A2: median sample size sweep", "sample size");
    report.add_series(cost);
    report.add_series(walks);
    report.add_note(
        "the paper: 'very good results in practice even with very low sample sizes'".to_string(),
    );
    report.emit("ablation_a2_sample_size")?;
    Ok(())
}

fn a3_oracle_medians(scale: &Scale) -> std::io::Result<()> {
    eprintln!("[A3] sampled vs oracle medians...");
    let sampled = grow_with(OscarConfig::default(), scale, "sampled");
    let oracle = grow_with(
        OscarConfig::default().with_oracle_medians(),
        scale,
        "oracle",
    );
    let mut report = Report::new(
        "A3: sampled vs oracle medians",
        "variant (0 = sampled, 1 = oracle)",
    );
    let mut cost = Series::new("final mean search cost");
    cost.push(0.0, final_cost(&sampled));
    cost.push(1.0, final_cost(&oracle));
    report.add_series(cost);
    report.add_note(format!(
        "sampled {:.2} vs oracle {:.2}: the gap is the price of 12-point median estimation",
        final_cost(&sampled),
        final_cost(&oracle)
    ));
    report.emit("ablation_a3_oracle_medians")?;
    Ok(())
}

fn a4_ring_stabilization(scale: &Scale) -> std::io::Result<()> {
    eprintln!("[A4] ring stabilisation under 33% crashes...");
    let base = grow_with(OscarConfig::default(), scale, "base");
    let mut crashed = base.network.clone();
    let mut rng = SeedTree::new(scale.seed).child(0xC4A5).rng();
    kill_fraction(&mut crashed, 0.33, &mut rng).expect("churn");

    let mut report = Report::new(
        "A4: what the stabilised-ring assumption is worth (33% crashes)",
        "successor list length",
    );
    let mut cost = Series::new("mean cost (unstabilised)");
    let mut success = Series::new("success rate (unstabilised)");
    let measure = |net: &mut Network, seed: u64| {
        let mut qrng = SeedTree::new(seed).rng();
        run_query_batch(
            net,
            &QueryWorkload::UniformPeers,
            2000,
            &RoutePolicy::default(),
            &mut qrng,
        )
    };
    crashed.set_fault_model(FaultModel::StabilizedRing);
    let stabilized = measure(&mut crashed, 1);
    for sl in [1usize, 2, 4, 8, 16] {
        crashed.set_fault_model(FaultModel::UnstabilizedRing);
        crashed.set_succ_list_len(sl);
        let stats = measure(&mut crashed, 100 + sl as u64);
        cost.push(sl as f64, stats.mean_cost);
        success.push(sl as f64, stats.success_rate);
    }
    crashed.set_succ_list_len(8);
    report.add_series(cost);
    report.add_series(success);
    report.add_note(format!(
        "stabilised ring reference: cost {:.2}, success {:.1}% — the paper assumes this state",
        stabilized.mean_cost,
        stabilized.success_rate * 100.0
    ));
    report.add_note(
        "backtracking keeps queries alive when successor lists are short, at real cost".to_string(),
    );
    report.emit("ablation_a4_ring_stabilization")?;
    Ok(())
}

fn a5_skewed_access(scale: &Scale) -> std::io::Result<()> {
    eprintln!("[A5] skewed access load...");
    let base = grow_with(OscarConfig::default(), scale, "base");
    let mut net = base.network.clone();
    let mut report = Report::new("A5: skewed (Zipf) access load", "zipf exponent");
    let mut cost = Series::new("mean search cost");
    for (x, workload) in [
        (0.0, QueryWorkload::UniformPeers),
        (0.8, QueryWorkload::ZipfPeers { exponent: 0.8 }),
        (1.0, QueryWorkload::ZipfPeers { exponent: 1.0 }),
        (1.2, QueryWorkload::ZipfPeers { exponent: 1.2 }),
    ] {
        let mut qrng = SeedTree::new(scale.seed)
            .child(0xA5)
            .child((x * 10.0) as u64)
            .rng();
        let stats = run_query_batch(
            &mut net,
            &workload,
            4000,
            &RoutePolicy::default(),
            &mut qrng,
        );
        cost.push(x, stats.mean_cost);
    }
    report.add_series(cost);
    report.add_note(
        "search cost is access-skew-insensitive: routing shortcuts do not depend on \
         which keys are hot; per-peer fan-in stays capped by rho_in"
            .to_string(),
    );
    report.emit("ablation_a5_skewed_access")?;
    Ok(())
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = ablation_scale();
    eprintln!(
        "running ablations at scale {} (step {}, seed {})",
        scale.target, scale.step, scale.seed
    );
    a1_power_of_two(&scale)?;
    a2_sample_size(&scale)?;
    a3_oracle_medians(&scale)?;
    a4_ring_stabilization(&scale)?;
    a5_skewed_access(&scale)?;
    Ok(())
}
