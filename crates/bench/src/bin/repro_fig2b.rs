//! Regenerates Figure 2(b): search cost under churn, "realistic" (spiky)
//! in-degree distribution (Gnutella keys; crash fractions 0%, 10%, 33%).
//!
//! ```sh
//! OSCAR_SCALE=10000 cargo run --release -p oscar-bench --bin repro_fig2b
//! ```

use oscar_bench::figures::fig2_report;
use oscar_bench::Scale;
use oscar_degree::SpikyDegrees;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    fig2_report(&scale, &SpikyDegrees::paper(), "realistic")
        .expect("fig2b experiment")
        .emit("fig2b_churn_realistic")?;
    Ok(())
}
