//! Regenerates E7: Oscar vs Mercury search cost on the skewed (Gnutella)
//! key distribution — the headline claim of the paper's prior work
//! (reference \[8\], the Mercury system).
//!
//! ```sh
//! OSCAR_SCALE=10000 cargo run --release -p oscar-bench --bin repro_mercury_compare
//! ```

use oscar_bench::figures::{mercury_compare_report, run_fig1_suite};
use oscar_bench::Scale;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    let suite = run_fig1_suite(&scale).expect("fig1 suite");
    mercury_compare_report(&suite, &scale).emit("mercury_compare")?;
    Ok(())
}
