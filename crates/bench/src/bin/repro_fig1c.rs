//! Regenerates Figure 1(c): Oscar's search cost vs network size under the
//! three in-degree distributions (Gnutella key distribution).
//!
//! ```sh
//! OSCAR_SCALE=10000 cargo run --release -p oscar-bench --bin repro_fig1c
//! ```

use oscar_bench::figures::{fig1c_report, run_fig1_suite};
use oscar_bench::Scale;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    let suite = run_fig1_suite(&scale).expect("fig1 suite");
    fig1c_report(&suite, &scale).emit("fig1c_search_cost")?;
    Ok(())
}
