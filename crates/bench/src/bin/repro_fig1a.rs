//! Regenerates Figure 1(a): the synthetic spiky node-degree pdf.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_fig1a
//! ```

use oscar_bench::figures::fig1a_report;
use oscar_bench::Scale;

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&[]);
    let scale = Scale::from_env_or_exit();
    fig1a_report(&scale).emit("fig1a_degree_pdf")?;
    Ok(())
}
