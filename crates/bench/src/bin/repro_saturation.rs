//! Wall-clock query saturation of the threaded actor runtime.
//!
//! Where every other bench drives the protocol through the virtual-time
//! DES, this one runs the *same* `oscar-protocol` peer machines under
//! `oscar-runtime`'s worker pool and measures real queries/second with
//! every worker busy: bootstrap an n-peer ring, grow long links with the
//! MH walk protocol, then fire a query storm from all peers at once and
//! time the drain.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_saturation          # n = 10^4
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_saturation
//! OSCAR_SAT_QUERIES=8 cargo run --release -p oscar-bench --bin repro_saturation
//! ```
//!
//! Writes `<results dir>/BENCH_saturation.json`; `queries_per_sec` is a
//! gated throughput key in `bench_check`, and the committed
//! `BENCH_saturation.json` at the repository root is the baseline.

use oscar_bench::{Report, Scale};
use oscar_protocol::{Command, ProtocolEvent};
use oscar_runtime::{Runtime, RuntimeConfig};
use oscar_types::labels::bench_repro_saturation::{LBL_IDS, LBL_KEYS};
use oscar_types::{Id, SeedTree};
use rand::Rng;
use std::collections::BTreeSet;
use std::time::Instant;

fn queries_per_peer() -> usize {
    match std::env::var("OSCAR_SAT_QUERIES") {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&q| q >= 1)
            .unwrap_or_else(|| {
                eprintln!(
                    "repro_saturation: OSCAR_SAT_QUERIES must be a positive integer, got {s:?}"
                );
                std::process::exit(2);
            }),
        Err(_) => 4,
    }
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&["OSCAR_SAT_QUERIES"]);
    let scale = Scale::from_env_or_exit();
    let n = scale.target;
    // Saturation is meaningless single-threaded: floor at 2 workers even
    // on one-core runners (the report's active_workers shows both fed).
    let workers = scale.thread_count().max(2);
    let per_peer = queries_per_peer();
    eprintln!(
        "[saturation] {n} peers, {workers} workers, {per_peer} queries/peer on the actor runtime..."
    );

    // Deterministic id population, sorted for ring construction.
    let mut rng = SeedTree::new(scale.seed).child(LBL_IDS).rng();
    let mut ids: BTreeSet<Id> = BTreeSet::new();
    while ids.len() < n {
        ids.insert(Id::new(rng.gen::<u64>()));
    }
    let ids: Vec<Id> = ids.into_iter().collect();

    let rt = Runtime::new(RuntimeConfig::new(scale.seed).with_workers(workers));
    let succ_len = 8usize;
    let t_build = Instant::now();
    for &id in &ids {
        rt.spawn_peer(id);
    }
    for (i, &id) in ids.iter().enumerate() {
        let pred = ids[(i + n - 1) % n];
        let succs: Vec<Id> = (1..=succ_len).map(|k| ids[(i + k) % n]).collect();
        let mut known = succs.clone();
        known.push(pred);
        rt.inject(id, Command::Bootstrap { pred, succs, known });
    }
    for &id in &ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
    }
    rt.quiesce();
    rt.drain_events();
    let build_secs = t_build.elapsed().as_secs_f64();

    // The storm: every peer fires `per_peer` queries to random keys; the
    // worker pool drains them concurrently. Only this phase is gated.
    let mut krng = SeedTree::new(scale.seed).child(LBL_KEYS).rng();
    let total = n * per_peer;
    let stats0 = rt.stats();
    let t_query = Instant::now();
    let mut qid = 0u64;
    for &id in &ids {
        for _ in 0..per_peer {
            rt.inject(
                id,
                Command::StartQuery {
                    qid,
                    key: Id::new(krng.gen::<u64>()),
                },
            );
            qid += 1;
        }
    }
    rt.quiesce();
    let query_secs = t_query.elapsed().as_secs_f64();
    let stats1 = rt.stats();

    let events = rt.drain_events();
    let completed = events
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::QueryCompleted(_)))
        .count();
    let succeeded = events
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::QueryCompleted(r) if r.success))
        .count();
    assert_eq!(completed, total, "every query must terminate");
    let success_rate = succeeded as f64 / total as f64;
    let queries_per_sec = total as f64 / query_secs.max(1e-9);
    let storm_busy_ns: u64 = stats1
        .busy_ns
        .iter()
        .zip(&stats0.busy_ns)
        .map(|(a, b)| a - b)
        .sum();
    let cores_busy = storm_busy_ns as f64 / (query_secs * 1e9).max(1.0);
    let active_workers = stats1.active_workers();
    let delivered = stats1.delivered;
    let faults = rt.fault_count();

    let json = format!(
        "{{\n  \"bench\": \"saturation\",\n  \"n_peers\": {n},\n  \"seed\": {},\n  \
         \"workers\": {workers},\n  \"active_workers\": {active_workers},\n  \
         \"queries\": {total},\n  \"build_secs\": {build_secs:.2},\n  \
         \"query_secs\": {query_secs:.3},\n  \"queries_per_sec\": {queries_per_sec:.0},\n  \
         \"success_rate\": {success_rate:.4},\n  \"cores_busy\": {cores_busy:.2},\n  \
         \"delivered_msgs\": {delivered},\n  \"faults\": {faults}\n}}\n",
        scale.seed,
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_saturation.json");
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    eprintln!(
        "saturation: built in {build_secs:.1}s; {total} queries in {query_secs:.2}s \
         ({queries_per_sec:.0} q/s, {cores_busy:.2} cores busy, \
         {active_workers}/{workers} workers active, success {success_rate:.4})"
    );
    // A lossless seeded run must never trip a machine invariant.
    if faults > 0 {
        eprintln!("repro_saturation: {faults} machine fault event(s) in a seeded run");
        std::process::exit(1);
    }
    Ok(())
}
