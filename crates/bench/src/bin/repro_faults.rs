//! Fault sweep: query delivery under message loss, duplication and delay
//! jitter, on both protocol drivers.
//!
//! The tentpole question for the robustness work: with the network
//! dropping and duplicating envelopes, do the timeout/retry machines in
//! `oscar-protocol` still deliver queries — and at what retry cost? The
//! sweep runs a query storm over a settled ring for every cell of
//! loss {0, 2, 5, 10}% × jitter {0, 3 ticks} on the virtual-time DES,
//! plus loss {0, 2, 5, 10}% on the threaded actor runtime (which
//! collapses delay jitter by design — mailboxes are FIFO), all under a
//! blackholing [`FaultPlan`] with duplication at half the loss rate.
//!
//! ```sh
//! cargo run --release -p oscar-bench --bin repro_faults           # n = 10^4
//! OSCAR_SCALE=2000 OSCAR_THREADS=4 cargo run --release -p oscar-bench --bin repro_faults
//! OSCAR_FAULT_QUERIES=4 cargo run --release -p oscar-bench --bin repro_faults
//! ```
//!
//! Writes `<results dir>/BENCH_faults.json`. Two headline keys are gated
//! in `bench_check` against the committed repo-root baseline:
//! `steady_delivery_pct` (the *worst* delivery over the DES cells with
//! loss ≤ 5%; higher is better) and `retry_amplification` (the worst
//! mean issues-per-query over the same cells; lower is better). Both are
//! pure functions of the seed — in the DES every retry decision flows
//! from token streams and the content-keyed fault plan — so the gate is
//! not measuring runner noise. The runtime cells drift slightly with
//! worker scheduling (their link tables build under concurrent
//! interleaving) and stay informational, as do the per-cell
//! `delivery_pct`/`retries_per_query` keys. The binary also self-gates
//! over BOTH drivers: steady delivery below 99% or amplification above
//! 3.0 is an immediate failure, even without a baseline to diff
//! against.

use oscar_bench::{Report, Scale};
use oscar_protocol::{Command, FaultPlan, OpKind, PeerConfig, ProtocolEvent};
use oscar_runtime::{Runtime, RuntimeConfig};
use oscar_sim::DesDriver;
use oscar_types::labels::bench_repro_faults::{LBL_IDS, LBL_KEYS};
use oscar_types::{Id, SeedTree};
use rand::Rng;
use std::collections::BTreeSet;
use std::time::Instant;

/// Loss rates swept, in percent. Cells at or below `STEADY_MAX_LOSS`
/// feed the gated headlines; the 10% cells document degradation.
const LOSS_PCT: [u32; 4] = [0, 2, 5, 10];
const STEADY_MAX_LOSS: u32 = 5;
/// Extra-delay ceilings (virtual ticks) swept on the DES.
const JITTERS: [u64; 2] = [0, 3];
/// Round budget for each settle phase; the retry state machine converges
/// in `max_retries + 1` rounds per op, so this is generous headroom.
const SETTLE_ROUNDS: u64 = 200;

fn queries_per_peer() -> usize {
    match std::env::var("OSCAR_FAULT_QUERIES") {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&q| q >= 1)
            .unwrap_or_else(|| {
                eprintln!(
                    "repro_faults: OSCAR_FAULT_QUERIES must be a positive integer, got {s:?}"
                );
                std::process::exit(2);
            }),
        Err(_) => 2,
    }
}

/// One cell of the sweep.
struct Cell {
    driver: &'static str,
    loss_pct: u32,
    jitter: u64,
    delivery_pct: f64,
    retries_per_query: f64,
    p95_cost: u64,
    gave_up: usize,
    rounds: u64,
    secs: f64,
    /// Machine invariant violations (`ProtocolEvent::Fault`). Injected
    /// network loss must never surface as one of these; any non-zero
    /// count fails the run.
    faults: u64,
}

/// Query-phase metrics distilled from the drained event stream.
struct StormOutcome {
    succeeded: usize,
    completed: usize,
    retried: usize,
    gave_up: usize,
    /// `hops + wasted` of each successful query, the total message cost.
    costs: Vec<u64>,
}

fn summarize(events: &[ProtocolEvent]) -> StormOutcome {
    let mut out = StormOutcome {
        succeeded: 0,
        completed: 0,
        retried: 0,
        gave_up: 0,
        costs: Vec::new(),
    };
    for ev in events {
        match ev {
            ProtocolEvent::QueryCompleted(r) => {
                out.completed += 1;
                if r.success {
                    out.succeeded += 1;
                    out.costs.push(r.hops as u64 + r.wasted as u64);
                }
            }
            ProtocolEvent::Retried {
                op: OpKind::Query, ..
            } => out.retried += 1,
            ProtocolEvent::GaveUp {
                op: OpKind::Query, ..
            } => out.gave_up += 1,
            _ => {}
        }
    }
    out
}

/// Nearest-rank p95 over the successful-query costs.
fn p95(costs: &mut [u64]) -> u64 {
    if costs.is_empty() {
        return 0;
    }
    costs.sort_unstable();
    let rank = (costs.len() as f64 * 0.95).ceil() as usize;
    costs[rank.saturating_sub(1).min(costs.len() - 1)]
}

/// Protocol tunables for the sweep: a much deeper retry budget than the
/// default 3, because per-issue failure grows with path length. At
/// n = 2000 a query chain is ~12-25 envelopes, so 5% loss kills an
/// individual issue ~55% of the time; eleven total issues leave
/// 0.55^11 < 0.2% of queries dead, comfortably over the 99% delivery
/// gate, while the *mean* issue count stays near 1/(1-0.55) ~ 2.3 —
/// under the amplification bound of 3.
fn peer_cfg() -> PeerConfig {
    PeerConfig {
        max_retries: 10,
        ..PeerConfig::default()
    }
}

/// The per-cell fault plan: duplication rides at half the loss rate so a
/// lossy network is also a duplicating one, and crashes blackhole
/// (silent loss) rather than bounce — the harsher detection regime.
fn plan_for(scale_seed: u64, idx: usize, loss_pct: u32, jitter: u64) -> FaultPlan {
    let plan_seed = scale_seed ^ ((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let loss = loss_pct as f64 / 100.0;
    FaultPlan::new(plan_seed)
        .with_drop(loss)
        .with_duplication(loss / 2.0)
        .with_delay_jitter(jitter)
        .with_blackhole(true)
}

/// Driver-side bookkeeping of one storm: settle rounds, wall time, and
/// the machine-fault count (gated to zero at the end of `main`).
struct RunMeta {
    rounds: u64,
    secs: f64,
    faults: u64,
}

fn cell_from(
    driver: &'static str,
    loss_pct: u32,
    jitter: u64,
    total: usize,
    outcome: StormOutcome,
    meta: RunMeta,
) -> Cell {
    let mut outcome = outcome;
    assert_eq!(
        outcome.completed, total,
        "{driver} loss={loss_pct}% jitter={jitter}: every query must terminate exactly once"
    );
    Cell {
        driver,
        loss_pct,
        jitter,
        delivery_pct: outcome.succeeded as f64 / total as f64 * 100.0,
        retries_per_query: outcome.retried as f64 / total as f64,
        p95_cost: p95(&mut outcome.costs),
        gave_up: outcome.gave_up,
        rounds: meta.rounds,
        secs: meta.secs,
        faults: meta.faults,
    }
}

fn run_des_cell(scale: &Scale, ids: &[Id], idx: usize, loss_pct: u32, jitter: u64) -> Cell {
    let n = ids.len();
    let per_peer = queries_per_peer();
    let t = Instant::now();
    let mut des = DesDriver::new_with_faults(
        scale.seed,
        peer_cfg(),
        plan_for(scale.seed, idx, loss_pct, jitter),
    );
    for &id in ids {
        des.spawn_peer(id);
    }
    for (i, &id) in ids.iter().enumerate() {
        let pred = ids[(i + n - 1) % n];
        let succs: Vec<Id> = (1..=8).map(|k| ids[(i + k) % n]).collect();
        let mut known = succs.clone();
        known.push(pred);
        des.inject(id, Command::Bootstrap { pred, succs, known });
    }
    for &id in ids {
        des.inject(id, Command::BuildLinks { walks: 3 });
    }
    des.run_until_settled(SETTLE_ROUNDS);
    des.drain_events(); // build-phase events are not the storm's metrics

    let mut krng = SeedTree::new(scale.seed).child(LBL_KEYS).rng();
    let mut qid = 0u64;
    for &id in ids {
        for _ in 0..per_peer {
            des.inject(
                id,
                Command::StartQuery {
                    qid,
                    key: Id::new(krng.gen::<u64>()),
                },
            );
            qid += 1;
        }
    }
    let round0 = des.round();
    des.run_until_settled(SETTLE_ROUNDS);
    let outcome = summarize(&des.drain_events());
    let faults = des.fault_count();
    cell_from(
        "des",
        loss_pct,
        jitter,
        n * per_peer,
        outcome,
        RunMeta {
            rounds: des.round() - round0,
            secs: t.elapsed().as_secs_f64(),
            faults,
        },
    )
}

fn run_rt_cell(scale: &Scale, ids: &[Id], idx: usize, loss_pct: u32, workers: usize) -> Cell {
    let n = ids.len();
    let per_peer = queries_per_peer();
    let t = Instant::now();
    let rt = Runtime::new(
        RuntimeConfig::new(scale.seed)
            .with_workers(workers)
            .with_peer_cfg(peer_cfg())
            .with_fault_plan(plan_for(scale.seed, idx, loss_pct, 0)),
    );
    for &id in ids {
        rt.spawn_peer(id);
    }
    for (i, &id) in ids.iter().enumerate() {
        let pred = ids[(i + n - 1) % n];
        let succs: Vec<Id> = (1..=8).map(|k| ids[(i + k) % n]).collect();
        let mut known = succs.clone();
        known.push(pred);
        rt.inject(id, Command::Bootstrap { pred, succs, known });
    }
    for &id in ids {
        rt.inject(id, Command::BuildLinks { walks: 3 });
    }
    rt.settle(SETTLE_ROUNDS);
    rt.drain_events();

    let mut krng = SeedTree::new(scale.seed).child(LBL_KEYS).rng();
    let mut qid = 0u64;
    for &id in ids {
        for _ in 0..per_peer {
            rt.inject(
                id,
                Command::StartQuery {
                    qid,
                    key: Id::new(krng.gen::<u64>()),
                },
            );
            qid += 1;
        }
    }
    // Count timer rounds by hand: quiesce, then tick-and-drain until no
    // machine holds a pending deadline (mirrors `Runtime::settle`).
    rt.quiesce();
    let mut rounds = 0u64;
    while rounds < SETTLE_ROUNDS && rt.tick_timers() {
        rt.quiesce();
        rounds += 1;
    }
    let outcome = summarize(&rt.drain_events());
    let faults = rt.fault_count();
    let cell = cell_from(
        "runtime",
        loss_pct,
        0,
        n * per_peer,
        outcome,
        RunMeta {
            rounds,
            secs: t.elapsed().as_secs_f64(),
            faults,
        },
    );
    drop(rt);
    cell
}

fn main() -> std::io::Result<()> {
    oscar_bench::reject_unused_knobs_or_exit(&["OSCAR_FAULT_QUERIES"]);
    let scale = Scale::from_env_or_exit();
    let n = scale.target;
    let workers = scale.thread_count().max(2);
    let per_peer = queries_per_peer();
    eprintln!(
        "[faults] {n} peers, {per_peer} queries/peer; sweeping loss {LOSS_PCT:?}% x jitter \
         {JITTERS:?} on the DES and loss {LOSS_PCT:?}% on the {workers}-worker runtime..."
    );

    // Deterministic id population, sorted for ring construction; shared
    // by every cell so only the fault plan varies.
    let mut rng = SeedTree::new(scale.seed).child(LBL_IDS).rng();
    let mut id_set: BTreeSet<Id> = BTreeSet::new();
    while id_set.len() < n {
        id_set.insert(Id::new(rng.gen::<u64>()));
    }
    let ids: Vec<Id> = id_set.into_iter().collect();

    let mut cells: Vec<Cell> = Vec::new();
    let mut idx = 0usize;
    for &jitter in &JITTERS {
        for &loss in &LOSS_PCT {
            cells.push(run_des_cell(&scale, &ids, idx, loss, jitter));
            idx += 1;
        }
    }
    for &loss in &LOSS_PCT {
        cells.push(run_rt_cell(&scale, &ids, idx, loss, workers));
        idx += 1;
    }

    for c in &cells {
        eprintln!(
            "  {:7} loss={:2}% jitter={} delivery={:6.2}% retries/q={:.3} p95_cost={} \
             gave_up={} rounds={} ({:.2}s)",
            c.driver,
            c.loss_pct,
            c.jitter,
            c.delivery_pct,
            c.retries_per_query,
            c.p95_cost,
            c.gave_up,
            c.rounds,
            c.secs
        );
    }

    // Headlines over the steady cells (loss <= 5%): the worst delivery
    // and the worst mean issues-per-query (1 first issue + retries).
    // Gated keys come from the DES cells only — those are pure functions
    // of the seed, so the baseline diff measures the protocol, not the
    // runner. The threaded runtime builds its long links under
    // scheduling-dependent interleaving, so its cells drift a few tenths
    // of a percent run-to-run; they stay informational in the JSON but
    // still feed the >= 99% / <= 3.0 self-gate below. The 10% cells are
    // reported but never gated.
    let steady: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.loss_pct <= STEADY_MAX_LOSS)
        .collect();
    let steady_delivery_pct = steady
        .iter()
        .filter(|c| c.driver == "des")
        .map(|c| c.delivery_pct)
        .fold(f64::INFINITY, f64::min);
    let retry_amplification = steady
        .iter()
        .filter(|c| c.driver == "des")
        .map(|c| 1.0 + c.retries_per_query)
        .fold(0.0, f64::max);
    let self_gate_delivery = steady
        .iter()
        .map(|c| c.delivery_pct)
        .fold(f64::INFINITY, f64::min);
    let self_gate_amp = steady
        .iter()
        .map(|c| 1.0 + c.retries_per_query)
        .fold(0.0, f64::max);

    let mut cell_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        cell_json.push_str(&format!(
            "    {{ \"driver\": \"{}\", \"loss_pct\": {}, \"jitter\": {}, \
             \"delivery_pct\": {:.2}, \"retries_per_query\": {:.3}, \"p95_cost\": {}, \
             \"gave_up\": {}, \"rounds\": {}, \"secs\": {:.2} }}{sep}\n",
            c.driver,
            c.loss_pct,
            c.jitter,
            c.delivery_pct,
            c.retries_per_query,
            c.p95_cost,
            c.gave_up,
            c.rounds,
            c.secs
        ));
    }
    let total_faults: u64 = cells.iter().map(|c| c.faults).sum();
    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"n_peers\": {n},\n  \"seed\": {},\n  \
         \"queries_per_peer\": {per_peer},\n  \"workers\": {workers},\n  \
         \"steady_delivery_pct\": {steady_delivery_pct:.2},\n  \
         \"retry_amplification\": {retry_amplification:.3},\n  \"faults\": {total_faults},\n  \
         \"cells\": [\n{cell_json}  ]\n}}\n",
        scale.seed,
    );
    let dir = Report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_faults.json");
    std::fs::write(&path, &json)?;
    println!("json: {}", path.display());
    eprintln!(
        "faults: steady delivery {steady_delivery_pct:.2}% DES / {self_gate_delivery:.2}% \
         both drivers (gate >= 99%), retry amplification {retry_amplification:.3} DES / \
         {self_gate_amp:.3} both (gate <= 3.0) over loss <= {STEADY_MAX_LOSS}% cells"
    );

    // Self-gate, over BOTH drivers' steady cells: the robustness
    // contract holds without needing a baseline to diff against.
    if self_gate_delivery < 99.0 || self_gate_amp > 3.0 {
        eprintln!("repro_faults: robustness contract violated — see the cells above");
        std::process::exit(1);
    }
    // Injected loss is the point of this bin; machine invariant
    // violations are not. Any `ProtocolEvent::Fault` is a protocol bug.
    if total_faults > 0 {
        eprintln!("repro_faults: {total_faults} machine fault event(s) in a seeded run");
        std::process::exit(1);
    }
    Ok(())
}
