//! Bench-baseline regression gating.
//!
//! The repo commits `BENCH_*.json` performance baselines at its root; CI
//! regenerates the same files under `results/` on every scale-smoke run.
//! Until now the fresh numbers were only uploaded as artifacts — a
//! regression was invisible unless someone eyeballed them. This module
//! diffs a candidate against its baseline, renders a before/after table,
//! and **gates** on the throughput keys — `windows_per_sec` /
//! `queries_per_sec` (higher is better) and any `*_ns_per_join` (lower
//! is better) — plus the robustness headlines of the fault sweep:
//! `steady_delivery_pct` (higher) and `retry_amplification` (lower). A
//! gated key moving more than the tolerance in the bad direction is a
//! regression; the `bench_check` binary exits non-zero on any.
//!
//! The JSON reader is deliberately tiny (the workspace is
//! dependency-free): a recursive-descent pass that collects every numeric
//! leaf under its dotted path (`levels[2].steady_mean_cost`). Strings,
//! booleans and nulls are skipped — only numbers can regress.

use oscar_types::{Error, Result};

/// Relative tolerance of the gate: a gated key may drift this fraction in
/// the bad direction before it counts as a regression (default 30%, per
/// machine-to-machine noise on the CI runners).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Which direction of change regresses a gated key.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Throughput-style key: a drop is a regression (`windows_per_sec`).
    HigherIsBetter,
    /// Latency-style key: a rise is a regression (`*_ns_per_join`).
    LowerIsBetter,
}

/// The gate for a dotted key path, if the key is gated at all. Matching
/// is on the leaf name, so nested occurrences gate too.
pub fn gate_for(path: &str) -> Option<Gate> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf == "windows_per_sec" || leaf == "queries_per_sec" || leaf == "steady_delivery_pct" {
        Some(Gate::HigherIsBetter)
    } else if leaf.ends_with("_ns_per_join") || leaf == "retry_amplification" {
        Some(Gate::LowerIsBetter)
    } else {
        None
    }
}

/// One compared key.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Dotted key path into the JSON document.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value (`None` when the candidate dropped the key).
    pub current: Option<f64>,
    /// The gate, when this key is gated.
    pub gate: Option<Gate>,
    /// True iff the key is gated and moved past tolerance the wrong way
    /// (or vanished from the candidate).
    pub regressed: bool,
}

/// A full baseline-vs-candidate comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// One row per numeric baseline key, in document order.
    pub rows: Vec<CompareRow>,
    /// Number of regressed rows.
    pub regressions: usize,
}

/// Diffs `current` against `baseline` (both JSON documents) under the
/// given relative tolerance. Every numeric key of the baseline produces a
/// row; keys new in the candidate are informational only (they become
/// part of the gate once the baseline is refreshed).
pub fn compare(baseline: &str, current: &str, tolerance: f64) -> Result<Comparison> {
    let base = parse_numbers(baseline)?;
    let cand = parse_numbers(current)?;
    let mut rows = Vec::with_capacity(base.len());
    let mut regressions = 0;
    for (key, old) in base {
        let new = cand.iter().find(|(k, _)| *k == key).map(|&(_, v)| v);
        let gate = gate_for(&key);
        let regressed = match (gate, new) {
            (None, _) => false,
            (Some(_), None) => true, // gated key vanished: fail loudly
            (Some(g), Some(new)) => match g {
                Gate::HigherIsBetter => new < old * (1.0 - tolerance),
                Gate::LowerIsBetter => new > old * (1.0 + tolerance),
            },
        };
        regressions += regressed as usize;
        rows.push(CompareRow {
            key,
            baseline: old,
            current: new,
            gate,
            regressed,
        });
    }
    Ok(Comparison { rows, regressions })
}

/// Renders the before/after table for one compared file.
pub fn render_table(name: &str, cmp: &Comparison) -> String {
    let mut out = format!("== {name} ==\n");
    out.push_str("| key | baseline | current | delta | gate |\n");
    out.push_str("|---|---|---|---|---|\n");
    for row in &cmp.rows {
        let (current, delta) = match row.current {
            Some(v) => {
                let pct = if row.baseline != 0.0 {
                    format!("{:+.1}%", (v - row.baseline) / row.baseline * 100.0)
                } else {
                    "n/a".to_string()
                };
                (format!("{v}"), pct)
            }
            None => ("missing".to_string(), "n/a".to_string()),
        };
        let gate = match (row.gate, row.regressed) {
            (None, _) => "",
            (Some(_), false) => "ok",
            (Some(_), true) => "REGRESSED",
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            row.key, row.baseline, current, delta, gate
        ));
    }
    out
}

/// Extracts every numeric leaf of a JSON document as
/// `(dotted.path[with].indices, value)` pairs, in document order.
pub fn parse_numbers(json: &str) -> Result<Vec<(String, f64)>> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
        out: Vec::new(),
    };
    p.skip_ws();
    p.value("")?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the JSON document"));
    }
    Ok(p.out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    out: Vec<(String, f64)>,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error::InvalidConfig(format!("bench JSON at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    /// Parses one value, collecting numeric leaves under `path`.
    fn value(&mut self, path: &str) -> Result<()> {
        match self.peek() {
            Some(b'{') => self.object(path),
            Some(b'[') => self.array(path),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let v = self.number()?;
                self.out.push((path.to_string(), v));
                Ok(())
            }
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self, path: &str) -> Result<()> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            let child = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(&child)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, path: &str) -> Result<()> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut i = 0usize;
        loop {
            self.skip_ws();
            self.value(&format!("{path}[{i}]"))?;
            i += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    /// Parses a string (the bench files never escape, but tolerate `\X`).
    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => self.pos += 2,
                _ => self.pos += 1,
            }
        }
        Err(self.error("unterminated string"))
    }

    fn number(&mut self) -> Result<f64> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| self.error("malformed number"))
    }

    fn literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected literal {lit}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOINISH: &str = r#"{
  "bench": "join_cost",
  "n_peers": 10000,
  "uncached_ns_per_join": 1600000,
  "cached_ns_per_join": 900000,
  "speedup": 1.80
}"#;

    const CHURNISH: &str = r#"{
  "bench": "steady_churn",
  "windows_per_sec": 1.08,
  "levels": [
    { "level": "0.5%/win", "steady_mean_cost": 3.598 },
    { "level": "1.0%/win", "steady_mean_cost": 3.575 }
  ]
}"#;

    #[test]
    fn parses_nested_numeric_leaves_with_paths() {
        let nums = parse_numbers(CHURNISH).unwrap();
        assert_eq!(
            nums,
            vec![
                ("windows_per_sec".to_string(), 1.08),
                ("levels[0].steady_mean_cost".to_string(), 3.598),
                ("levels[1].steady_mean_cost".to_string(), 3.575),
            ]
        );
        assert!(parse_numbers("{ broken").is_err());
        assert!(parse_numbers("{} extra").is_err());
    }

    #[test]
    fn gates_cover_exactly_the_throughput_keys() {
        assert_eq!(gate_for("windows_per_sec"), Some(Gate::HigherIsBetter));
        assert_eq!(gate_for("queries_per_sec"), Some(Gate::HigherIsBetter));
        assert_eq!(gate_for("cached_ns_per_join"), Some(Gate::LowerIsBetter));
        assert_eq!(
            gate_for("decades[1].d1000_ns_per_join"),
            Some(Gate::LowerIsBetter)
        );
        assert_eq!(gate_for("steady_delivery_pct"), Some(Gate::HigherIsBetter));
        assert_eq!(gate_for("retry_amplification"), Some(Gate::LowerIsBetter));
        assert_eq!(gate_for("steady_mean_cost"), None);
        assert_eq!(gate_for("grow_secs"), None);
        assert_eq!(gate_for("n_peers"), None);
        assert_eq!(
            gate_for("cells[3].delivery_pct"),
            None,
            "per-cell delivery varies with the injected loss rate; only the \
             steady headline is gated"
        );
        assert_eq!(gate_for("cells[3].retries_per_query"), None);
        assert_eq!(
            gate_for("cores_busy"),
            None,
            "utilization is machine-bound, not gated"
        );
    }

    #[test]
    fn identical_files_pass() {
        let cmp = compare(JOINISH, JOINISH, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.regressions, 0);
        assert_eq!(cmp.rows.len(), 4, "every numeric key is a row");
    }

    #[test]
    fn doctored_2x_latency_regression_fails() {
        // The acceptance criterion: a 2x throughput regression must be
        // caught. Double one ns_per_join in the candidate.
        let doctored = JOINISH.replace(
            "\"cached_ns_per_join\": 900000",
            "\"cached_ns_per_join\": 1800000",
        );
        let cmp = compare(JOINISH, &doctored, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.regressions, 1);
        let row = cmp
            .rows
            .iter()
            .find(|r| r.key == "cached_ns_per_join")
            .unwrap();
        assert!(row.regressed);
        let table = render_table("BENCH_join.json", &cmp);
        assert!(table.contains("REGRESSED"), "{table}");
    }

    #[test]
    fn doctored_halved_throughput_fails_and_non_gated_drift_passes() {
        // Halve windows_per_sec: regression. Triple a steady mean (a
        // correctness-ish metric, not a throughput gate): reported in the
        // table but never gated.
        let doctored = CHURNISH
            .replace("\"windows_per_sec\": 1.08", "\"windows_per_sec\": 0.54")
            .replace("3.575", "10.7");
        let cmp = compare(CHURNISH, &doctored, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.regressions, 1);
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.key == "windows_per_sec" && r.regressed));
    }

    #[test]
    fn improvements_and_tolerated_drift_pass() {
        // 20% slower is inside the 30% tolerance; faster is never a
        // regression, however large.
        let slower = JOINISH.replace("1600000", "1900000");
        assert_eq!(
            compare(JOINISH, &slower, DEFAULT_TOLERANCE)
                .unwrap()
                .regressions,
            0
        );
        let faster = JOINISH.replace("1600000", "100000");
        assert_eq!(
            compare(JOINISH, &faster, DEFAULT_TOLERANCE)
                .unwrap()
                .regressions,
            0
        );
        let throughput_up =
            CHURNISH.replace("\"windows_per_sec\": 1.08", "\"windows_per_sec\": 9.9");
        assert_eq!(
            compare(CHURNISH, &throughput_up, DEFAULT_TOLERANCE)
                .unwrap()
                .regressions,
            0
        );
    }

    #[test]
    fn vanished_gated_key_is_a_regression() {
        let missing = r#"{ "bench": "steady_churn", "levels": [] }"#;
        let cmp = compare(CHURNISH, missing, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.regressions, 1);
        let row = cmp
            .rows
            .iter()
            .find(|r| r.key == "windows_per_sec")
            .unwrap();
        assert!(row.regressed && row.current.is_none());
        let table = render_table("BENCH_churn.json", &cmp);
        assert!(table.contains("missing"), "{table}");
    }
}
