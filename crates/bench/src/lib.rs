//! # oscar-bench — experiment harness for the paper's figures
//!
//! Shared machinery for the `repro_*` binaries (full paper-scale figure
//! regeneration) and the Criterion benches (bounded-size performance
//! measurements). Every experiment is a pure function of a [`Scale`] and
//! a seed, so the binaries, the benches and the tests all drive the same
//! code.

pub mod baseline;
pub mod experiments;
pub mod figures;
pub mod parallel;
pub mod report;
pub mod scale;
pub mod scenario;

pub use experiments::{
    churn_schedule_for, grow_steady_churn_substrate, phase_churn_levels, phase_repair_policies,
    run_churn_experiment, run_growth_experiment, run_machine_churn_experiment,
    run_phase_diagram_experiment, run_steady_churn_experiment, run_steady_churn_on,
    standard_churn_schedules, steady_mean_of, ChurnResult, GrowthRunResult, PhaseCell,
    SteadyChurnResult, PHASE_SUCC_LENS,
};
pub use parallel::{run_tasks, Task};
pub use report::Report;
pub use scale::{reject_unused_knobs, reject_unused_knobs_or_exit, MachineKnobs, Scale};
pub use scenario::{
    machine_phases_for, render_scenario_report, run_all_scenarios, run_scenario, scenario_tag,
    standard_scenarios, write_scenario_csv, write_scenario_report, Check, CheckOutcome, DegreeKind,
    PhaseSpec, Scenario, ScenarioOutcome, ScenarioRow,
};

/// Serialises every test that touches process environment variables.
///
/// Tests run on parallel threads of one process, and on glibc a `setenv`
/// concurrent with any `getenv` is undefined behaviour — so each
/// env-mutating test must hold [`env_guard::lock`] for its whole body,
/// and every *reader* of the same variables it mutates must be inside a
/// lock-holding test too.
#[cfg(test)]
pub(crate) mod env_guard {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the process-wide env lock (poison-tolerant: a failed
    /// env test must not cascade into unrelated failures).
    pub fn lock() -> MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Removes the named variables when dropped, even on panic, so a
    /// failed assertion cannot leak state into later runs.
    pub struct RemoveOnDrop(pub &'static [&'static str]);

    impl Drop for RemoveOnDrop {
        fn drop(&mut self) {
            for name in self.0 {
                std::env::remove_var(name);
            }
        }
    }
}
