//! # oscar-bench — experiment harness for the paper's figures
//!
//! Shared machinery for the `repro_*` binaries (full paper-scale figure
//! regeneration) and the Criterion benches (bounded-size performance
//! measurements). Every experiment is a pure function of a [`Scale`] and
//! a seed, so the binaries, the benches and the tests all drive the same
//! code.

pub mod experiments;
pub mod figures;
pub mod report;
pub mod scale;

pub use experiments::{run_churn_experiment, run_growth_experiment, ChurnResult, GrowthRunResult};
pub use report::Report;
pub use scale::Scale;
