//! The experiment drivers behind every figure.

use crate::parallel::{run_tasks, Task};
use crate::scale::Scale;
use oscar_analytics::{degree_load_curve, degree_volume_utilization};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_sim::{
    kill_fraction, run_query_batch, FaultModel, GrowthConfig, GrowthDriver, Network,
    OverlayBuilder, QueryBatchStats, RoutePolicy,
};
use oscar_types::{Result, SeedTree};

/// Seed-tree labels.
const LBL_GROWTH: u64 = 1;
const LBL_QUERIES: u64 = 2;
const LBL_CHURN: u64 = 3;

/// Everything one growth run produces.
pub struct GrowthRunResult {
    /// Curve label (e.g. "constant", "realistic").
    pub label: String,
    /// Per-checkpoint query statistics (`N` queries at network size `N`,
    /// the paper's protocol), measured after the rewire-all pass.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
    /// Sorted per-peer relative degree load at the final size (Fig 1(b)).
    pub final_degree_load: Vec<f64>,
    /// Total degree-volume utilisation at the final size (E2/E3).
    pub final_utilization: f64,
    /// The grown network (for follow-up analyses, e.g. churn clones).
    pub network: Network,
}

/// Grows an overlay under the paper's protocol and measures search cost at
/// every checkpoint.
pub fn run_growth_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    label: &str,
) -> Result<GrowthRunResult> {
    let seed = SeedTree::new(scale.seed);
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut cost_by_size = Vec::new();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            let mut rng = seed.child2(LBL_QUERIES, cp.index as u64).rng();
            let stats = run_query_batch(
                net,
                &QueryWorkload::UniformPeers,
                cp.size,
                &RoutePolicy::default(),
                &mut rng,
            );
            cost_by_size.push((cp.size, stats));
            Ok(())
        },
    )?;
    let final_degree_load = degree_load_curve(&net);
    let final_utilization = degree_volume_utilization(&net);
    Ok(GrowthRunResult {
        label: label.to_string(),
        cost_by_size,
        final_degree_load,
        final_utilization,
        network: net,
    })
}

/// One churn measurement series: search cost per network size for a fixed
/// crash fraction.
pub struct ChurnResult {
    /// Crash fraction (0.0, 0.10, 0.33, …).
    pub fraction: f64,
    /// Per-checkpoint query statistics on the crashed clone.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
}

/// The Figure 2 protocol: grow with rewiring; at each checkpoint, for each
/// crash fraction, crash a *clone* of the network and measure `N` queries
/// among the survivors (wasted traffic included).
///
/// The growth itself is inherently sequential, but the per-checkpoint
/// fraction measurements are independent (each owns a clone and its own
/// seed-tree child), so they fan out over [`Scale::thread_count`] workers;
/// results are byte-identical to the sequential order.
pub fn run_churn_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    fractions: &[f64],
) -> Result<Vec<ChurnResult>> {
    let seed = SeedTree::new(scale.seed);
    let threads = scale.thread_count();
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut results: Vec<ChurnResult> = fractions
        .iter()
        .map(|&fraction| ChurnResult {
            fraction,
            cost_by_size: Vec::new(),
        })
        .collect();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            // Clones are taken sequentially (cheap relative to the query
            // batches); each measurement task then owns its crashed copy.
            let tasks: Vec<Task<Result<QueryBatchStats>>> = results
                .iter()
                .enumerate()
                .map(|(fi, result)| {
                    let mut crashed = net.clone();
                    let fraction = result.fraction;
                    let churn_seed = seed.child2(LBL_CHURN, (cp.index * 16 + fi) as u64);
                    Box::new(move || {
                        if fraction > 0.0 {
                            let mut crng = churn_seed.rng();
                            kill_fraction(&mut crashed, fraction, &mut crng)?;
                        }
                        let mut qrng = churn_seed.child(LBL_QUERIES).rng();
                        Ok(run_query_batch(
                            &mut crashed,
                            &QueryWorkload::UniformPeers,
                            cp.size,
                            &RoutePolicy::default(),
                            &mut qrng,
                        ))
                    }) as Task<Result<QueryBatchStats>>
                })
                .collect();
            for (result, stats) in results.iter_mut().zip(run_tasks(threads, tasks)) {
                result.cost_by_size.push((cp.size, stats?));
            }
            Ok(())
        },
    )?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::{OscarBuilder, OscarConfig};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::GnutellaKeys;
    use oscar_mercury::{MercuryBuilder, MercuryConfig};

    #[test]
    fn growth_experiment_produces_full_series() {
        let scale = Scale::small(300, 5);
        let builder = OscarBuilder::new(OscarConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "constant",
        )
        .unwrap();
        assert_eq!(r.label, "constant");
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert_eq!(r.final_degree_load.len(), 300);
        assert!(r.final_utilization > 0.5);
        for (size, stats) in &r.cost_by_size {
            assert_eq!(stats.success_rate, 1.0, "at size {size}");
        }
    }

    #[test]
    fn churn_experiment_orders_fractions() {
        let scale = Scale::small(300, 7);
        let builder = OscarBuilder::new(OscarConfig::default());
        let rs = run_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &[0.0, 0.10, 0.33],
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
        // At the final checkpoint the ordering must match Figure 2.
        let last = |r: &ChurnResult| r.cost_by_size.last().unwrap().1.mean_cost;
        assert!(last(&rs[0]) < last(&rs[1]));
        assert!(last(&rs[1]) < last(&rs[2]));
        // All fractions keep full delivery under the stabilised ring.
        for r in &rs {
            for (_, stats) in &r.cost_by_size {
                assert_eq!(stats.success_rate, 1.0);
            }
        }
    }

    #[test]
    fn experiments_work_with_mercury_too() {
        let scale = Scale::small(200, 9);
        let builder = MercuryBuilder::new(MercuryConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "mercury",
        )
        .unwrap();
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert!(r.final_utilization > 0.0);
    }

    #[test]
    fn experiments_are_deterministic() {
        let scale = Scale::small(200, 11);
        let builder = OscarBuilder::new(OscarConfig::default());
        let run = || {
            run_growth_experiment(
                &builder,
                &GnutellaKeys::default(),
                &ConstantDegrees::paper(),
                &scale,
                "x",
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_utilization, b.final_utilization);
        let costs = |r: &GrowthRunResult| {
            r.cost_by_size
                .iter()
                .map(|(_, s)| s.mean_cost)
                .collect::<Vec<_>>()
        };
        assert_eq!(costs(&a), costs(&b));
    }
}
