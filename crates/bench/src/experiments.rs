//! The experiment drivers behind every figure.

use crate::parallel::{run_tasks, Task};
use crate::scale::Scale;
use oscar_analytics::{degree_load_curve, degree_volume_utilization};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_sim::{
    kill_fraction, run_continuous_churn, run_query_batch, ChurnSchedule, ChurnWindowStats,
    FaultModel, GrowthConfig, GrowthDriver, Network, OverlayBuilder, QueryBatchStats, RoutePolicy,
};
use oscar_types::{Result, SeedTree};

/// Seed-tree labels.
const LBL_GROWTH: u64 = 1;
const LBL_QUERIES: u64 = 2;
const LBL_CHURN: u64 = 3;
const LBL_STEADY: u64 = 4;

/// Everything one growth run produces.
pub struct GrowthRunResult {
    /// Curve label (e.g. "constant", "realistic").
    pub label: String,
    /// Per-checkpoint query statistics (`N` queries at network size `N`,
    /// the paper's protocol), measured after the rewire-all pass.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
    /// Sorted per-peer relative degree load at the final size (Fig 1(b)).
    pub final_degree_load: Vec<f64>,
    /// Total degree-volume utilisation at the final size (E2/E3).
    pub final_utilization: f64,
    /// The grown network (for follow-up analyses, e.g. churn clones).
    pub network: Network,
}

/// Grows an overlay under the paper's protocol and measures search cost at
/// every checkpoint.
pub fn run_growth_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    label: &str,
) -> Result<GrowthRunResult> {
    let seed = SeedTree::new(scale.seed);
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut cost_by_size = Vec::new();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            let mut rng = seed.child2(LBL_QUERIES, cp.index as u64).rng();
            let stats = run_query_batch(
                net,
                &QueryWorkload::UniformPeers,
                cp.size,
                &RoutePolicy::default(),
                &mut rng,
            );
            cost_by_size.push((cp.size, stats));
            Ok(())
        },
    )?;
    let final_degree_load = degree_load_curve(&net);
    let final_utilization = degree_volume_utilization(&net);
    Ok(GrowthRunResult {
        label: label.to_string(),
        cost_by_size,
        final_degree_load,
        final_utilization,
        network: net,
    })
}

/// One churn measurement series: search cost per network size for a fixed
/// crash fraction.
pub struct ChurnResult {
    /// Crash fraction (0.0, 0.10, 0.33, …).
    pub fraction: f64,
    /// Per-checkpoint query statistics on the crashed clone.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
}

/// The Figure 2 protocol: grow with rewiring; at each checkpoint, for each
/// crash fraction, crash a *clone* of the network and measure `N` queries
/// among the survivors (wasted traffic included).
///
/// The growth itself is inherently sequential, but the per-checkpoint
/// fraction measurements are independent (each owns a clone and its own
/// seed-tree child), so they fan out over [`Scale::thread_count`] workers;
/// results are byte-identical to the sequential order.
pub fn run_churn_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    fractions: &[f64],
) -> Result<Vec<ChurnResult>> {
    let seed = SeedTree::new(scale.seed);
    let threads = scale.thread_count();
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut results: Vec<ChurnResult> = fractions
        .iter()
        .map(|&fraction| ChurnResult {
            fraction,
            cost_by_size: Vec::new(),
        })
        .collect();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            // Clones are taken sequentially (cheap relative to the query
            // batches); each measurement task then owns its crashed copy.
            let tasks: Vec<Task<Result<QueryBatchStats>>> = results
                .iter()
                .enumerate()
                .map(|(fi, result)| {
                    let mut crashed = net.clone();
                    let fraction = result.fraction;
                    let churn_seed = seed.child2(LBL_CHURN, (cp.index * 16 + fi) as u64);
                    Box::new(move || {
                        if fraction > 0.0 {
                            let mut crng = churn_seed.rng();
                            kill_fraction(&mut crashed, fraction, &mut crng)?;
                        }
                        let mut qrng = churn_seed.child(LBL_QUERIES).rng();
                        Ok(run_query_batch(
                            &mut crashed,
                            &QueryWorkload::UniformPeers,
                            cp.size,
                            &RoutePolicy::default(),
                            &mut qrng,
                        ))
                    }) as Task<Result<QueryBatchStats>>
                })
                .collect();
            for (result, stats) in results.iter_mut().zip(run_tasks(threads, tasks)) {
                result.cost_by_size.push((cp.size, stats?));
            }
            Ok(())
        },
    )?;
    Ok(results)
}

/// One continuous-churn series: steady-state windows at a fixed churn
/// level on the common grown network.
pub struct SteadyChurnResult {
    /// Human label for the churn level ("1.0%/win", …).
    pub label: String,
    /// The schedule that produced it.
    pub schedule: ChurnSchedule,
    /// Per-window measurements, in virtual-time order.
    pub windows: Vec<ChurnWindowStats>,
}

impl SteadyChurnResult {
    /// Mean of `f` over the steady-state windows (the last half — the
    /// early windows still carry the pristine pre-churn topology).
    pub fn steady_mean(&self, f: impl Fn(&ChurnWindowStats) -> f64) -> f64 {
        let tail = &self.windows[self.windows.len() / 2..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(f).sum::<f64>() / tail.len() as f64
    }
}

/// The standard churn-level ladder for a given scale: per-window peer
/// turnover of 0.5%, 1%, 2% and 5% of the grown population, symmetric
/// join/crash rates plus a small graceful-departure share, one repair
/// sweep per window.
pub fn standard_churn_schedules(scale: &Scale) -> Vec<(String, ChurnSchedule)> {
    [0.005, 0.01, 0.02, 0.05]
        .into_iter()
        .map(|turnover| {
            let base = ChurnSchedule::symmetric(0.0);
            let events_per_window = turnover * scale.target as f64;
            let rate = events_per_window / base.window_ticks as f64;
            (
                format!("{:.1}%/win", turnover * 100.0),
                ChurnSchedule {
                    join_rate: rate,
                    crash_rate: rate * 0.8,
                    depart_rate: rate * 0.2,
                    queries_per_window: (scale.target / 4).max(100),
                    min_live: (scale.target / 10).max(16),
                    ..base
                },
            )
        })
        .collect()
}

/// Grows the substrate network the steady-churn engine starts from: the
/// paper's growth protocol with a final rewire-all pass, so window 0
/// measures churn damage on a repaired topology, not growth-era link
/// bias (comparable to the fig1c/fig2 checkpoints at the same size).
pub fn grow_steady_churn_substrate<B: OverlayBuilder + ?Sized>(
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
) -> Result<Network> {
    let seed = SeedTree::new(scale.seed);
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: vec![scale.target],
        rewire_at_checkpoints: true,
    });
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |_, _| Ok(()),
    )?;
    Ok(net)
}

/// The engine half of the steady-state churn protocol: run the
/// continuous-churn engine on an owned clone of `net` per churn level
/// and measure every window.
///
/// The per-level runs are independent — each owns its clone and derives
/// all randomness from its own seed-tree child — so they fan out over
/// [`Scale::thread_count`] workers with byte-identical results
/// (`tests/parallel_determinism.rs` pins it).
pub fn run_steady_churn_on<B: OverlayBuilder + Sync + ?Sized>(
    net: &Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    schedules: &[(String, ChurnSchedule)],
    windows: usize,
) -> Result<Vec<SteadyChurnResult>> {
    let seed = SeedTree::new(scale.seed);
    let tasks: Vec<Task<Result<Vec<ChurnWindowStats>>>> = schedules
        .iter()
        .enumerate()
        .map(|(i, (_, schedule))| {
            let mut churned = net.clone();
            let run_seed = seed.child2(LBL_STEADY, i as u64);
            Box::new(move || {
                run_continuous_churn(
                    &mut churned,
                    builder,
                    keys,
                    degrees,
                    schedule,
                    windows,
                    run_seed,
                )
            }) as Task<Result<Vec<ChurnWindowStats>>>
        })
        .collect();
    schedules
        .iter()
        .zip(run_tasks(scale.thread_count(), tasks))
        .map(|((label, schedule), windows)| {
            Ok(SteadyChurnResult {
                label: label.clone(),
                schedule: schedule.clone(),
                windows: windows?,
            })
        })
        .collect()
}

/// The full steady-state churn protocol:
/// [`grow_steady_churn_substrate`] + [`run_steady_churn_on`].
pub fn run_steady_churn_experiment<B: OverlayBuilder + Sync + ?Sized>(
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    schedules: &[(String, ChurnSchedule)],
    windows: usize,
) -> Result<Vec<SteadyChurnResult>> {
    let net = grow_steady_churn_substrate(builder, keys, degrees, scale)?;
    run_steady_churn_on(&net, builder, keys, degrees, scale, schedules, windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::{OscarBuilder, OscarConfig};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::GnutellaKeys;
    use oscar_mercury::{MercuryBuilder, MercuryConfig};

    #[test]
    fn growth_experiment_produces_full_series() {
        let scale = Scale::small(300, 5);
        let builder = OscarBuilder::new(OscarConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "constant",
        )
        .unwrap();
        assert_eq!(r.label, "constant");
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert_eq!(r.final_degree_load.len(), 300);
        assert!(r.final_utilization > 0.5);
        for (size, stats) in &r.cost_by_size {
            assert_eq!(stats.success_rate, 1.0, "at size {size}");
        }
    }

    #[test]
    fn churn_experiment_orders_fractions() {
        let scale = Scale::small(300, 7);
        let builder = OscarBuilder::new(OscarConfig::default());
        let rs = run_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &[0.0, 0.10, 0.33],
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
        // At the final checkpoint the ordering must match Figure 2.
        let last = |r: &ChurnResult| r.cost_by_size.last().unwrap().1.mean_cost;
        assert!(last(&rs[0]) < last(&rs[1]));
        assert!(last(&rs[1]) < last(&rs[2]));
        // All fractions keep full delivery under the stabilised ring.
        for r in &rs {
            for (_, stats) in &r.cost_by_size {
                assert_eq!(stats.success_rate, 1.0);
            }
        }
    }

    #[test]
    fn steady_churn_experiment_measures_every_window() {
        let scale = Scale::small(200, 13);
        let builder = OscarBuilder::new(OscarConfig::default());
        let schedules = standard_churn_schedules(&scale);
        assert_eq!(schedules.len(), 4);
        let rs = run_steady_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &schedules[..2],
            3,
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.windows.len(), 3);
            for w in &r.windows {
                assert!(w.queries.queries > 0, "{}: empty window", r.label);
                assert!(w.live_at_end >= r.schedule.min_live);
            }
            assert!(r.steady_mean(|w| w.queries.mean_cost) > 0.0);
        }
        // The common grown substrate means window 0 histories diverge only
        // through the engine: schedules must actually differ in intensity.
        let turnover =
            |r: &SteadyChurnResult| r.windows.iter().map(|w| w.joins + w.crashes).sum::<u64>();
        assert!(turnover(&rs[1]) > turnover(&rs[0]));
    }

    #[test]
    fn experiments_work_with_mercury_too() {
        let scale = Scale::small(200, 9);
        let builder = MercuryBuilder::new(MercuryConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "mercury",
        )
        .unwrap();
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert!(r.final_utilization > 0.0);
    }

    #[test]
    fn experiments_are_deterministic() {
        let scale = Scale::small(200, 11);
        let builder = OscarBuilder::new(OscarConfig::default());
        let run = || {
            run_growth_experiment(
                &builder,
                &GnutellaKeys::default(),
                &ConstantDegrees::paper(),
                &scale,
                "x",
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_utilization, b.final_utilization);
        let costs = |r: &GrowthRunResult| {
            r.cost_by_size
                .iter()
                .map(|(_, s)| s.mean_cost)
                .collect::<Vec<_>>()
        };
        assert_eq!(costs(&a), costs(&b));
    }
}
