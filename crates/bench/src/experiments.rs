//! The experiment drivers behind every figure.

use crate::parallel::{run_tasks, Task};
use crate::scale::{MachineKnobs, Scale};
use oscar_analytics::{degree_load_curve, degree_volume_utilization};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_protocol::PeerConfig;
use oscar_sim::{
    kill_fraction, machine_repair_policy, run_continuous_churn, run_machine_churn, run_query_batch,
    ChurnSchedule, ChurnWindowStats, DesDriver, FaultModel, GrowthConfig, GrowthDriver,
    MachineChurnConfig, Network, OverlayBuilder, QueryBatchStats, QueryBudget, RepairPolicy,
    RoutePolicy,
};
use oscar_types::labels::bench_experiments::{
    LBL_CHURN, LBL_GROWTH, LBL_MACHINE, LBL_PHASE, LBL_QUERIES, LBL_STEADY,
};
use oscar_types::{Result, SeedTree};

/// Everything one growth run produces.
pub struct GrowthRunResult {
    /// Curve label (e.g. "constant", "realistic").
    pub label: String,
    /// Per-checkpoint query statistics (`N` queries at network size `N`,
    /// the paper's protocol), measured after the rewire-all pass.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
    /// Sorted per-peer relative degree load at the final size (Fig 1(b)).
    pub final_degree_load: Vec<f64>,
    /// Total degree-volume utilisation at the final size (E2/E3).
    pub final_utilization: f64,
    /// The grown network (for follow-up analyses, e.g. churn clones).
    pub network: Network,
}

/// Grows an overlay under the paper's protocol and measures search cost at
/// every checkpoint.
pub fn run_growth_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    label: &str,
) -> Result<GrowthRunResult> {
    let seed = SeedTree::new(scale.seed);
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut cost_by_size = Vec::new();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            let mut rng = seed.child2(LBL_QUERIES, cp.index as u64).rng();
            let stats = run_query_batch(
                net,
                &QueryWorkload::UniformPeers,
                cp.size,
                &RoutePolicy::default(),
                &mut rng,
            );
            cost_by_size.push((cp.size, stats));
            Ok(())
        },
    )?;
    let final_degree_load = degree_load_curve(&net);
    let final_utilization = degree_volume_utilization(&net);
    Ok(GrowthRunResult {
        label: label.to_string(),
        cost_by_size,
        final_degree_load,
        final_utilization,
        network: net,
    })
}

/// One churn measurement series: search cost per network size for a fixed
/// crash fraction.
pub struct ChurnResult {
    /// Crash fraction (0.0, 0.10, 0.33, …).
    pub fraction: f64,
    /// Per-checkpoint query statistics on the crashed clone.
    pub cost_by_size: Vec<(usize, QueryBatchStats)>,
}

/// The Figure 2 protocol: grow with rewiring; at each checkpoint, for each
/// crash fraction, crash a *clone* of the network and measure `N` queries
/// among the survivors (wasted traffic included).
///
/// The growth itself is inherently sequential, but the per-checkpoint
/// fraction measurements are independent (each owns a clone and its own
/// seed-tree child), so they fan out over [`Scale::thread_count`] workers;
/// results are byte-identical to the sequential order.
pub fn run_churn_experiment(
    builder: &dyn OverlayBuilder,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    fractions: &[f64],
) -> Result<Vec<ChurnResult>> {
    let seed = SeedTree::new(scale.seed);
    let threads = scale.thread_count();
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: scale.checkpoints(),
        rewire_at_checkpoints: true,
    });
    let mut results: Vec<ChurnResult> = fractions
        .iter()
        .map(|&fraction| ChurnResult {
            fraction,
            cost_by_size: Vec::new(),
        })
        .collect();
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |net, cp| {
            // Clones are taken sequentially (cheap relative to the query
            // batches); each measurement task then owns its crashed copy.
            let tasks: Vec<Task<Result<QueryBatchStats>>> = results
                .iter()
                .enumerate()
                .map(|(fi, result)| {
                    let mut crashed = net.clone();
                    let fraction = result.fraction;
                    let churn_seed = seed.child2(LBL_CHURN, (cp.index * 16 + fi) as u64);
                    Box::new(move || {
                        if fraction > 0.0 {
                            let mut crng = churn_seed.rng();
                            kill_fraction(&mut crashed, fraction, &mut crng)?;
                        }
                        let mut qrng = churn_seed.child(LBL_QUERIES).rng();
                        Ok(run_query_batch(
                            &mut crashed,
                            &QueryWorkload::UniformPeers,
                            cp.size,
                            &RoutePolicy::default(),
                            &mut qrng,
                        ))
                    }) as Task<Result<QueryBatchStats>>
                })
                .collect();
            for (result, stats) in results.iter_mut().zip(run_tasks(threads, tasks)) {
                result.cost_by_size.push((cp.size, stats?));
            }
            Ok(())
        },
    )?;
    Ok(results)
}

/// One continuous-churn series: steady-state windows at a fixed churn
/// level on the common grown network.
pub struct SteadyChurnResult {
    /// Human label for the churn level ("1.0%/win", …).
    pub label: String,
    /// The schedule that produced it.
    pub schedule: ChurnSchedule,
    /// Per-window measurements, in virtual-time order.
    pub windows: Vec<ChurnWindowStats>,
}

/// Mean of `f` over the steady-state tail of `windows` (the last half —
/// the early windows still carry the pristine pre-churn topology).
pub fn steady_mean_of(windows: &[ChurnWindowStats], f: impl Fn(&ChurnWindowStats) -> f64) -> f64 {
    let tail = &windows[windows.len() / 2..];
    if tail.is_empty() {
        return 0.0;
    }
    tail.iter().map(f).sum::<f64>() / tail.len() as f64
}

impl SteadyChurnResult {
    /// Mean of `f` over the steady-state windows (the last half — the
    /// early windows still carry the pristine pre-churn topology).
    pub fn steady_mean(&self, f: impl Fn(&ChurnWindowStats) -> f64) -> f64 {
        steady_mean_of(&self.windows, f)
    }
}

/// One schedule of the churn ladders: per-window peer turnover of
/// `turnover` of the grown population, symmetric join/failure rates with
/// a small graceful-departure share, one repair sweep per window.
pub fn churn_schedule_for(turnover: f64, scale: &Scale) -> ChurnSchedule {
    let base = ChurnSchedule::symmetric(0.0);
    let events_per_window = turnover * scale.target as f64;
    let rate = events_per_window / base.window_ticks as f64;
    ChurnSchedule {
        join_rate: rate,
        crash_rate: rate * 0.8,
        depart_rate: rate * 0.2,
        query_budget: QueryBudget::Fixed((scale.target / 4).max(100)),
        min_live: (scale.target / 10).max(16),
        ..base
    }
}

/// Human label for a turnover fraction ("2.0%/win").
fn turnover_label(turnover: f64) -> String {
    format!("{:.1}%/win", turnover * 100.0)
}

/// The standard churn-level ladder for a given scale: per-window peer
/// turnover of 0.5%, 1%, 2% and 5% of the grown population.
pub fn standard_churn_schedules(scale: &Scale) -> Vec<(String, ChurnSchedule)> {
    [0.005, 0.01, 0.02, 0.05]
        .into_iter()
        .map(|turnover| {
            (
                turnover_label(turnover),
                churn_schedule_for(turnover, scale),
            )
        })
        .collect()
}

/// Grows the substrate network the steady-churn engine starts from: the
/// paper's growth protocol with a final rewire-all pass, so window 0
/// measures churn damage on a repaired topology, not growth-era link
/// bias (comparable to the fig1c/fig2 checkpoints at the same size).
pub fn grow_steady_churn_substrate<B: OverlayBuilder + ?Sized>(
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
) -> Result<Network> {
    let seed = SeedTree::new(scale.seed);
    let mut net = Network::new(FaultModel::StabilizedRing);
    let driver = GrowthDriver::new(GrowthConfig {
        target_size: scale.target,
        seed_size: 8,
        checkpoints: vec![scale.target],
        rewire_at_checkpoints: true,
    });
    driver.run(
        &mut net,
        builder,
        keys,
        degrees,
        seed.child(LBL_GROWTH),
        |_, _| Ok(()),
    )?;
    Ok(net)
}

/// The engine half of the steady-state churn protocol: run the
/// continuous-churn engine on an owned clone of `net` per churn level
/// and measure every window.
///
/// The per-level runs are independent — each owns its clone and derives
/// all randomness from its own seed-tree child — so they fan out over
/// [`Scale::thread_count`] workers with byte-identical results
/// (`tests/parallel_determinism.rs` pins it).
pub fn run_steady_churn_on<B: OverlayBuilder + Sync + ?Sized>(
    net: &Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    schedules: &[(String, ChurnSchedule)],
    windows: usize,
) -> Result<Vec<SteadyChurnResult>> {
    let seed = SeedTree::new(scale.seed);
    let tasks: Vec<Task<Result<Vec<ChurnWindowStats>>>> = schedules
        .iter()
        .enumerate()
        .map(|(i, (_, schedule))| {
            let mut churned = net.clone();
            let run_seed = seed.child2(LBL_STEADY, i as u64);
            Box::new(move || {
                run_continuous_churn(
                    &mut churned,
                    builder,
                    keys,
                    degrees,
                    schedule,
                    windows,
                    run_seed,
                )
            }) as Task<Result<Vec<ChurnWindowStats>>>
        })
        .collect();
    schedules
        .iter()
        .zip(run_tasks(scale.thread_count(), tasks))
        .map(|((label, schedule), windows)| {
            Ok(SteadyChurnResult {
                label: label.clone(),
                schedule: schedule.clone(),
                windows: windows?,
            })
        })
        .collect()
}

/// The steady-state churn protocol through the **machine backend**: every
/// churn level of `schedules` runs on its own [`DesDriver`]-hosted
/// [`oscar_protocol::PeerMachine`] fleet (bootstrapped to `scale.target`
/// peers by real joins), with the level's repair policy mapped onto the
/// machines via [`machine_repair_policy`] and retuned by `knobs`.
///
/// Unlike the oracle engine there is no pre-grown substrate and no free
/// failure detection — every repair in the window books is protocol
/// messages. Levels are independent (each owns its driver and derives all
/// randomness from its own seed-tree child), so they fan out over
/// [`Scale::thread_count`] workers with byte-identical results.
///
/// One churn level's outcome: its windowed books plus the driver's
/// fault count.
type MachineLevelRun = Result<(Vec<ChurnWindowStats>, u64)>;

/// Returns the per-level results plus the summed
/// [`oscar_protocol::ProtocolEvent::Fault`] count across every driver —
/// faults are machine invariant violations, so seeded runs gate on zero.
pub fn run_machine_churn_experiment(
    keys: &dyn KeyDistribution,
    scale: &Scale,
    schedules: &[(String, ChurnSchedule)],
    windows: usize,
    knobs: MachineKnobs,
) -> Result<(Vec<SteadyChurnResult>, u64)> {
    let seed = SeedTree::new(scale.seed);
    let tasks: Vec<Task<MachineLevelRun>> = schedules
        .iter()
        .enumerate()
        .map(|(i, (_, schedule))| {
            let run_seed = seed.child2(LBL_MACHINE, i as u64);
            Box::new(move || {
                let peer_cfg = knobs.apply(PeerConfig {
                    repair: machine_repair_policy(&schedule.repair),
                    ..PeerConfig::default()
                });
                let mut driver = DesDriver::new(run_seed.seed(), peer_cfg);
                let cfg = MachineChurnConfig {
                    initial_peers: scale.target,
                    probe_every: (schedule.window_ticks / 10).max(1),
                    ..MachineChurnConfig::default()
                };
                let windows =
                    run_machine_churn(&mut driver, keys, &cfg, schedule, windows, run_seed)?;
                Ok((windows, driver.fault_count()))
            }) as Task<Result<(Vec<ChurnWindowStats>, u64)>>
        })
        .collect();
    let mut faults = 0u64;
    let results = schedules
        .iter()
        .zip(run_tasks(scale.thread_count(), tasks))
        .map(|((label, schedule), outcome)| {
            let (windows, level_faults) = outcome?;
            faults += level_faults;
            Ok(SteadyChurnResult {
                label: label.clone(),
                schedule: schedule.clone(),
                windows,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((results, faults))
}

/// The full steady-state churn protocol:
/// [`grow_steady_churn_substrate`] + [`run_steady_churn_on`].
pub fn run_steady_churn_experiment<B: OverlayBuilder + Sync + ?Sized>(
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    schedules: &[(String, ChurnSchedule)],
    windows: usize,
) -> Result<Vec<SteadyChurnResult>> {
    let net = grow_steady_churn_substrate(builder, keys, degrees, scale)?;
    run_steady_churn_on(&net, builder, keys, degrees, scale, schedules, windows)
}

/// One cell of the churn phase diagram: a fixed (churn level, repair
/// policy, successor-list length) combination measured at steady state
/// under the **unstabilised** ring — the regime where the successor list
/// is what keeps routing alive and delivery can actually break.
pub struct PhaseCell {
    /// Churn-level label ("10.0%/win").
    pub level: String,
    /// Per-window turnover fraction of the grown population.
    pub turnover: f64,
    /// Repair-policy label ("sweep", "reactive-k2", "on-probe").
    pub policy: String,
    /// Successor-list length this cell ran with.
    pub succ_list_len: usize,
    /// The schedule that produced it (repair policy already applied).
    pub schedule: ChurnSchedule,
    /// Per-window measurements, in virtual-time order.
    pub windows: Vec<ChurnWindowStats>,
}

impl PhaseCell {
    /// Mean of `f` over the steady-state windows (the last half).
    pub fn steady_mean(&self, f: impl Fn(&ChurnWindowStats) -> f64) -> f64 {
        steady_mean_of(&self.windows, f)
    }
}

/// The phase diagram's churn axis: 2%, 5%, 10% and 20% of the population
/// per window — deliberately past the standard ladder's 5% ceiling, so
/// the delivery cliff is inside the swept range.
pub fn phase_churn_levels(scale: &Scale) -> Vec<(String, f64, ChurnSchedule)> {
    [0.02, 0.05, 0.10, 0.20]
        .into_iter()
        .map(|turnover| {
            (
                turnover_label(turnover),
                turnover,
                churn_schedule_for(turnover, scale),
            )
        })
        .collect()
}

/// The phase diagram's repair axis: no repair at all (the control column
/// — dangling links and ring corpses accumulate unchecked, which is
/// where delivery actually collapses), the paper-style whole-network
/// sweep once per window, reactive k=2 neighbour repair, and
/// probe-triggered repair.
pub fn phase_repair_policies() -> Vec<(String, RepairPolicy)> {
    let window_ticks = ChurnSchedule::symmetric(0.0).window_ticks;
    vec![
        ("none".to_string(), RepairPolicy::SweepEvery(0)),
        ("sweep".to_string(), RepairPolicy::SweepEvery(window_ticks)),
        (
            "reactive-k2".to_string(),
            RepairPolicy::Reactive { neighbors_k: 2 },
        ),
        ("on-probe".to_string(), RepairPolicy::OnProbe),
    ]
}

/// The phase diagram's successor-list axis.
pub const PHASE_SUCC_LENS: [usize; 3] = [1, 2, 4];

/// The 3-axis churn phase diagram on a pre-grown substrate: for every
/// (churn level × repair policy × successor-list length) cell, run the
/// continuous-churn engine on an owned clone of `net` flipped to
/// [`FaultModel::UnstabilizedRing`] and measure every window.
///
/// Cells are independent — each owns its clone and derives all
/// randomness from its own seed-tree child keyed by cell index — so they
/// fan out over [`Scale::thread_count`] workers with byte-identical
/// results at any thread count (`tests/parallel_determinism.rs` pins the
/// rendered CSVs).
#[allow(clippy::too_many_arguments)]
pub fn run_phase_diagram_experiment<B: OverlayBuilder + Sync + ?Sized>(
    net: &Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    scale: &Scale,
    levels: &[(String, f64, ChurnSchedule)],
    policies: &[(String, RepairPolicy)],
    succ_lens: &[usize],
    windows: usize,
) -> Result<Vec<PhaseCell>> {
    let seed = SeedTree::new(scale.seed);
    let mut meta = Vec::new();
    for (level, turnover, base_schedule) in levels {
        for (policy_name, policy) in policies {
            for &succ in succ_lens {
                let schedule = ChurnSchedule {
                    repair: policy.clone(),
                    ..base_schedule.clone()
                };
                // Per-cell seed keyed by grid position, independent of
                // how the cells are later batched onto workers.
                let run_seed = seed.child2(LBL_PHASE, meta.len() as u64);
                meta.push((
                    level.clone(),
                    *turnover,
                    policy_name.clone(),
                    succ,
                    schedule,
                    run_seed,
                ));
            }
        }
    }
    // Clones are what dominates memory (a full Network per cell), and
    // `Network` is not `Sync`, so workers cannot clone the substrate
    // themselves. Dispatching the grid one thread-budget-sized wave at a
    // time keeps at most `threads` clones alive instead of the whole
    // grid's worth — the difference between feasible and not at 10⁵
    // peers × 48 cells. Waves cost a join barrier each; cells inside a
    // wave still spread over all workers.
    let threads = scale.thread_count().max(1);
    let mut results: Vec<Result<Vec<ChurnWindowStats>>> = Vec::with_capacity(meta.len());
    for wave in meta.chunks(threads) {
        let tasks: Vec<Task<Result<Vec<ChurnWindowStats>>>> = wave
            .iter()
            .map(|(_, _, _, succ, schedule, run_seed)| {
                let mut cell_net = net.clone();
                let task_schedule = schedule.clone();
                let (succ, run_seed) = (*succ, *run_seed);
                Box::new(move || {
                    cell_net.set_fault_model(FaultModel::UnstabilizedRing);
                    cell_net.set_succ_list_len(succ);
                    run_continuous_churn(
                        &mut cell_net,
                        builder,
                        keys,
                        degrees,
                        &task_schedule,
                        windows,
                        run_seed,
                    )
                }) as Task<Result<Vec<ChurnWindowStats>>>
            })
            .collect();
        results.extend(run_tasks(threads, tasks));
    }
    meta.into_iter()
        .zip(results)
        .map(|((level, turnover, policy, succ, schedule, _), windows)| {
            Ok(PhaseCell {
                level,
                turnover,
                policy,
                succ_list_len: succ,
                schedule,
                windows: windows?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::{OscarBuilder, OscarConfig};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::GnutellaKeys;
    use oscar_mercury::{MercuryBuilder, MercuryConfig};

    #[test]
    fn growth_experiment_produces_full_series() {
        let scale = Scale::small(300, 5);
        let builder = OscarBuilder::new(OscarConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "constant",
        )
        .unwrap();
        assert_eq!(r.label, "constant");
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert_eq!(r.final_degree_load.len(), 300);
        assert!(r.final_utilization > 0.5);
        for (size, stats) in &r.cost_by_size {
            assert_eq!(stats.success_rate, 1.0, "at size {size}");
        }
    }

    #[test]
    fn churn_experiment_orders_fractions() {
        let scale = Scale::small(300, 7);
        let builder = OscarBuilder::new(OscarConfig::default());
        let rs = run_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &[0.0, 0.10, 0.33],
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
        // At the final checkpoint the ordering must match Figure 2.
        let last = |r: &ChurnResult| r.cost_by_size.last().unwrap().1.mean_cost;
        assert!(last(&rs[0]) < last(&rs[1]));
        assert!(last(&rs[1]) < last(&rs[2]));
        // All fractions keep full delivery under the stabilised ring.
        for r in &rs {
            for (_, stats) in &r.cost_by_size {
                assert_eq!(stats.success_rate, 1.0);
            }
        }
    }

    #[test]
    fn steady_churn_experiment_measures_every_window() {
        let scale = Scale::small(200, 13);
        let builder = OscarBuilder::new(OscarConfig::default());
        let schedules = standard_churn_schedules(&scale);
        assert_eq!(schedules.len(), 4);
        let rs = run_steady_churn_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            &schedules[..2],
            3,
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.windows.len(), 3);
            for w in &r.windows {
                assert!(w.queries.queries > 0, "{}: empty window", r.label);
                assert!(w.live_at_end >= r.schedule.min_live);
            }
            assert!(r.steady_mean(|w| w.queries.mean_cost) > 0.0);
        }
        // The common grown substrate means window 0 histories diverge only
        // through the engine: schedules must actually differ in intensity.
        let turnover =
            |r: &SteadyChurnResult| r.windows.iter().map(|w| w.joins + w.crashes).sum::<u64>();
        assert!(turnover(&rs[1]) > turnover(&rs[0]));
    }

    #[test]
    fn phase_diagram_covers_the_grid_under_the_unstabilized_ring() {
        let scale = Scale::small(200, 17);
        let builder = OscarBuilder::new(OscarConfig::default());
        let keys = GnutellaKeys::default();
        let degrees = ConstantDegrees::paper();
        let net = grow_steady_churn_substrate(&builder, &keys, &degrees, &scale).unwrap();
        let levels = phase_churn_levels(&scale);
        assert_eq!(levels.len(), 4);
        assert_eq!(levels.last().unwrap().1, 0.20, "ladder reaches 20%/win");
        let policies = phase_repair_policies();
        assert_eq!(policies.len(), 4);
        // A 2-level × 3-policy × 2-succ subgrid keeps the test fast.
        let cells = run_phase_diagram_experiment(
            &net,
            &builder,
            &keys,
            &degrees,
            &scale,
            &levels[..2],
            &policies,
            &[1, 4],
            2,
        )
        .unwrap();
        assert_eq!(cells.len(), 2 * 4 * 2);
        for c in &cells {
            assert_eq!(c.windows.len(), 2, "{}/{}", c.level, c.policy);
            assert_eq!(c.schedule.repair.clone(), {
                let by_name = phase_repair_policies();
                by_name.into_iter().find(|(n, _)| *n == c.policy).unwrap().1
            });
            for w in &c.windows {
                assert!(w.queries.queries > 0);
            }
        }
        // Repair accounting differentiates the policies: sweeps rewire the
        // population, reactive repairs scale with the membership events.
        let total_repair = |policy: &str, succ: usize| {
            cells
                .iter()
                .filter(|c| c.policy == policy && c.succ_list_len == succ && c.level == "2.0%/win")
                .map(|c| c.windows.iter().map(|w| w.repair_cost).sum::<u64>())
                .sum::<u64>()
        };
        assert!(
            total_repair("reactive-k2", 4) < total_repair("sweep", 4),
            "reactive repair must cost less than sweeping at 2%/win"
        );
    }

    #[test]
    fn experiments_work_with_mercury_too() {
        let scale = Scale::small(200, 9);
        let builder = MercuryBuilder::new(MercuryConfig::default());
        let r = run_growth_experiment(
            &builder,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            &scale,
            "mercury",
        )
        .unwrap();
        assert_eq!(r.cost_by_size.len(), scale.checkpoints().len());
        assert!(r.final_utilization > 0.0);
    }

    #[test]
    fn experiments_are_deterministic() {
        let scale = Scale::small(200, 11);
        let builder = OscarBuilder::new(OscarConfig::default());
        let run = || {
            run_growth_experiment(
                &builder,
                &GnutellaKeys::default(),
                &ConstantDegrees::paper(),
                &scale,
                "x",
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_utilization, b.final_utilization);
        let costs = |r: &GrowthRunResult| {
            r.cost_by_size
                .iter()
                .map(|(_, s)| s.mean_cost)
                .collect::<Vec<_>>()
        };
        assert_eq!(costs(&a), costs(&b));
    }
}
