//! Uniform output for the repro binaries: ASCII plot + Markdown table to
//! stdout, CSV to `results/`.

use oscar_analytics::{ascii, series, Series};
use std::path::PathBuf;

/// A figure report in progress.
pub struct Report {
    title: String,
    series: Vec<Series>,
    x_header: String,
    notes: Vec<String>,
}

impl Report {
    /// New report for one figure.
    pub fn new(title: impl Into<String>, x_header: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            series: Vec::new(),
            x_header: x_header.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn add_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a free-form note printed under the table.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The collected series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Where CSVs land: `$OSCAR_RESULTS_DIR` or `results/`.
    pub fn results_dir() -> PathBuf {
        std::env::var("OSCAR_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    }

    /// Prints the report (plot + table + notes) and writes `name.csv`.
    pub fn emit(&self, name: &str) -> std::io::Result<PathBuf> {
        println!("\n==== {} ====\n", self.title);
        println!("{}", ascii::plot(&self.series, 64, 16, &self.title));
        println!("{}", series::to_markdown(&self.series, &self.x_header));
        for note in &self.notes {
            println!("note: {note}");
        }
        let path = Self::results_dir().join(format!("{name}.csv"));
        series::write_csv(&self.series, &path)?;
        println!("csv: {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv_and_returns_path() {
        let _lock = crate::env_guard::lock();
        let _cleanup = crate::env_guard::RemoveOnDrop(&["OSCAR_RESULTS_DIR"]);
        let dir = std::env::temp_dir().join("oscar_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("OSCAR_RESULTS_DIR", &dir);
        let mut r = Report::new("test figure", "x");
        let mut s = Series::new("curve");
        s.push(1.0, 2.0);
        r.add_series(s);
        r.add_note("a note");
        let path = r.emit("test_out").unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("curve"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
