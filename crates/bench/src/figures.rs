//! One driver per paper figure, shared by the `repro_*` binaries and
//! `repro_all` (which reuses the heavy growth runs across figures).

use crate::experiments::{
    grow_steady_churn_substrate, phase_churn_levels, phase_repair_policies, run_churn_experiment,
    run_growth_experiment, run_phase_diagram_experiment, run_steady_churn_experiment,
    standard_churn_schedules, GrowthRunResult, PhaseCell, SteadyChurnResult, PHASE_SUCC_LENS,
};
use crate::parallel::{run_tasks, Task};
use crate::report::Report;
use crate::scale::Scale;
use oscar_analytics::{Series, Summary};
use oscar_chord::{ChordBuilder, ChordConfig};
use oscar_core::{OscarBuilder, OscarConfig};
use oscar_degree::{ConstantDegrees, DegreeDistribution, SpikyDegrees, SteppedDegrees};
use oscar_keydist::GnutellaKeys;
use oscar_mercury::{MercuryBuilder, MercuryConfig};
use oscar_types::{Result, SeedTree};

/// The three in-degree distributions of Figure 1, by paper name.
pub fn paper_degree_distributions() -> Vec<(&'static str, Box<dyn DegreeDistribution>)> {
    vec![
        ("constant", Box::new(ConstantDegrees::paper())),
        ("realistic", Box::new(SpikyDegrees::paper())),
        ("stepped", Box::new(SteppedDegrees::paper())),
    ]
}

/// Figure 1(a): the synthetic spiky node-degree pdf (model + empirical).
pub fn fig1a_report(scale: &Scale) -> Report {
    let spiky = SpikyDegrees::paper();
    let mut model = Series::new("model pdf");
    for (degree, prob) in spiky.pmf_points() {
        model.push(degree as f64, prob);
    }
    // Empirical check: histogram of 100k draws.
    let mut rng = SeedTree::new(scale.seed).child(0xA).rng();
    let draws = 100_000;
    let mut counts = std::collections::BTreeMap::new();
    let mut mean = 0.0;
    for _ in 0..draws {
        let d = oscar_degree::DegreeDistribution::sample(&spiky, &mut rng).rho_in;
        *counts.entry(d).or_insert(0u64) += 1;
        mean += d as f64 / draws as f64;
    }
    let mut empirical = Series::new("empirical (100k draws)");
    for (d, c) in counts {
        empirical.push(d as f64, c as f64 / draws as f64);
    }
    let mut report = Report::new(
        "Figure 1(a): synthetic spiky node-degree distribution (pdf)",
        "degree",
    );
    report.add_series(model);
    report.add_series(empirical);
    report.add_note(format!(
        "model mean = {:.4} (paper: 27); empirical mean over 100k draws = {mean:.3}",
        spiky.mean_degree()
    ));
    report.add_note("log-log in the paper; CSV carries raw (degree, pdf) points".to_string());
    report
}

/// The Figure 1(b)/(c) experiment bundle: Oscar under the three degree
/// distributions plus Mercury under constant degrees, all on the Gnutella
/// key distribution.
pub struct Fig1Suite {
    /// Oscar runs: constant, realistic, stepped.
    pub oscar_runs: Vec<GrowthRunResult>,
    /// Mercury run with constant degrees (E3 / E7).
    pub mercury_run: GrowthRunResult,
    /// Chord finger-table run with constant degrees (skew-oblivious
    /// control, beyond the paper).
    pub chord_run: GrowthRunResult,
}

/// Runs the full Figure 1 suite (the expensive part, reused by 1(b), 1(c),
/// E3 and E7).
///
/// The five growth runs (3× Oscar, Mercury, Chord) are independent — each
/// derives every random draw from its own `SeedTree` rooted at
/// `scale.seed` — so they fan out over up to [`Scale::thread_count`]
/// worker threads with byte-identical results in any order
/// (`tests/parallel_determinism.rs` proves it against `OSCAR_THREADS=1`).
pub fn run_fig1_suite(scale: &Scale) -> Result<Fig1Suite> {
    let mut tasks: Vec<Task<Result<GrowthRunResult>>> = Vec::new();
    for (name, degrees) in paper_degree_distributions() {
        tasks.push(Box::new(move || {
            eprintln!("[fig1] growing oscar/{name} to {}...", scale.target);
            let builder = OscarBuilder::new(OscarConfig::default());
            run_growth_experiment(
                &builder,
                &GnutellaKeys::default(),
                degrees.as_ref(),
                scale,
                name,
            )
        }));
    }
    tasks.push(Box::new(move || {
        eprintln!("[fig1] growing mercury/constant to {}...", scale.target);
        let mercury = MercuryBuilder::new(MercuryConfig::default());
        run_growth_experiment(
            &mercury,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            scale,
            "mercury-constant",
        )
    }));
    tasks.push(Box::new(move || {
        eprintln!("[fig1] growing chord/constant to {}...", scale.target);
        let chord = ChordBuilder::new(ChordConfig::default());
        run_growth_experiment(
            &chord,
            &GnutellaKeys::default(),
            &ConstantDegrees::paper(),
            scale,
            "chord-constant",
        )
    }));
    let mut runs = run_tasks(scale.thread_count(), tasks);
    let chord_run = runs.pop().expect("chord task")?;
    let mercury_run = runs.pop().expect("mercury task")?;
    let oscar_runs = runs.into_iter().collect::<Result<Vec<_>>>()?;
    Ok(Fig1Suite {
        oscar_runs,
        mercury_run,
        chord_run,
    })
}

/// Figure 1(b): relative degree load curves + degree-volume utilisation.
pub fn fig1b_report(suite: &Fig1Suite) -> Report {
    let mut report = Report::new(
        "Figure 1(b): relative degree load (actual/available in-degree, peers sorted)",
        "peer percentile",
    );
    let mut curves: Vec<(&str, &[f64])> = suite
        .oscar_runs
        .iter()
        .map(|r| (r.label.as_str(), r.final_degree_load.as_slice()))
        .collect();
    curves.push(("mercury-constant", &suite.mercury_run.final_degree_load));
    curves.push(("chord-constant", &suite.chord_run.final_degree_load));
    for (label, loads) in curves {
        let mut s = Series::new(label);
        // Downsample the sorted curve to 101 percentile points.
        let n = loads.len();
        if n == 0 {
            continue;
        }
        for pct in 0..=100usize {
            let idx = ((n - 1) * pct) / 100;
            s.push(pct as f64, loads[idx]);
        }
        report.add_series(s);
    }
    for r in &suite.oscar_runs {
        report.add_note(format!(
            "oscar/{}: degree volume utilisation = {:.1}% (paper: ~85%)",
            r.label,
            r.final_utilization * 100.0
        ));
    }
    report.add_note(format!(
        "mercury/constant: degree volume utilisation = {:.1}% (paper: ~61%)",
        suite.mercury_run.final_utilization * 100.0
    ));
    report.add_note(format!(
        "chord/constant (control): degree volume utilisation = {:.1}%",
        suite.chord_run.final_utilization * 100.0
    ));
    report
}

/// Figure 1(c): average search cost vs network size, three in-degree
/// distributions (Gnutella keys).
pub fn fig1c_report(suite: &Fig1Suite, scale: &Scale) -> Report {
    let mut report = Report::new(
        "Figure 1(c): search cost of Oscar under different in-degree distributions",
        "network size",
    );
    let figure_sizes = scale.figure_checkpoints();
    for run in &suite.oscar_runs {
        let mut s = Series::new(format!("{} in-degree", run.label));
        for (size, stats) in &run.cost_by_size {
            if figure_sizes.contains(size) {
                s.push(*size as f64, stats.mean_cost);
            }
        }
        report.add_series(s);
    }
    // The paper's claim: the three curves are nearly identical.
    let finals: Vec<f64> = suite
        .oscar_runs
        .iter()
        .filter_map(|r| r.cost_by_size.last().map(|(_, s)| s.mean_cost))
        .collect();
    let spread = Summary::of(&finals);
    report.add_note(format!(
        "final-size costs: mean {:.2}, max-min spread {:.2} (paper: curves nearly identical)",
        spread.mean,
        spread.max - spread.min
    ));
    report
}

/// E7: Oscar vs Mercury search cost on the skewed key space.
pub fn mercury_compare_report(suite: &Fig1Suite, scale: &Scale) -> Report {
    let mut report = Report::new(
        "Oscar vs Mercury: search cost on the Gnutella key distribution (constant degrees)",
        "network size",
    );
    let figure_sizes = scale.figure_checkpoints();
    let oscar_constant = suite
        .oscar_runs
        .iter()
        .find(|r| r.label == "constant")
        .expect("constant run present");
    for (label, run) in [
        ("oscar", oscar_constant),
        ("mercury", &suite.mercury_run),
        ("chord-fingers", &suite.chord_run),
    ] {
        let mut s = Series::new(label);
        for (size, stats) in &run.cost_by_size {
            if figure_sizes.contains(size) {
                s.push(*size as f64, stats.mean_cost);
            }
        }
        report.add_series(s);
    }
    let last = |r: &GrowthRunResult| {
        r.cost_by_size
            .last()
            .map(|(_, s)| s.mean_cost)
            .unwrap_or(0.0)
    };
    report.add_note(format!(
        "final size: oscar {:.2} vs mercury {:.2} (paper [8]: Oscar significantly outperforms Mercury)",
        last(oscar_constant),
        last(&suite.mercury_run)
    ));
    report.add_note(format!(
        "chord-fingers control: {:.2} — key-space-metric fingers collapse under skew (utilisation {:.1}%)",
        last(&suite.chord_run),
        suite.chord_run.final_utilization * 100.0
    ));
    report
}

/// Figure 2(a)/(b): search cost under churn for a given degree
/// distribution.
pub fn fig2_report(
    scale: &Scale,
    degrees: &dyn DegreeDistribution,
    degree_label: &str,
) -> Result<Report> {
    let keys = GnutellaKeys::default();
    let builder = OscarBuilder::new(OscarConfig::default());
    eprintln!(
        "[fig2/{degree_label}] growing to {} with churn clones...",
        scale.target
    );
    let results = run_churn_experiment(&builder, &keys, degrees, scale, &[0.0, 0.10, 0.33])?;
    let mut report = Report::new(
        format!(
            "Figure 2: churn simulation (Gnutella keys; {degree_label} in-degree distribution)"
        ),
        "network size",
    );
    let figure_sizes = scale.figure_checkpoints();
    for r in &results {
        let label = if r.fraction == 0.0 {
            "no faults".to_string()
        } else {
            format!("{:.0}% crashes", r.fraction * 100.0)
        };
        let mut s = Series::new(label);
        for (size, stats) in &r.cost_by_size {
            if figure_sizes.contains(size) {
                s.push(*size as f64, stats.mean_cost);
            }
        }
        report.add_series(s);
        let (_, last) = r.cost_by_size.last().expect("non-empty");
        // mean_cost/mean_hops average successful queries; mean_wasted
        // averages all issued queries (failures waste traffic too), so the
        // three are reported side by side, not as a sum.
        report.add_note(format!(
            "{:.0}% crashes at final size: successful-query cost {:.2} (hops {:.2}), \
             wasted/query incl. failures {:.2}, success {:.1}%",
            r.fraction * 100.0,
            last.mean_cost,
            last.mean_hops,
            last.mean_wasted,
            last.success_rate * 100.0
        ));
    }
    Ok(report)
}

/// Runs the steady-state continuous-churn experiment (Oscar, Gnutella
/// keys, constant degrees) over the standard churn-level ladder.
pub fn run_steady_churn_suite(scale: &Scale, windows: usize) -> Result<Vec<SteadyChurnResult>> {
    let builder = OscarBuilder::new(OscarConfig::default());
    let schedules = standard_churn_schedules(scale);
    eprintln!(
        "[churn-engine] growing to {} then running {} windows x {} churn levels...",
        scale.target,
        windows,
        schedules.len()
    );
    run_steady_churn_experiment(
        &builder,
        &GnutellaKeys::default(),
        &ConstantDegrees::paper(),
        scale,
        &schedules,
        windows,
    )
}

/// The steady-state churn figures: search cost, wasted traffic and live
/// population per measurement window, one curve per churn level. Returned
/// as `(csv_name, report)` pairs for the emitters.
pub fn steady_churn_reports(results: &[SteadyChurnResult]) -> Vec<(&'static str, Report)> {
    let mut cost = Report::new(
        "Continuous churn: successful-query search cost per steady-state window",
        "window",
    );
    let mut waste = Report::new(
        "Continuous churn: wasted messages per query (incl. failures) per window",
        "window",
    );
    let mut population = Report::new("Continuous churn: live population per window", "window");
    let mut stderr = Report::new(
        "Continuous churn: standard error of mean cost per window (batch precision)",
        "window",
    );
    for r in results {
        let mut cost_s = Series::new(r.label.clone());
        let mut waste_s = Series::new(r.label.clone());
        let mut pop_s = Series::new(r.label.clone());
        let mut se_s = Series::new(r.label.clone());
        for w in &r.windows {
            let x = w.window as f64;
            cost_s.push(x, w.queries.mean_cost);
            waste_s.push(x, w.queries.mean_wasted);
            pop_s.push(x, w.live_at_end as f64);
            se_s.push(x, w.queries.se_cost);
        }
        cost.add_series(cost_s);
        waste.add_series(waste_s);
        population.add_series(pop_s);
        stderr.add_series(se_s);
        cost.add_note(format!(
            "{}: steady-state mean cost {:.2}, wasted/query {:.2}, success {:.1}%, live {:.0}",
            r.label,
            r.steady_mean(|w| w.queries.mean_cost),
            r.steady_mean(|w| w.queries.mean_wasted),
            r.steady_mean(|w| w.queries.success_rate) * 100.0,
            r.steady_mean(|w| w.live_at_end as f64),
        ));
    }
    vec![
        ("churn_steady_cost", cost),
        ("churn_steady_waste", waste),
        ("churn_steady_population", population),
        ("churn_steady_cost_stderr", stderr),
    ]
}

/// Runs the full churn phase diagram (Oscar, Gnutella keys, constant
/// degrees): the default 4-level × 4-policy × 3-succ-length grid on one
/// grown substrate, under the unstabilised ring.
pub fn run_phase_suite(scale: &Scale, windows: usize) -> Result<Vec<PhaseCell>> {
    let builder = OscarBuilder::new(OscarConfig::default());
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    let levels = phase_churn_levels(scale);
    let policies = phase_repair_policies();
    eprintln!(
        "[phase] growing to {} then sweeping {} churn levels x {} repair policies x {} succ \
         lengths ({} windows each)...",
        scale.target,
        levels.len(),
        policies.len(),
        PHASE_SUCC_LENS.len(),
        windows,
    );
    let net = grow_steady_churn_substrate(&builder, &keys, &degrees, scale)?;
    run_phase_diagram_experiment(
        &net,
        &builder,
        &keys,
        &degrees,
        scale,
        &levels,
        &policies,
        &PHASE_SUCC_LENS,
        windows,
    )
}

/// The phase-diagram figures: steady-state delivery, search cost, wasted
/// traffic and repair traffic as functions of churn level, one curve per
/// (repair policy, successor-list length). Returned as
/// `(csv_name, report)` pairs for the emitters.
pub fn phase_reports(cells: &[PhaseCell]) -> Vec<(&'static str, Report)> {
    let mut success = Report::new(
        "Churn phase diagram: steady-state delivery rate (unstabilised ring)",
        "churn %/window",
    );
    let mut cost = Report::new(
        "Churn phase diagram: steady-state successful-query search cost",
        "churn %/window",
    );
    let mut waste = Report::new(
        "Churn phase diagram: steady-state wasted messages per query",
        "churn %/window",
    );
    let mut repair = Report::new(
        "Churn phase diagram: steady-state repair messages per window",
        "churn %/window",
    );
    // One series per (policy, succ) pair, points ordered by churn level —
    // iterate combos in first-appearance order so the CSV layout is
    // stable whatever grid subset produced the cells.
    let mut combos: Vec<(String, usize)> = Vec::new();
    for c in cells {
        let combo = (c.policy.clone(), c.succ_list_len);
        if !combos.contains(&combo) {
            combos.push(combo);
        }
    }
    for (policy, succ) in combos {
        let label = format!("{policy}/succ={succ}");
        let mut success_s = Series::new(label.clone());
        let mut cost_s = Series::new(label.clone());
        let mut waste_s = Series::new(label.clone());
        let mut repair_s = Series::new(label.clone());
        let mut cliff: Option<(f64, f64)> = None;
        for c in cells
            .iter()
            .filter(|c| c.policy == policy && c.succ_list_len == succ)
        {
            let x = c.turnover * 100.0;
            let delivery = c.steady_mean(|w| w.queries.success_rate);
            success_s.push(x, delivery);
            cost_s.push(x, c.steady_mean(|w| w.queries.mean_cost));
            waste_s.push(x, c.steady_mean(|w| w.queries.mean_wasted));
            repair_s.push(x, c.steady_mean(|w| w.repair_cost as f64));
            if cliff.is_none() && delivery < 0.9 {
                cliff = Some((x, delivery));
            }
        }
        success.add_note(match cliff {
            Some((x, d)) => format!(
                "{label}: delivery cliff at {x:.0}%/win (steady success {:.1}%)",
                d * 100.0
            ),
            None => format!("{label}: no cliff — delivery >= 90% across the swept range"),
        });
        success.add_series(success_s);
        cost.add_series(cost_s);
        waste.add_series(waste_s);
        repair.add_series(repair_s);
    }
    vec![
        ("churn_phase_success", success),
        ("churn_phase_cost", cost),
        ("churn_phase_waste", waste),
        ("churn_phase_repair", repair),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_report_has_model_and_empirical() {
        let report = fig1a_report(&Scale::small(100, 1));
        assert_eq!(report.series().len(), 2);
        // model pdf sums to ~1 over its support
        let total: f64 = report.series()[0].points.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig1_suite_smoke_at_tiny_scale() {
        let scale = Scale::small(150, 3);
        let suite = run_fig1_suite(&scale).unwrap();
        assert_eq!(suite.oscar_runs.len(), 3);
        let b = fig1b_report(&suite);
        assert_eq!(b.series().len(), 5);
        let c = fig1c_report(&suite, &scale);
        assert_eq!(c.series().len(), 3);
        let m = mercury_compare_report(&suite, &scale);
        assert_eq!(m.series().len(), 3);
    }

    #[test]
    fn fig2_smoke_at_tiny_scale() {
        let scale = Scale::small(150, 5);
        let report = fig2_report(&scale, &ConstantDegrees::paper(), "constant").unwrap();
        assert_eq!(report.series().len(), 3);
    }

    #[test]
    fn phase_suite_smoke_at_tiny_scale() {
        let scale = Scale::small(120, 19);
        let cells = run_phase_suite(&scale, 2).unwrap();
        assert_eq!(cells.len(), 4 * 4 * 3);
        let reports = phase_reports(&cells);
        assert_eq!(reports.len(), 4);
        for (name, report) in &reports {
            // One curve per (policy, succ) combo, one point per level.
            assert_eq!(report.series().len(), 12, "{name}");
            for s in report.series() {
                assert_eq!(s.points.len(), 4, "{name}/{}", s.label);
            }
        }
    }

    #[test]
    fn steady_churn_suite_smoke_at_tiny_scale() {
        let scale = Scale::small(150, 7);
        let results = run_steady_churn_suite(&scale, 2).unwrap();
        assert_eq!(results.len(), 4);
        let reports = steady_churn_reports(&results);
        assert_eq!(reports.len(), 4);
        for (name, report) in &reports {
            assert_eq!(report.series().len(), 4, "{name}");
            for s in report.series() {
                assert_eq!(s.points.len(), 2, "{name}/{}", s.label);
            }
        }
    }
}
