//! Seed-label registry invariants for the simulator's derivation scopes.
//!
//! `LBL_REWIRE` exists in two scopes (`sim_overlay` = 11,
//! `sim_churn_engine` = 7). That is deliberate — the scopes root at
//! different `SeedTree` nodes — but the values are part of the
//! reproduction contract: every committed CSV and `BENCH_*.json`
//! baseline was produced through these exact labels, so this test pins
//! them and proves the two rewire streams never collapsed onto one
//! another.

use oscar_types::labels::{sim_churn_engine, sim_overlay};
use oscar_types::SeedTree;
use rand::RngCore;

/// The registry values the committed baselines were generated with.
#[test]
fn rewire_labels_are_pinned() {
    assert_eq!(sim_overlay::LBL_REWIRE, 11);
    assert_eq!(sim_churn_engine::LBL_REWIRE, 7);
}

/// The two rewire streams are (and remain) distinct: even when both
/// scopes happen to share a root seed and a round counter, the derived
/// RNG streams diverge because the labels differ.
#[test]
fn rewire_streams_are_distinct() {
    for root in [0u64, 42, 0xA5A5_5A5A] {
        let tree = SeedTree::new(root);
        for round in 0..4u64 {
            let overlay_seed = tree.child2(sim_overlay::LBL_REWIRE, round).seed();
            let churn_seed = tree.child2(sim_churn_engine::LBL_REWIRE, round).seed();
            assert_ne!(
                overlay_seed, churn_seed,
                "rewire streams collided at root={root} round={round}"
            );
            let mut a = tree.child2(sim_overlay::LBL_REWIRE, round).rng();
            let mut b = tree.child2(sim_churn_engine::LBL_REWIRE, round).rng();
            let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_ne!(draws_a, draws_b);
        }
    }
}

/// No two labels within one derivation scope share a value (the lint
/// enforces this statically; this is the runtime mirror for the two
/// scopes that motivated the registry).
#[test]
fn scope_values_are_unique() {
    let overlay = [
        sim_overlay::LBL_GROW,
        sim_overlay::LBL_REWIRE,
        sim_overlay::LBL_QUERY,
        sim_overlay::LBL_CHURN,
        sim_overlay::LBL_CONTINUOUS,
    ];
    let churn = [
        sim_churn_engine::LBL_JOIN_GAPS,
        sim_churn_engine::LBL_CRASH_GAPS,
        sim_churn_engine::LBL_DEPART_GAPS,
        sim_churn_engine::LBL_JOIN,
        sim_churn_engine::LBL_CRASH_PICK,
        sim_churn_engine::LBL_DEPART_PICK,
        sim_churn_engine::LBL_REWIRE,
        sim_churn_engine::LBL_MEASURE,
        sim_churn_engine::LBL_REPAIR,
    ];
    for scope in [&overlay[..], &churn[..]] {
        let mut sorted = scope.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "duplicate label value in scope");
    }
}
