//! Per-peer simulator state.

use oscar_degree::DegreeCaps;
use oscar_types::Id;

/// Dense index of a peer inside [`crate::Network`].
///
/// Indices are stable for the lifetime of the network (peers are never
/// compacted away; crashes only flip liveness), so they can be stored in
/// adjacency lists without generation counters.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerIdx(pub u32);

impl PeerIdx {
    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Why a link attempt was rejected.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// Target's `ρ_in_max` budget is exhausted — the peer *refuses*, which
    /// is the heterogeneity mechanism of the paper (not an error in the
    /// simulation; callers retry elsewhere).
    TargetFull,
    /// Source's `ρ_out_max` budget is exhausted.
    SourceFull,
    /// Self-links are meaningless.
    SelfLink,
    /// The link already exists.
    Duplicate,
    /// Either endpoint is dead.
    Dead,
}

/// Simulator state of one peer.
#[derive(Clone, Debug)]
pub struct Peer {
    /// Position on the identifier ring.
    pub id: Id,
    /// Willingness budget: max in/out long-range degree.
    pub caps: DegreeCaps,
    /// Liveness flag; crashes flip this to `false`.
    pub alive: bool,
    /// Outgoing long-range links (targets).
    pub long_out: Vec<PeerIdx>,
    /// Incoming long-range links (sources); kept for undirected random
    /// walks and in-degree accounting.
    pub long_in: Vec<PeerIdx>,
}

impl Peer {
    /// Fresh, live peer with no long-range links.
    pub fn new(id: Id, caps: DegreeCaps) -> Self {
        Peer {
            id,
            caps,
            alive: true,
            long_out: Vec::with_capacity(caps.rho_out.min(64) as usize),
            long_in: Vec::with_capacity(caps.rho_in.min(64) as usize),
        }
    }

    /// Current long-range in-degree.
    #[inline]
    pub fn in_degree(&self) -> u32 {
        self.long_in.len() as u32
    }

    /// Current long-range out-degree.
    #[inline]
    pub fn out_degree(&self) -> u32 {
        self.long_out.len() as u32
    }

    /// Whether this peer would accept one more incoming link.
    #[inline]
    pub fn accepts_in(&self) -> bool {
        self.alive && self.in_degree() < self.caps.rho_in
    }

    /// Whether this peer may open one more outgoing link.
    #[inline]
    pub fn can_open_out(&self) -> bool {
        self.alive && self.out_degree() < self.caps.rho_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_state() {
        let p = Peer::new(Id::new(7), DegreeCaps::symmetric(3));
        assert!(p.alive);
        assert_eq!(p.in_degree(), 0);
        assert_eq!(p.out_degree(), 0);
        assert!(p.accepts_in());
        assert!(p.can_open_out());
    }

    #[test]
    fn budgets_gate_acceptance() {
        let mut p = Peer::new(
            Id::new(7),
            DegreeCaps {
                rho_in: 1,
                rho_out: 2,
            },
        );
        p.long_in.push(PeerIdx(9));
        assert!(!p.accepts_in(), "in budget of 1 exhausted");
        p.long_out.push(PeerIdx(1));
        assert!(p.can_open_out(), "out budget of 2 has room");
        p.long_out.push(PeerIdx(2));
        assert!(!p.can_open_out());
    }

    #[test]
    fn dead_peer_participates_in_nothing() {
        let mut p = Peer::new(Id::new(7), DegreeCaps::symmetric(5));
        p.alive = false;
        assert!(!p.accepts_in());
        assert!(!p.can_open_out());
    }

    #[test]
    fn peer_idx_roundtrip() {
        assert_eq!(PeerIdx(42).as_usize(), 42);
    }
}
