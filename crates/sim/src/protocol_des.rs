//! Discrete-event driver for the `oscar-protocol` peer machines.
//!
//! The thin adapter that runs [`PeerMachine`]s in virtual time: every
//! [`Outbound`] becomes an envelope on the simulator's [`EventQueue`]
//! with one tick of delivery latency, and a delivery to a missing peer
//! bounces back to the sender as `on_delivery_failure` — the identical
//! failure surface the threaded actor runtime (`oscar-runtime`)
//! presents, which is what makes the two drivers interchangeable.
//!
//! This driver is intentionally sequential and deterministic: it is the
//! reference world for the cross-driver equivalence test, and doubles
//! as a protocol debugging harness (single-stepped, inspectable,
//! reproducible).

use crate::events::EventQueue;
use oscar_protocol::machine::peer_seed;
use oscar_protocol::{Command, Message, Outbound, PeerConfig, PeerMachine, ProtocolEvent};
use oscar_types::labels::sim_protocol_des::LBL_CMD;
use oscar_types::{Id, SeedTree};
use std::collections::BTreeMap;

/// A protocol message in flight through virtual time.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending peer.
    pub from: Id,
    /// Destination peer.
    pub to: Id,
    /// Payload.
    pub msg: Message,
}

/// The DES world: peer machines plus one event queue of envelopes.
pub struct DesDriver {
    peers: BTreeMap<Id, PeerMachine>,
    queue: EventQueue<Envelope>,
    seed: u64,
    peer_cfg: PeerConfig,
    events: Vec<ProtocolEvent>,
    cmd_nonce: u64,
    delivered: u64,
    failed: u64,
}

impl DesDriver {
    /// An empty world rooted at `seed` (same peer-seed derivation as the
    /// actor runtime).
    pub fn new(seed: u64, peer_cfg: PeerConfig) -> Self {
        DesDriver {
            peers: BTreeMap::new(),
            queue: EventQueue::new(),
            seed,
            peer_cfg,
            events: Vec::new(),
            cmd_nonce: 0,
            delivered: 0,
            failed: 0,
        }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers a fresh solo peer with the canonical derived seed.
    pub fn spawn_peer(&mut self, id: Id) {
        self.peers.insert(
            id,
            PeerMachine::new(id, peer_seed(self.seed, id), self.peer_cfg.clone()),
        );
    }

    /// Registers a pre-built machine.
    pub fn spawn_machine(&mut self, machine: PeerMachine) {
        self.peers.insert(machine.id(), machine);
    }

    /// Removes a peer outright (a crash). Mail already queued to it will
    /// bounce at delivery time.
    pub fn remove_peer(&mut self, id: Id) -> bool {
        self.peers.remove(&id).is_some()
    }

    /// Live peer ids, sorted.
    pub fn peer_ids(&self) -> Vec<Id> {
        self.peers.keys().copied().collect()
    }

    /// Read access to one peer's machine.
    pub fn peer(&self, id: Id) -> Option<&PeerMachine> {
        self.peers.get(&id)
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivery failures so far.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Hands a command to one peer and queues its replies.
    pub fn inject(&mut self, id: Id, cmd: Command) -> bool {
        // Fresh per-command stream, mirroring the runtime's inject nonce.
        self.cmd_nonce += 1;
        // lint:allow(rng-discipline, per-command stream keyed by nonce — mirrors the runtime driver byte-for-byte)
        let mut rng = SeedTree::new(self.seed)
            .child2(LBL_CMD, self.cmd_nonce)
            .rng();
        let Some(peer) = self.peers.get_mut(&id) else {
            return false;
        };
        let outs = peer.on_command(cmd, &mut rng);
        self.events.extend(peer.drain_events());
        self.enqueue_all(id, outs);
        true
    }

    /// Delivers queued envelopes until the world goes silent (the DES
    /// analogue of the runtime's `quiesce`). Returns messages delivered.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while let Some((_, env)) = self.queue.pop() {
            n += 1;
            self.deliver(env);
        }
        self.delivered += n;
        n
    }

    /// Spawns `joiner`, joins it through `contact`, and settles the
    /// splice. Returns true iff the join completed.
    pub fn join_and_wait(&mut self, joiner: Id, contact: Id) -> bool {
        self.spawn_peer(joiner);
        self.inject(joiner, Command::Join { contact });
        self.run_until_idle();
        let done = self
            .events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::JoinCompleted { peer } if *peer == joiner));
        done
    }

    /// Drains protocol milestones observed since the last drain.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    fn enqueue_all(&mut self, from: Id, outs: Vec<Outbound>) {
        for o in outs {
            // One tick of delivery latency per message.
            self.queue.schedule_in(
                1,
                Envelope {
                    from,
                    to: o.to,
                    msg: o.msg,
                },
            );
        }
    }

    fn deliver(&mut self, env: Envelope) {
        self.cmd_nonce += 1;
        if let Some(peer) = self.peers.get_mut(&env.to) {
            // lint:allow(rng-discipline, per-delivery stream keyed by nonce — mirrors the runtime driver byte-for-byte)
            let mut rng = SeedTree::new(self.seed)
                .child2(LBL_CMD, self.cmd_nonce)
                .rng();
            let outs = peer.on_message(env.from, env.msg, &mut rng);
            self.events.extend(peer.drain_events());
            self.enqueue_all(env.to, outs);
        } else {
            // Bounce: the sender learns about the corpse, exactly like the
            // actor runtime's failed send.
            self.failed += 1;
            let Some(sender) = self.peers.get_mut(&env.from) else {
                return; // both ends gone; the message evaporates
            };
            let outs = sender.on_delivery_failure(env.to, env.msg);
            self.events.extend(sender.drain_events());
            self.enqueue_all(env.from, outs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(seed: u64) -> DesDriver {
        DesDriver::new(seed, PeerConfig::default())
    }

    #[test]
    fn joins_splice_the_virtual_time_ring() {
        let mut des = driver(42);
        let ids: Vec<Id> = [7u64, 900, 100, 300, 550]
            .iter()
            .map(|&i| Id::new(i))
            .collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]), "join {id:?}");
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for (k, &id) in sorted.iter().enumerate() {
            let succ = sorted[(k + 1) % sorted.len()];
            assert_eq!(des.peer(id).unwrap().succs()[0], succ);
        }
    }

    #[test]
    fn queries_resolve_and_report_through_virtual_time() {
        let mut des = driver(9);
        let ids: Vec<Id> = (1..=10u64).map(|i| Id::new(i * 1_000)).collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]));
        }
        for &id in &ids {
            des.inject(id, Command::BuildLinks { walks: 2 });
        }
        des.run_until_idle();
        des.drain_events();
        des.inject(
            ids[0],
            Command::StartQuery {
                qid: 77,
                key: Id::new(4_500),
            },
        );
        des.run_until_idle();
        let report = des
            .drain_events()
            .into_iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r),
                _ => None,
            })
            .expect("query completed");
        assert!(report.success);
        assert_eq!(report.dest, Some(Id::new(5_000)));
    }

    #[test]
    fn removed_peer_bounces_mail_to_sender() {
        let mut des = driver(5);
        let ids: Vec<Id> = (1..=6u64).map(|i| Id::new(i * 100)).collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]));
        }
        assert!(des.remove_peer(Id::new(300)));
        des.drain_events();
        des.inject(
            Id::new(100),
            Command::StartQuery {
                qid: 1,
                key: Id::new(250),
            },
        );
        des.run_until_idle();
        let report = des
            .drain_events()
            .into_iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r),
                _ => None,
            })
            .expect("query must terminate");
        assert!(report.wasted > 0, "corpse probe must be charged");
        assert!(des.failed() > 0);
    }
}
