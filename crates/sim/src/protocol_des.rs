//! Discrete-event driver for the `oscar-protocol` peer machines.
//!
//! The thin adapter that runs [`PeerMachine`]s in virtual time: every
//! [`Outbound`] becomes an envelope on the simulator's [`EventQueue`]
//! with one tick of delivery latency, and a delivery to a missing peer
//! bounces back to the sender as `on_delivery_failure` — the identical
//! failure surface the threaded actor runtime (`oscar-runtime`)
//! presents, which is what makes the two drivers interchangeable.
//!
//! This driver is intentionally sequential and deterministic: it is the
//! reference world for the cross-driver equivalence test, and doubles
//! as a protocol debugging harness (single-stepped, inspectable,
//! reproducible).

use crate::events::EventQueue;
use oscar_protocol::machine::peer_seed;
use oscar_protocol::{
    Command, FaultPlan, Message, Outbound, PeerConfig, PeerMachine, ProtocolDriver, ProtocolEvent,
};
use oscar_types::labels::sim_protocol_des::LBL_CMD;
use oscar_types::{Id, SeedTree};
use std::collections::BTreeMap;

/// A protocol message in flight through virtual time.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending peer.
    pub from: Id,
    /// Destination peer.
    pub to: Id,
    /// Payload.
    pub msg: Message,
}

/// The DES world: peer machines plus one event queue of envelopes.
pub struct DesDriver {
    peers: BTreeMap<Id, PeerMachine>,
    queue: EventQueue<Envelope>,
    seed: u64,
    peer_cfg: PeerConfig,
    plan: FaultPlan,
    events: Vec<ProtocolEvent>,
    cmd_nonce: u64,
    /// Current timer round (virtual failure-detection time); advanced
    /// only at quiescent points, where all in-flight loss is final.
    round: u64,
    sent: u64,
    delivered: u64,
    bounced: u64,
    dropped: u64,
    duplicated: u64,
    /// Lifetime count of [`ProtocolEvent::Fault`] occurrences — unlike
    /// drained events this never resets, so harnesses can gate a whole
    /// run on it staying zero.
    faults: u64,
}

impl DesDriver {
    /// An empty world rooted at `seed` (same peer-seed derivation as the
    /// actor runtime), with the reliable fault plan.
    pub fn new(seed: u64, peer_cfg: PeerConfig) -> Self {
        Self::new_with_faults(seed, peer_cfg, FaultPlan::reliable())
    }

    /// An empty world whose every send is subjected to `plan` at the
    /// driver's single routing point (`DesDriver::enqueue_all`).
    pub fn new_with_faults(seed: u64, peer_cfg: PeerConfig, plan: FaultPlan) -> Self {
        DesDriver {
            peers: BTreeMap::new(),
            queue: EventQueue::new(),
            seed,
            peer_cfg,
            plan,
            events: Vec::new(),
            cmd_nonce: 0,
            round: 0,
            sent: 0,
            delivered: 0,
            bounced: 0,
            dropped: 0,
            duplicated: 0,
            faults: 0,
        }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers a fresh solo peer with the canonical derived seed.
    pub fn spawn_peer(&mut self, id: Id) {
        self.peers.insert(
            id,
            PeerMachine::new(id, peer_seed(self.seed, id), self.peer_cfg.clone()),
        );
    }

    /// Registers a pre-built machine.
    pub fn spawn_machine(&mut self, machine: PeerMachine) {
        self.peers.insert(machine.id(), machine);
    }

    /// Removes a peer outright (a crash). Mail already queued to it will
    /// bounce at delivery time.
    pub fn remove_peer(&mut self, id: Id) -> bool {
        self.peers.remove(&id).is_some()
    }

    /// Live peer ids, sorted.
    pub fn peer_ids(&self) -> Vec<Id> {
        self.peers.keys().copied().collect()
    }

    /// Read access to one peer's machine.
    pub fn peer(&self, id: Id) -> Option<&PeerMachine> {
        self.peers.get(&id)
    }

    /// Envelopes handed to the transport so far (fault copies included).
    /// At any quiescent point `sent == delivered + dropped + bounced`.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Envelopes actually handled by a live destination machine.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Sends to missing peers returned to the sender as
    /// `on_delivery_failure` (the instant-bounce crash model).
    pub fn bounced(&self) -> u64 {
        self.bounced
    }

    /// Envelopes silently discarded: fault-plan drops, plus sends to
    /// missing peers under a blackhole plan.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies injected by the fault plan (each also counts in
    /// `sent`, and lands in `delivered`/`dropped`/`bounced` like any
    /// other envelope).
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// The current timer round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// [`ProtocolEvent::Fault`] occurrences since the driver was built
    /// (a lifetime counter, unaffected by [`DesDriver::drain_events`]).
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Absorbs a machine's freshly drained events into the driver's
    /// buffer, bumping the lifetime fault counter on the way.
    fn absorb_events(&mut self, evs: Vec<ProtocolEvent>) {
        self.faults += evs
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::Fault { .. }))
            .count() as u64;
        self.events.extend(evs);
    }

    /// Hands a command to one peer and queues its replies.
    pub fn inject(&mut self, id: Id, cmd: Command) -> bool {
        // Fresh per-command stream, mirroring the runtime's inject nonce.
        self.cmd_nonce += 1;
        // lint:allow(rng-discipline, per-command stream keyed by nonce — mirrors the runtime driver byte-for-byte)
        let mut rng = SeedTree::new(self.seed)
            .child2(LBL_CMD, self.cmd_nonce)
            .rng();
        let Some(peer) = self.peers.get_mut(&id) else {
            return false;
        };
        let outs = peer.on_command(cmd, &mut rng);
        let evs = peer.drain_events();
        self.absorb_events(evs);
        self.enqueue_all(id, outs);
        true
    }

    /// Delivers queued envelopes until the world goes silent (the DES
    /// analogue of the runtime's `quiesce`). Returns envelopes processed
    /// (delivered or bounced or evaporated — see the counters for the
    /// breakdown).
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while let Some((_, env)) = self.queue.pop() {
            n += 1;
            self.deliver(env);
        }
        n
    }

    /// The earliest pending deadline across all machines, if any
    /// operation anywhere is still awaiting completion.
    pub fn next_timer_round(&self) -> Option<u64> {
        self.peers.values().filter_map(|m| m.next_deadline()).min()
    }

    /// Advances the timer round to the earliest pending deadline and
    /// ticks every machine whose deadline has come due; false when no
    /// machine is waiting. Call only at quiescent points (empty queue):
    /// there, all in-flight loss is final, so an expired deadline is a
    /// genuine loss — never a message still in the queue.
    pub fn tick_timers(&mut self) -> bool {
        let Some(min) = self.next_timer_round() else {
            return false;
        };
        self.round = self.round.max(min);
        let now = self.round;
        let due: Vec<Id> = self
            .peers
            .iter()
            .filter(|(_, m)| m.next_deadline().is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.inject(id, Command::TimerTick { now });
        }
        true
    }

    /// Alternates [`DesDriver::run_until_idle`] with timer rounds until
    /// every pending operation resolved (completion, retry success, or
    /// graceful give-up) or `max_rounds` timer rounds elapsed. Returns
    /// envelopes processed.
    pub fn run_until_settled(&mut self, max_rounds: u64) -> u64 {
        let mut n = self.run_until_idle();
        for _ in 0..max_rounds {
            if !self.tick_timers() {
                break;
            }
            n += self.run_until_idle();
        }
        n
    }

    /// Advances the virtual clock to at least `round`: delivers all
    /// queued envelopes, then fires every timer deadline up to `round`
    /// (each followed by the deliveries it provokes). Deadlines beyond
    /// `round` stay pending — they belong to a later slice of time.
    pub fn advance_to(&mut self, round: u64) {
        self.run_until_idle();
        while self.next_timer_round().is_some_and(|d| d <= round) {
            self.tick_timers();
            self.run_until_idle();
        }
        self.round = self.round.max(round);
    }

    /// Spawns `joiner`, joins it through `contact`, and settles the
    /// splice. Returns true iff the join completed.
    pub fn join_and_wait(&mut self, joiner: Id, contact: Id) -> bool {
        self.spawn_peer(joiner);
        self.inject(joiner, Command::Join { contact });
        self.run_until_idle();
        let done = self
            .events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::JoinCompleted { peer } if *peer == joiner));
        done
    }

    /// Drains protocol milestones observed since the last drain.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// The driver's single routing point: every outbound passes through
    /// the fault plan here (the runtime's analogue is `Shared::send`).
    fn enqueue_all(&mut self, from: Id, outs: Vec<Outbound>) {
        for o in outs {
            self.sent += 1;
            let fate = self.plan.decide(from, o.to, &o.msg);
            if fate.drop {
                self.dropped += 1;
                continue;
            }
            if fate.duplicate {
                self.sent += 1;
                self.duplicated += 1;
                // The copy trails the original by one extra tick.
                self.queue.schedule_in(
                    2 + fate.extra_delay,
                    Envelope {
                        from,
                        to: o.to,
                        msg: o.msg.clone(),
                    },
                );
            }
            // One tick of delivery latency per message, plus jitter.
            self.queue.schedule_in(
                1 + fate.extra_delay,
                Envelope {
                    from,
                    to: o.to,
                    msg: o.msg,
                },
            );
        }
    }

    fn deliver(&mut self, env: Envelope) {
        self.cmd_nonce += 1;
        if let Some(peer) = self.peers.get_mut(&env.to) {
            self.delivered += 1;
            // lint:allow(rng-discipline, per-delivery stream keyed by nonce — mirrors the runtime driver byte-for-byte)
            let mut rng = SeedTree::new(self.seed)
                .child2(LBL_CMD, self.cmd_nonce)
                .rng();
            let outs = peer.on_message(env.from, env.msg, &mut rng);
            let evs = peer.drain_events();
            self.absorb_events(evs);
            self.enqueue_all(env.to, outs);
        } else if self.plan.blackhole_on_crash() {
            // The realistic crash model: the send vanishes; only the
            // sender's timers can notice.
            self.dropped += 1;
        } else {
            // Bounce: the sender learns about the corpse, exactly like the
            // actor runtime's failed send.
            self.bounced += 1;
            let Some(sender) = self.peers.get_mut(&env.from) else {
                return; // both ends gone; the message evaporates
            };
            let outs = sender.on_delivery_failure(env.to, env.msg);
            let evs = sender.drain_events();
            self.absorb_events(evs);
            self.enqueue_all(env.from, outs);
        }
    }
}

/// The DES as a generic machine host: virtual timer rounds are the
/// round counter, so the churn engine's Poisson schedule lands on the
/// same clock the retry timers use.
impl ProtocolDriver for DesDriver {
    fn spawn_peer(&mut self, id: Id) {
        if !self.peers.contains_key(&id) {
            DesDriver::spawn_peer(self, id);
        }
    }

    fn remove_peer(&mut self, id: Id) {
        DesDriver::remove_peer(self, id);
    }

    fn inject(&mut self, id: Id, cmd: Command) {
        DesDriver::inject(self, id, cmd);
    }

    fn settle(&mut self, max_rounds: u64) -> u64 {
        self.run_until_idle();
        let mut rounds = 0;
        while rounds < max_rounds && self.tick_timers() {
            self.run_until_idle();
            rounds += 1;
        }
        rounds
    }

    fn advance_to(&mut self, round: u64) {
        DesDriver::advance_to(self, round);
    }

    fn round(&self) -> u64 {
        DesDriver::round(self)
    }

    fn peer_ids(&self) -> Vec<Id> {
        DesDriver::peer_ids(self)
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        DesDriver::drain_events(self)
    }

    fn sent(&self) -> u64 {
        DesDriver::sent(self)
    }

    fn fault_count(&self) -> u64 {
        DesDriver::fault_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(seed: u64) -> DesDriver {
        DesDriver::new(seed, PeerConfig::default())
    }

    #[test]
    fn joins_splice_the_virtual_time_ring() {
        let mut des = driver(42);
        let ids: Vec<Id> = [7u64, 900, 100, 300, 550]
            .iter()
            .map(|&i| Id::new(i))
            .collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]), "join {id:?}");
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for (k, &id) in sorted.iter().enumerate() {
            let succ = sorted[(k + 1) % sorted.len()];
            assert_eq!(des.peer(id).unwrap().succs()[0], succ);
        }
    }

    #[test]
    fn queries_resolve_and_report_through_virtual_time() {
        let mut des = driver(9);
        let ids: Vec<Id> = (1..=10u64).map(|i| Id::new(i * 1_000)).collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]));
        }
        for &id in &ids {
            des.inject(id, Command::BuildLinks { walks: 2 });
        }
        des.run_until_idle();
        des.drain_events();
        des.inject(
            ids[0],
            Command::StartQuery {
                qid: 77,
                key: Id::new(4_500),
            },
        );
        des.run_until_idle();
        let report = des
            .drain_events()
            .into_iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r),
                _ => None,
            })
            .expect("query completed");
        assert!(report.success);
        assert_eq!(report.dest, Some(Id::new(5_000)));
    }

    #[test]
    fn removed_peer_bounces_mail_to_sender() {
        let mut des = driver(5);
        let ids: Vec<Id> = (1..=6u64).map(|i| Id::new(i * 100)).collect();
        des.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(des.join_and_wait(id, ids[0]));
        }
        assert!(des.remove_peer(Id::new(300)));
        des.drain_events();
        des.inject(
            Id::new(100),
            Command::StartQuery {
                qid: 1,
                key: Id::new(250),
            },
        );
        des.run_until_idle();
        let report = des
            .drain_events()
            .into_iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r),
                _ => None,
            })
            .expect("query must terminate");
        assert!(report.wasted > 0, "corpse probe must be charged");
        assert!(des.bounced() > 0);
    }

    #[test]
    fn counters_reconcile_at_quiescence() {
        let plan = FaultPlan::new(0xC0)
            .with_drop(0.05)
            .with_duplication(0.05)
            .with_delay_jitter(2);
        let mut des = DesDriver::new_with_faults(11, PeerConfig::default(), plan);
        let ids: Vec<Id> = (1..=12u64).map(|i| Id::new(i * 500)).collect();
        // Bootstrap the ring directly (joins are exercised elsewhere).
        for &id in &ids {
            des.spawn_peer(id);
        }
        let n = ids.len();
        for (k, &id) in ids.iter().enumerate() {
            let succs: Vec<Id> = (1..=3).map(|j| ids[(k + j) % n]).collect();
            let known = succs.clone();
            des.inject(
                id,
                Command::Bootstrap {
                    pred: ids[(k + n - 1) % n],
                    succs,
                    known,
                },
            );
        }
        for &id in &ids {
            des.inject(id, Command::BuildLinks { walks: 2 });
        }
        des.run_until_settled(256);
        for (qid, &id) in ids.iter().enumerate() {
            des.inject(
                id,
                Command::StartQuery {
                    qid: qid as u64,
                    key: Id::new((qid as u64 + 1) * 333),
                },
            );
        }
        des.run_until_settled(256);
        assert!(des.duplicated() > 0, "plan must have injected copies");
        assert!(des.dropped() > 0, "plan must have dropped something");
        assert_eq!(
            des.sent(),
            des.delivered() + des.dropped() + des.bounced(),
            "every envelope must land in exactly one bucket"
        );
    }

    #[test]
    fn pure_duplication_and_jitter_change_nothing_observable() {
        // Duplicates are suppressed by the machines and jitter only
        // reorders virtual time, so fingerprints and reports must match
        // the reliable run exactly.
        let run = |plan: FaultPlan| {
            let mut des = DesDriver::new_with_faults(17, PeerConfig::default(), plan);
            let ids: Vec<Id> = (1..=10u64).map(|i| Id::new(i * 1_000)).collect();
            des.spawn_peer(ids[0]);
            for &id in &ids[1..] {
                assert!(des.join_and_wait(id, ids[0]));
            }
            for &id in &ids {
                des.inject(id, Command::BuildLinks { walks: 2 });
            }
            des.run_until_settled(64);
            des.drain_events();
            for (qid, &id) in ids.iter().enumerate() {
                des.inject(
                    id,
                    Command::StartQuery {
                        qid: qid as u64,
                        key: Id::new((qid as u64 + 1) * 777),
                    },
                );
                des.run_until_settled(64);
            }
            let mut reports: Vec<_> = des
                .drain_events()
                .into_iter()
                .filter_map(|e| match e {
                    ProtocolEvent::QueryCompleted(r) => Some(r),
                    _ => None,
                })
                .collect();
            reports.sort_by_key(|r| r.qid);
            let prints: Vec<_> = ids
                .iter()
                .map(|&id| des.peer(id).unwrap().fingerprint())
                .collect();
            (prints, reports, des.duplicated())
        };
        let (p_rel, r_rel, dup_rel) = run(FaultPlan::reliable());
        let (p_dup, r_dup, dup_dup) = run(FaultPlan::new(0xD0)
            .with_duplication(1.0)
            .with_delay_jitter(3));
        assert_eq!(dup_rel, 0);
        assert!(dup_dup > 0, "the faulty run must actually duplicate");
        assert_eq!(p_rel, p_dup, "fingerprints diverged under duplication");
        assert_eq!(r_rel, r_dup, "reports diverged under duplication");
    }
}
