//! Bootstrap-and-grow driver.
//!
//! The paper's experiments "simulate the bootstrap of the Oscar network
//! starting from scratch and simulating the network growth until it reaches
//! 10000 peers", periodically rewiring all long-range links and measuring
//! at checkpoints. This driver implements that protocol generically over an
//! [`OverlayBuilder`], so Oscar and Mercury run under *identical* growth,
//! rewiring and measurement schedules.

use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_degree::DegreeDistribution;
use oscar_keydist::KeyDistribution;
use oscar_types::labels::sim_growth::{LBL_IDS, LBL_JOIN, LBL_REWIRE, LBL_SHUFFLE};
use oscar_types::{Error, Result, SeedTree};
use rand::rngs::SmallRng;
use rand::Rng;

/// Strategy that (re)builds a peer's long-range links.
///
/// Implemented by `oscar-core` (partition sampling + power-of-two) and
/// `oscar-mercury` (sampled CDF + harmonic distances).
pub trait OverlayBuilder {
    /// Overlay name for reports ("oscar", "mercury").
    fn name(&self) -> &str;

    /// Builds long-range links for `p` (which has none yet from this
    /// builder's perspective). Must tolerate tiny networks (n = 1, 2, …)
    /// and exhausted in-degree budgets — partial success is success.
    fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()>;

    /// Rewires `p`: tears its outgoing links down and rebuilds them.
    fn rewire(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
        net.unlink_long_out(p);
        self.build_links(net, p, rng)
    }
}

/// Growth schedule.
#[derive(Clone, Debug)]
pub struct GrowthConfig {
    /// Final network size.
    pub target_size: usize,
    /// Initial cohort added before any links are built (they are each
    /// other's only possible targets; 8 matches a realistic seeded
    /// deployment and makes early sampling walks meaningful).
    pub seed_size: usize,
    /// Network sizes at which to (optionally rewire and) invoke the
    /// measurement callback. Must be ascending.
    pub checkpoints: Vec<usize>,
    /// Rewire every live peer's long-range links at each checkpoint (the
    /// paper's protocol).
    pub rewire_at_checkpoints: bool,
}

impl GrowthConfig {
    /// The paper's schedule: grow to `target`, checkpoints every 1000
    /// peers starting at 1000.
    pub fn paper(target: usize) -> Self {
        GrowthConfig {
            target_size: target,
            seed_size: 8,
            checkpoints: (1..=target / 1000).map(|k| k * 1000).collect(),
            rewire_at_checkpoints: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.seed_size < 2 {
            return Err(Error::InvalidConfig(format!(
                "seed_size must be >= 2 (a one-peer network has no link targets), got {}",
                self.seed_size
            )));
        }
        if self.target_size < self.seed_size {
            return Err(Error::InvalidConfig(format!(
                "target_size ({}) must be >= seed_size ({}): the growth schedule is inverted",
                self.target_size, self.seed_size
            )));
        }
        if self.checkpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidConfig(
                "checkpoints must be strictly ascending".into(),
            ));
        }
        Ok(())
    }
}

/// Identifies a checkpoint in the callback.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// 0-based index into `GrowthConfig::checkpoints`.
    pub index: usize,
    /// Network size at this checkpoint.
    pub size: usize,
}

/// Runs the growth protocol.
pub struct GrowthDriver {
    /// The schedule.
    pub config: GrowthConfig,
}

impl GrowthDriver {
    /// Driver with the given schedule.
    pub fn new(config: GrowthConfig) -> Self {
        GrowthDriver { config }
    }

    /// Grows `net` to `target_size`, invoking `on_checkpoint` at each
    /// configured size (after the optional rewire-all pass).
    ///
    /// Determinism: all randomness derives from `seed`; identical inputs
    /// give bit-identical networks and metrics.
    pub fn run<B, F>(
        &self,
        net: &mut Network,
        builder: &B,
        keys: &dyn KeyDistribution,
        degrees: &dyn DegreeDistribution,
        seed: SeedTree,
        mut on_checkpoint: F,
    ) -> Result<()>
    where
        B: OverlayBuilder + ?Sized,
        F: FnMut(&mut Network, Checkpoint) -> Result<()>,
    {
        self.config.validate()?;
        let mut id_rng = seed.child(LBL_IDS).rng();
        let mut next_checkpoint = 0usize;

        // Bootstrap cohort: ids and caps only; links follow once all the
        // seeds exist (they need each other as targets).
        while net.len() < self.config.seed_size {
            self.join_one(net, keys, degrees, &mut id_rng)?;
        }
        for (i, p) in net.all_peers().enumerate().collect::<Vec<_>>() {
            let mut rng = seed.child2(LBL_JOIN, i as u64).rng();
            builder.build_links(net, p, &mut rng)?;
        }
        self.fire_checkpoints(
            net,
            builder,
            &seed,
            &mut next_checkpoint,
            &mut on_checkpoint,
        )?;

        // Incremental growth.
        while net.len() < self.config.target_size {
            let p = self.join_one(net, keys, degrees, &mut id_rng)?;
            let mut rng = seed.child2(LBL_JOIN, p.as_usize() as u64).rng();
            builder.build_links(net, p, &mut rng)?;
            self.fire_checkpoints(
                net,
                builder,
                &seed,
                &mut next_checkpoint,
                &mut on_checkpoint,
            )?;
        }
        Ok(())
    }

    /// Adds one peer with a fresh identifier (resampling collisions —
    /// key distributions are allowed to produce duplicates).
    fn join_one(
        &self,
        net: &mut Network,
        keys: &dyn KeyDistribution,
        degrees: &dyn DegreeDistribution,
        id_rng: &mut SmallRng,
    ) -> Result<PeerIdx> {
        let caps = degrees.sample(id_rng);
        for _ in 0..1000 {
            let id = keys.sample(id_rng);
            if net.idx_of(id).is_none() {
                return net.add_peer(id, caps);
            }
        }
        Err(Error::InvalidConfig(
            "key distribution too degenerate: 1000 consecutive id collisions".into(),
        ))
    }

    fn fire_checkpoints<B, F>(
        &self,
        net: &mut Network,
        builder: &B,
        seed: &SeedTree,
        next_checkpoint: &mut usize,
        on_checkpoint: &mut F,
    ) -> Result<()>
    where
        B: OverlayBuilder + ?Sized,
        F: FnMut(&mut Network, Checkpoint) -> Result<()>,
    {
        while *next_checkpoint < self.config.checkpoints.len()
            && net.len() >= self.config.checkpoints[*next_checkpoint]
        {
            let cp = Checkpoint {
                index: *next_checkpoint,
                size: self.config.checkpoints[*next_checkpoint],
            };
            if self.config.rewire_at_checkpoints {
                self.rewire_all(net, builder, seed.child2(LBL_REWIRE, cp.index as u64))?;
            }
            on_checkpoint(net, cp)?;
            *next_checkpoint += 1;
        }
        Ok(())
    }

    /// Rewires every live peer once — see [`rewire_all_peers`].
    pub fn rewire_all<B>(&self, net: &mut Network, builder: &B, seed: SeedTree) -> Result<()>
    where
        B: OverlayBuilder + ?Sized,
    {
        rewire_all_peers(net, builder, seed)
    }
}

/// Rewires every live peer's long-range links once, in a deterministically
/// shuffled order (rewiring order matters: early peers grab in-degree
/// budget first, so a fixed order would bias utilisation). Shared by the
/// growth driver's checkpoints, the facade's `rewire_all` and the
/// continuous-churn engine's periodic sweeps.
pub fn rewire_all_peers<B>(net: &mut Network, builder: &B, seed: SeedTree) -> Result<()>
where
    B: OverlayBuilder + ?Sized,
{
    let mut order: Vec<PeerIdx> = net.live_peers().collect();
    let mut shuffle_rng = seed.child(LBL_SHUFFLE).rng();
    for i in (1..order.len()).rev() {
        let j = shuffle_rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for p in order {
        let mut rng = seed.child2(LBL_REWIRE, p.as_usize() as u64).rng();
        builder.rewire(net, p, &mut rng)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use crate::peer::LinkError;
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::UniformKeys;

    /// Toy builder: links to up to 3 random live peers.
    struct RandomBuilder;

    impl OverlayBuilder for RandomBuilder {
        fn name(&self) -> &str {
            "random"
        }

        fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
            for _ in 0..12 {
                if net.peer(p).out_degree() >= 3 {
                    break;
                }
                let Some(t) = net.random_live_peer(rng) else {
                    break;
                };
                match net.try_link(p, t) {
                    Ok(()) | Err(LinkError::SelfLink) | Err(LinkError::Duplicate) => {}
                    Err(LinkError::TargetFull) => {}
                    Err(e) => panic!("unexpected link error {e:?}"),
                }
            }
            Ok(())
        }
    }

    fn run_growth(target: usize, checkpoints: Vec<usize>, seed: u64) -> (Network, Vec<usize>) {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let driver = GrowthDriver::new(GrowthConfig {
            target_size: target,
            seed_size: 4,
            checkpoints,
            rewire_at_checkpoints: true,
        });
        let mut fired = Vec::new();
        driver
            .run(
                &mut net,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(8),
                SeedTree::new(seed),
                |net, cp| {
                    assert!(net.len() >= cp.size);
                    fired.push(cp.size);
                    Ok(())
                },
            )
            .unwrap();
        (net, fired)
    }

    #[test]
    fn grows_to_target_and_fires_checkpoints() {
        let (net, fired) = run_growth(200, vec![50, 100, 200], 1);
        assert_eq!(net.len(), 200);
        assert_eq!(net.live_count(), 200);
        assert_eq!(fired, vec![50, 100, 200]);
    }

    #[test]
    fn all_peers_get_links() {
        let (net, _) = run_growth(100, vec![100], 2);
        let linked = net
            .all_peers()
            .filter(|&p| net.peer(p).out_degree() > 0)
            .count();
        assert!(linked >= 99, "{linked}/100 peers have out-links");
    }

    #[test]
    fn caps_respected_after_rewiring() {
        let (net, _) = run_growth(150, vec![50, 100, 150], 3);
        for p in net.all_peers() {
            let peer = net.peer(p);
            assert!(peer.in_degree() <= peer.caps.rho_in);
            assert!(peer.out_degree() <= peer.caps.rho_out);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (net, _) = run_growth(80, vec![80], 4);
        for p in net.all_peers() {
            for &t in &net.peer(p).long_out {
                assert!(
                    net.peer(t).long_in.contains(&p),
                    "out-link {p:?}->{t:?} missing reverse entry"
                );
            }
            for &s in &net.peer(p).long_in {
                assert!(net.peer(s).long_out.contains(&p));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = run_growth(120, vec![60, 120], 42);
        let (b, _) = run_growth(120, vec![60, 120], 42);
        assert_eq!(a.metrics, b.metrics);
        for p in a.all_peers() {
            assert_eq!(a.peer(p).id, b.peer(p).id);
            assert_eq!(a.peer(p).long_out, b.peer(p).long_out);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = run_growth(120, vec![120], 1);
        let (b, _) = run_growth(120, vec![120], 2);
        let same = a
            .all_peers()
            .take(50)
            .filter(|&p| a.peer(p).id == b.peer(p).id)
            .count();
        assert!(same < 50, "seeds produced identical id streams");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let bad = GrowthDriver::new(GrowthConfig {
            target_size: 10,
            seed_size: 1,
            checkpoints: vec![],
            rewire_at_checkpoints: false,
        });
        assert!(bad
            .run(
                &mut net,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(4),
                SeedTree::new(1),
                |_, _| Ok(()),
            )
            .is_err());

        let bad2 = GrowthDriver::new(GrowthConfig {
            target_size: 10,
            seed_size: 4,
            checkpoints: vec![8, 8],
            rewire_at_checkpoints: false,
        });
        let mut net2 = Network::new(FaultModel::StabilizedRing);
        assert!(bad2
            .run(
                &mut net2,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(4),
                SeedTree::new(1),
                |_, _| Ok(()),
            )
            .is_err());
    }

    #[test]
    fn paper_schedule_shape() {
        let cfg = GrowthConfig::paper(10_000);
        assert_eq!(cfg.target_size, 10_000);
        assert_eq!(cfg.checkpoints.first(), Some(&1000));
        assert_eq!(cfg.checkpoints.last(), Some(&10_000));
        assert_eq!(cfg.checkpoints.len(), 10);
        assert!(cfg.rewire_at_checkpoints);
    }
}
