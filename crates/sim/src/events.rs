//! A minimal discrete-event engine with virtual time.
//!
//! The growth driver's checkpointed loop covers the paper's experiments,
//! but continuous-churn scenarios (peers joining and crashing concurrently,
//! extension experiment A6 and the `churn_resilience` example) need events
//! interleaved on a virtual clock. This queue is deliberately tiny:
//! monotonically increasing virtual time, FIFO tie-breaking, no cancellation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual simulation time (opaque ticks).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Time advanced by `ticks`.
    pub fn after(self, ticks: u64) -> VirtualTime {
        VirtualTime(self.0 + ticks)
    }
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event<E> {
    /// When the event fires.
    pub at: VirtualTime,
    seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for Event<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Event<E> {}
impl<E> PartialOrd for Event<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Event<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Earliest-first event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Event<E>>,
    next_seq: u64,
    now: VirtualTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: VirtualTime(0),
        }
    }

    /// Current virtual time (time of the last popped event).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past (before the last popped event) — the
    /// simulation would no longer be causal.
    pub fn schedule(&mut self, at: VirtualTime, payload: E) {
        assert!(at >= self.now, "scheduling into the past breaks causality");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    /// Schedules `payload` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, payload: E) {
        self.schedule(self.now.after(delay), payload);
    }

    /// Pops the earliest event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime(30), "c");
        q.schedule(VirtualTime(10), "a");
        q.schedule(VirtualTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(VirtualTime(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime(7), ());
        assert_eq!(q.now(), VirtualTime(0));
        q.pop();
        assert_eq!(q.now(), VirtualTime(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime(10), 1);
        q.pop();
        q.schedule_in(5, 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, VirtualTime(15));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime(10), ());
        q.pop();
        q.schedule(VirtualTime(5), ());
    }

    mod queue_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Model check against a sorted reference: under arbitrary
            /// interleavings of `schedule` (absolute, offset from now),
            /// `schedule_in` and `pop`, every pop must return exactly the
            /// pending event with the least `(time, insertion order)` —
            /// i.e. time-ordering with FIFO tie-breaking — and the clock
            /// must advance monotonically.
            #[test]
            fn pops_always_follow_time_then_fifo_order(
                ops in prop::collection::vec((0u8..3, 0u64..20), 1..200),
            ) {
                let mut q: EventQueue<usize> = EventQueue::new();
                // Reference model: pending (time, seq) pairs, seq = the
                // payload tag assigned at insertion.
                let mut pending: Vec<(u64, usize)> = Vec::new();
                let mut inserted = 0usize;
                let mut last_popped = VirtualTime(0);
                for (op, delay) in ops {
                    match op {
                        0 => {
                            let at = q.now().after(delay);
                            q.schedule(at, inserted);
                            pending.push((at.0, inserted));
                            inserted += 1;
                        }
                        1 => {
                            q.schedule_in(delay, inserted);
                            pending.push((q.now().0 + delay, inserted));
                            inserted += 1;
                        }
                        _ => match q.pop() {
                            Some((t, tag)) => {
                                let (bi, &best) = pending
                                    .iter()
                                    .enumerate()
                                    .min_by_key(|&(_, &(at, seq))| (at, seq))
                                    .expect("queue non-empty implies model non-empty");
                                prop_assert_eq!((t.0, tag), best, "pop order diverged");
                                prop_assert!(t >= last_popped, "clock went backwards");
                                prop_assert_eq!(q.now(), t);
                                last_popped = t;
                                pending.remove(bi);
                            }
                            None => prop_assert!(pending.is_empty(), "queue dropped events"),
                        },
                    }
                    prop_assert_eq!(q.len(), pending.len());
                }
                // Drain: the remainder must come out in model order too.
                pending.sort_unstable();
                let drained: Vec<(u64, usize)> =
                    std::iter::from_fn(|| q.pop().map(|(t, tag)| (t.0, tag))).collect();
                prop_assert_eq!(drained, pending);
            }
        }
    }

    #[test]
    fn interleaved_schedule_pop() {
        // An event handler scheduling follow-ups — the DES core loop.
        let mut q = EventQueue::new();
        q.schedule(VirtualTime(1), 0u32);
        let mut fired = Vec::new();
        while let Some((t, gen)) = q.pop() {
            fired.push((t.0, gen));
            if gen < 3 {
                q.schedule_in(2, gen + 1);
            }
        }
        assert_eq!(fired, vec![(1, 0), (3, 1), (5, 2), (7, 3)]);
    }
}
