//! High-level overlay facade.
//!
//! [`Overlay`] bundles a [`Network`], an [`OverlayBuilder`] strategy and a
//! deterministic seed into the object users actually interact with:
//! grow it, rewire it, crash it, query it. Oscar and Mercury are the same
//! facade with different builders, which guarantees the comparison
//! benchmarks treat both identically.

use crate::churn::{kill_fraction, FaultModel};
use crate::churn_engine::{run_continuous_churn, ChurnSchedule, ChurnWindowStats};
use crate::growth::{rewire_all_peers, Checkpoint, GrowthConfig, GrowthDriver, OverlayBuilder};
use crate::network::Network;
use crate::peer::PeerIdx;
use crate::routing::{run_query_batch, QueryBatchStats, RoutePolicy};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_types::labels::sim_overlay::{
    LBL_CHURN, LBL_CONTINUOUS, LBL_GROW, LBL_QUERY, LBL_REWIRE,
};
use oscar_types::{Result, SeedTree};

/// A running overlay: network + link-building strategy + seed.
pub struct Overlay<B: OverlayBuilder> {
    net: Network,
    builder: B,
    seed: SeedTree,
    rewire_rounds: u64,
    query_batches: u64,
    churn_waves: u64,
    churn_runs: u64,
}

impl<B: OverlayBuilder> Overlay<B> {
    /// New empty overlay.
    pub fn new(builder: B, fault_model: FaultModel, seed: u64) -> Self {
        Overlay {
            net: Network::new(fault_model),
            builder,
            // lint:allow(rng-discipline, the overlay facade is the experiment entry point that roots the tree)
            seed: SeedTree::new(seed),
            rewire_rounds: 0,
            query_batches: 0,
            churn_waves: 0,
            churn_runs: 0,
        }
    }

    /// The underlying network (read access).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The underlying network (mutable access, for custom experiments).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The link-building strategy.
    pub fn builder(&self) -> &B {
        &self.builder
    }

    /// Grows the overlay under `config`, invoking `on_checkpoint` at each
    /// configured size (after the rewire-all pass, if enabled).
    pub fn grow<F>(
        &mut self,
        keys: &dyn KeyDistribution,
        degrees: &dyn DegreeDistribution,
        config: GrowthConfig,
        on_checkpoint: F,
    ) -> Result<()>
    where
        F: FnMut(&mut Network, Checkpoint) -> Result<()>,
    {
        let driver = GrowthDriver::new(config);
        driver.run(
            &mut self.net,
            &self.builder,
            keys,
            degrees,
            self.seed.child(LBL_GROW),
            on_checkpoint,
        )
    }

    /// Convenience: grow straight to `n` peers (no intermediate
    /// checkpoints), then rewire everyone once so every peer's links
    /// reflect the final population.
    pub fn grow_to(
        &mut self,
        n: usize,
        keys: &dyn KeyDistribution,
        degrees: &dyn DegreeDistribution,
    ) -> Result<()> {
        self.grow(
            keys,
            degrees,
            GrowthConfig {
                target_size: n,
                seed_size: 8.min(n.max(2)),
                checkpoints: vec![],
                rewire_at_checkpoints: false,
            },
            |_, _| Ok(()),
        )?;
        self.rewire_all()
    }

    /// Rewires every live peer's long-range links once.
    pub fn rewire_all(&mut self) -> Result<()> {
        self.rewire_rounds += 1;
        let seed = self.seed.child2(LBL_REWIRE, self.rewire_rounds);
        rewire_all_peers(&mut self.net, &self.builder, seed)
    }

    /// Issues `n` queries and aggregates the costs. Each call uses a fresh
    /// derived RNG stream, so repeated batches are independent but the
    /// whole experiment stays reproducible.
    pub fn run_queries(&mut self, workload: &QueryWorkload, n: usize) -> QueryBatchStats {
        self.query_batches += 1;
        let mut rng = self.seed.child2(LBL_QUERY, self.query_batches).rng();
        run_query_batch(
            &mut self.net,
            workload,
            n,
            &RoutePolicy::default(),
            &mut rng,
        )
    }

    /// Crashes a uniform fraction of live peers. Each wave draws from its
    /// own derived RNG stream (mirroring [`Overlay::run_queries`]), so
    /// repeated waves on one overlay are independent — the previous
    /// fixed-label derivation replayed the identical stream every call,
    /// silently correlating repeated-churn experiments.
    pub fn kill_fraction(&mut self, fraction: f64) -> Result<Vec<PeerIdx>> {
        self.churn_waves += 1;
        let mut rng = self.seed.child2(LBL_CHURN, self.churn_waves).rng();
        kill_fraction(&mut self.net, fraction, &mut rng)
    }

    /// Runs `windows` measurement windows of continuous churn (Poisson
    /// join/crash/depart arrivals on the event queue — see
    /// [`crate::churn_engine`]). Each call uses a fresh derived seed, so
    /// repeated runs on one overlay are independent but reproducible.
    pub fn run_continuous_churn(
        &mut self,
        keys: &dyn KeyDistribution,
        degrees: &dyn DegreeDistribution,
        schedule: &ChurnSchedule,
        windows: usize,
    ) -> Result<Vec<ChurnWindowStats>> {
        self.churn_runs += 1;
        run_continuous_churn(
            &mut self.net,
            &self.builder,
            keys,
            degrees,
            schedule,
            windows,
            self.seed.child2(LBL_CONTINUOUS, self.churn_runs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::LinkError;
    use oscar_degree::{ConstantDegrees, DegreeCaps};
    use oscar_keydist::UniformKeys;
    use rand::rngs::SmallRng;

    struct RandomBuilder;

    impl OverlayBuilder for RandomBuilder {
        fn name(&self) -> &str {
            "random"
        }
        fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
            for _ in 0..20 {
                if net.peer(p).out_degree() >= 5 {
                    break;
                }
                if let Some(t) = net.random_live_peer(rng) {
                    match net.try_link(p, t) {
                        Ok(())
                        | Err(LinkError::SelfLink)
                        | Err(LinkError::Duplicate)
                        | Err(LinkError::TargetFull) => {}
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
            Ok(())
        }
    }

    #[test]
    fn grow_query_churn_cycle() {
        let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 7);
        ov.grow_to(200, &UniformKeys, &ConstantDegrees::new(8))
            .unwrap();
        assert_eq!(ov.network().live_count(), 200);

        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 100);
        assert_eq!(stats.success_rate, 1.0);
        assert!(stats.mean_cost > 0.0);

        let killed = ov.kill_fraction(0.10).unwrap();
        assert_eq!(killed.len(), 20);
        let stats2 = ov.run_queries(&QueryWorkload::UniformPeers, 100);
        assert_eq!(stats2.success_rate, 1.0, "stabilised ring still delivers");
    }

    #[test]
    fn query_batches_are_independent_but_reproducible() {
        let run = || {
            let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 9);
            ov.grow_to(100, &UniformKeys, &ConstantDegrees::new(6))
                .unwrap();
            let a = ov.run_queries(&QueryWorkload::UniformPeers, 50);
            let b = ov.run_queries(&QueryWorkload::UniformPeers, 50);
            (a.mean_cost, b.mean_cost)
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!(a1, a2, "same seed, same first batch");
        assert_eq!(b1, b2, "same seed, same second batch");
        assert_ne!(a1, b1, "different batches draw different queries");
    }

    #[test]
    fn rewire_all_preserves_caps() {
        let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 11);
        ov.grow_to(150, &UniformKeys, &ConstantDegrees::new(6))
            .unwrap();
        ov.rewire_all().unwrap();
        ov.rewire_all().unwrap();
        for p in ov.network().all_peers() {
            let peer = ov.network().peer(p);
            assert!(peer.in_degree() <= peer.caps.rho_in);
            assert!(peer.out_degree() <= peer.caps.rho_out);
        }
    }

    #[test]
    fn successive_kill_waves_draw_independent_streams() {
        // Regression for the wave-counter fix: the old derivation rebuilt
        // `seed.child(LBL_CHURN)` on every call, so two waves over
        // equal-sized populations replayed the identical RNG stream and
        // selected the identical *positions* in the live-peer list. Restore
        // the population between waves to make that replay observable.
        let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 21);
        ov.grow_to(100, &UniformKeys, &ConstantDegrees::new(6))
            .unwrap();

        let positions_of = |pre: &[PeerIdx], killed: &[PeerIdx]| -> Vec<usize> {
            killed
                .iter()
                .map(|k| pre.iter().position(|p| p == k).expect("victim was live"))
                .collect()
        };

        let pre1: Vec<PeerIdx> = ov.network().live_peers().collect();
        let wave1 = ov.kill_fraction(0.10).unwrap();
        let pos1 = positions_of(&pre1, &wave1);

        // Refill to exactly 100 live peers so wave 2 samples from a
        // same-length list — a replayed stream would pick the same spots.
        for i in 0..wave1.len() {
            ov.network_mut()
                .add_peer(
                    oscar_types::Id::new(u64::MAX - i as u64),
                    DegreeCaps::symmetric(6),
                )
                .unwrap();
        }
        assert_eq!(ov.network().live_count(), 100);
        let pre2: Vec<PeerIdx> = ov.network().live_peers().collect();
        let wave2 = ov.kill_fraction(0.10).unwrap();
        let pos2 = positions_of(&pre2, &wave2);

        assert_ne!(
            pos1, pos2,
            "waves replayed the same RNG stream: victims at identical list positions"
        );
        // And the wave sequence stays reproducible under the same seed.
        let mut ov2 = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 21);
        ov2.grow_to(100, &UniformKeys, &ConstantDegrees::new(6))
            .unwrap();
        assert_eq!(ov2.kill_fraction(0.10).unwrap(), wave1);
    }

    #[test]
    fn grow_to_tiny_targets() {
        // n < 2 is an inverted growth schedule (seed cohort bigger than
        // the target); it must come back as InvalidConfig, not something
        // silent. n = 2 is the smallest runnable overlay.
        for n in [0usize, 1] {
            let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 31);
            match ov.grow_to(n, &UniformKeys, &ConstantDegrees::new(4)) {
                Err(oscar_types::Error::InvalidConfig(msg)) => {
                    assert!(
                        msg.contains("target_size"),
                        "unhelpful message for n={n}: {msg}"
                    );
                }
                other => panic!("grow_to({n}) should be InvalidConfig, got {other:?}"),
            }
        }
        let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 31);
        ov.grow_to(2, &UniformKeys, &ConstantDegrees::new(4))
            .unwrap();
        assert_eq!(ov.network().live_count(), 2);
    }

    #[test]
    fn continuous_churn_runs_are_independent_but_reproducible() {
        use crate::churn_engine::{ChurnSchedule, QueryBudget};
        let schedule = ChurnSchedule {
            query_budget: QueryBudget::Fixed(50),
            ..ChurnSchedule::symmetric(0.05)
        };
        let run = || {
            let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 19);
            ov.grow_to(150, &UniformKeys, &ConstantDegrees::new(6))
                .unwrap();
            let a = ov
                .run_continuous_churn(&UniformKeys, &ConstantDegrees::new(6), &schedule, 2)
                .unwrap();
            let b = ov
                .run_continuous_churn(&UniformKeys, &ConstantDegrees::new(6), &schedule, 2)
                .unwrap();
            (a, b)
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!(a1, a2, "same seed, same first run");
        assert_eq!(b1, b2, "same seed, same second run");
        assert_ne!(a1, b1, "repeated runs draw fresh streams");
        for w in &a1 {
            assert!(w.queries.queries > 0);
        }
    }

    #[test]
    fn grow_with_checkpoints_reports_sizes() {
        let mut ov = Overlay::new(RandomBuilder, FaultModel::StabilizedRing, 13);
        let mut sizes = Vec::new();
        ov.grow(
            &UniformKeys,
            &ConstantDegrees::new(6),
            GrowthConfig {
                target_size: 120,
                seed_size: 4,
                checkpoints: vec![40, 80, 120],
                rewire_at_checkpoints: true,
            },
            |net, cp| {
                sizes.push((cp.size, net.live_count()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(sizes, vec![(40, 40), (80, 80), (120, 120)]);
    }
}
