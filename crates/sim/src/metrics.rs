//! Message accounting.
//!
//! The paper's metrics are message counts: search cost is hops plus wasted
//! traffic; construction cost (sampling walks, probes, link handshakes) is
//! what makes Oscar's `O(log N)`-medians claim interesting. Every simulated
//! message increments exactly one counter here.

use std::fmt;

/// Categories of simulated messages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum MsgKind {
    /// One step of a random sampling walk.
    WalkStep = 0,
    /// In-degree probe of a link candidate (power-of-two choices).
    Probe = 1,
    /// Link establishment request.
    LinkRequest = 2,
    /// Link accepted.
    LinkAccept = 3,
    /// Link refused (in-degree budget exhausted).
    LinkRefuse = 4,
    /// Routing hop during construction (entry discovery etc.).
    ConstructionHop = 5,
    /// Productive query routing hop.
    QueryHop = 6,
    /// Wasted query traffic: probing dead neighbours, backtracking.
    QueryWasted = 7,
}

/// Number of message categories.
pub const MSG_KINDS: usize = 8;

/// All message categories, in counter order.
pub const ALL_MSG_KINDS: [MsgKind; MSG_KINDS] = [
    MsgKind::WalkStep,
    MsgKind::Probe,
    MsgKind::LinkRequest,
    MsgKind::LinkAccept,
    MsgKind::LinkRefuse,
    MsgKind::ConstructionHop,
    MsgKind::QueryHop,
    MsgKind::QueryWasted,
];

impl MsgKind {
    /// Stable label for CSV/report output.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::WalkStep => "walk_step",
            MsgKind::Probe => "probe",
            MsgKind::LinkRequest => "link_request",
            MsgKind::LinkAccept => "link_accept",
            MsgKind::LinkRefuse => "link_refuse",
            MsgKind::ConstructionHop => "construction_hop",
            MsgKind::QueryHop => "query_hop",
            MsgKind::QueryWasted => "query_wasted",
        }
    }
}

/// Message counters by category.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counts: [u64; MSG_KINDS],
}

impl Metrics {
    /// Zeroed counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments one counter.
    #[inline]
    pub fn inc(&mut self, kind: MsgKind) {
        self.counts[kind as usize] += 1;
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&mut self, kind: MsgKind, n: u64) {
        self.counts[kind as usize] += n;
    }

    /// Reads one counter.
    #[inline]
    pub fn get(&self, kind: MsgKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = [0; MSG_KINDS];
    }

    /// Per-category difference `self - earlier` (saturating); use to report
    /// the cost of one phase.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        let mut out = Metrics::new();
        for i in 0..MSG_KINDS {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Merges counters from another snapshot.
    pub fn merge(&mut self, other: &Metrics) {
        for i in 0..MSG_KINDS {
            self.counts[i] += other.counts[i];
        }
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Metrics");
        for kind in ALL_MSG_KINDS {
            d.field(kind.label(), &self.get(kind));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_add_get() {
        let mut m = Metrics::new();
        m.inc(MsgKind::QueryHop);
        m.add(MsgKind::QueryHop, 4);
        m.inc(MsgKind::Probe);
        assert_eq!(m.get(MsgKind::QueryHop), 5);
        assert_eq!(m.get(MsgKind::Probe), 1);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn since_reports_phase_delta() {
        let mut m = Metrics::new();
        m.add(MsgKind::WalkStep, 10);
        let snapshot = m.clone();
        m.add(MsgKind::WalkStep, 7);
        m.inc(MsgKind::LinkAccept);
        let delta = m.since(&snapshot);
        assert_eq!(delta.get(MsgKind::WalkStep), 7);
        assert_eq!(delta.get(MsgKind::LinkAccept), 1);
        assert_eq!(delta.get(MsgKind::Probe), 0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add(MsgKind::QueryWasted, 3);
        b.add(MsgKind::QueryWasted, 4);
        a.merge(&b);
        assert_eq!(a.get(MsgKind::QueryWasted), 7);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL_MSG_KINDS {
            assert!(seen.insert(k.label()));
        }
    }
}
