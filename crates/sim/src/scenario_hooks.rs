//! Shock hooks for the scenario engine: one-shot structural events that
//! the continuous-churn engine's Poisson processes cannot express —
//! contiguous ring-arc outages, targeted highest-degree kills, mass-join
//! bursts and partition cuts — plus the reactive heal pass that repairs
//! their damage.
//!
//! Each hook is a deterministic function of the network state (and, where
//! it draws anything, a labelled [`SeedTree`] child in scope
//! `sim_scenario_hooks`), so a scenario run stays a pure function of its
//! seed. Hooks mutate the oracle [`Network`] directly — they are the
//! legacy-backend analogue of what `run_machine_phases` does to a
//! machine fleet with real messages.
//!
//! The kill hooks compute their **repair set** (the live ring neighbours
//! whose neighbourhood the kill changes, exactly the set the engine's
//! `Reactive` policy would probe) *before* removing anyone, because a
//! dead peer's live-ring pointers are stale. [`reactive_heal`] then
//! rewires that set plus every live peer left holding a dangling
//! long-range link — repair work proportional to the damage, O(k) per
//! victim plus O(dangling), never a whole-network sweep.

use crate::growth::OverlayBuilder;
use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_degree::DegreeDistribution;
use oscar_keydist::KeyDistribution;
use oscar_types::labels::sim_scenario_hooks::{LBL_BURST, LBL_HEAL};
use oscar_types::{Error, Result, SeedTree};

/// What a kill hook destroyed, and who is left to repair it.
#[derive(Clone, Debug)]
pub struct ShockDamage {
    /// The peers that were killed, in kill order.
    pub victims: Vec<PeerIdx>,
    /// Live ring neighbours of the victims (computed pre-kill, the
    /// reactive repair set); peers that died in the same shock are
    /// filtered out. May contain peers killed by a *later* hook — the
    /// heal pass re-checks liveness.
    pub repair_set: Vec<PeerIdx>,
}

/// What a partition hook severed.
#[derive(Clone, Debug)]
pub struct PartitionDamage {
    /// Directed long-range links removed by the cut.
    pub severed: usize,
    /// Sources whose out-links were cut (sorted, deduplicated) — the
    /// repair set of the heal phase.
    pub repair_set: Vec<PeerIdx>,
}

/// Resolves an arc spec into `(first_rank, count)` over `n` live peers,
/// keeping at least 2 peers out of the arc.
fn resolve_arc(n: usize, start: f64, fraction: f64) -> Result<(usize, usize)> {
    if n < 3 {
        return Err(Error::InvalidConfig(format!(
            "arc hooks need >= 3 live peers, got {n}"
        )));
    }
    if !fraction.is_finite() || fraction <= 0.0 || fraction >= 1.0 {
        return Err(Error::InvalidConfig(format!(
            "arc fraction must be in (0, 1), got {fraction}"
        )));
    }
    let count = ((n as f64 * fraction).ceil() as usize).clamp(1, n - 2);
    let first = (start.rem_euclid(1.0) * n as f64) as usize % n;
    Ok((first, count))
}

/// Kills the contiguous live-ring arc of `fraction · live_count` peers
/// starting at ring position `start` (a fraction of the ring; values
/// outside `[0, 1)` wrap) — a regional outage: one data centre, one AS,
/// one geography going dark at once. The repair set is the `neighbors_k`
/// nearest surviving ring neighbours on each side of the hole.
pub fn kill_ring_arc(
    net: &mut Network,
    start: f64,
    fraction: f64,
    neighbors_k: usize,
) -> Result<ShockDamage> {
    let n = net.live_count();
    let (first, count) = resolve_arc(n, start, fraction)?;
    let victims: Vec<PeerIdx> = (0..count)
        .map(|i| net.live_peer_by_rank((first + i) % n))
        .collect();
    // The survivors that border the hole: neighbours of the arc's two
    // ends, minus the arc itself. Computed before any kill — afterwards
    // the victims' live-ring pointers are gone.
    let mut repair_set = Vec::new();
    for &end in [victims[0], victims[count - 1]].iter() {
        for p in net.live_ring_neighborhood(end, neighbors_k.max(1) + count) {
            if !victims.contains(&p) && !repair_set.contains(&p) {
                repair_set.push(p);
            }
        }
    }
    repair_set.truncate(2 * neighbors_k.max(1));
    repair_set.sort_by_key(|p| p.as_usize());
    for &v in &victims {
        net.kill(v)?;
    }
    Ok(ShockDamage {
        victims,
        repair_set,
    })
}

/// Kills the `fraction · live_count` live peers with the highest total
/// degree (in + out long-range links), ties broken by identifier — a
/// targeted attack on the overlay's best-connected members. Repair set:
/// the `neighbors_k` live ring neighbours of each victim, computed just
/// before that victim dies (exactly when the engine's reactive policy
/// would have probed them).
pub fn kill_top_degree(
    net: &mut Network,
    fraction: f64,
    neighbors_k: usize,
) -> Result<ShockDamage> {
    let n = net.live_count();
    if n < 3 {
        return Err(Error::InvalidConfig(format!(
            "targeted kill needs >= 3 live peers, got {n}"
        )));
    }
    if !fraction.is_finite() || fraction <= 0.0 || fraction >= 1.0 {
        return Err(Error::InvalidConfig(format!(
            "targeted-kill fraction must be in (0, 1), got {fraction}"
        )));
    }
    let count = ((n as f64 * fraction).ceil() as usize).clamp(1, n - 2);
    let mut ranked: Vec<(u32, oscar_types::Id, PeerIdx)> = net
        .live_peers()
        .map(|p| {
            let peer = net.peer(p);
            (peer.in_degree() + peer.out_degree(), peer.id, p)
        })
        .collect();
    // Highest degree first; identifier order is the deterministic
    // tiebreak (no RNG anywhere in this hook).
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let victims: Vec<PeerIdx> = ranked[..count].iter().map(|&(_, _, p)| p).collect();
    let mut repair_set = Vec::new();
    for &v in &victims {
        for p in net.live_ring_neighborhood(v, neighbors_k.max(1)) {
            if !victims.contains(&p) && !repair_set.contains(&p) {
                repair_set.push(p);
            }
        }
        net.kill(v)?;
    }
    repair_set.sort_by_key(|p| p.as_usize());
    Ok(ShockDamage {
        victims,
        repair_set,
    })
}

/// Admits `count` peers at once — a flash crowd. Each joiner runs the
/// growth driver's join protocol (fresh identifier from `keys`, degree
/// caps from `degrees`, links through `builder`) with its own seed-tree
/// child, so the burst is deterministic and order-independent of any
/// interleaved measurement.
pub fn burst_joins<B: OverlayBuilder + ?Sized>(
    net: &mut Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    count: usize,
    seed: &SeedTree,
) -> Result<Vec<PeerIdx>> {
    let mut joined = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = seed.child2(LBL_BURST, i as u64).rng();
        let caps = degrees.sample(&mut rng);
        let mut admitted = false;
        for _ in 0..1000 {
            let id = keys.sample(&mut rng);
            if net.idx_of(id).is_none() {
                let p = net.add_peer(id, caps)?;
                builder.build_links(net, p, &mut rng)?;
                joined.push(p);
                admitted = true;
                break;
            }
        }
        if !admitted {
            return Err(Error::InvalidConfig(
                "key distribution too degenerate: 1000 consecutive id collisions".into(),
            ));
        }
    }
    Ok(joined)
}

/// Severs every long-range link crossing between the live-ring arc
/// `[start, start + fraction)` and the rest of the network, in both
/// directions — a partition mask: the two sides stay internally wired
/// but lose all shortcut connectivity across the cut (the ring itself is
/// untouched, as ring edges model the underlying key order, not sockets).
pub fn sever_arc_links(net: &mut Network, start: f64, fraction: f64) -> Result<PartitionDamage> {
    let n = net.live_count();
    let (first, count) = resolve_arc(n, start, fraction)?;
    let mut in_arc = vec![false; net.len()];
    for i in 0..count {
        in_arc[net.live_peer_by_rank((first + i) % n).as_usize()] = true;
    }
    let live: Vec<PeerIdx> = net.live_peers().collect();
    let mut severed = 0usize;
    let mut repair_set = Vec::new();
    for p in live {
        let crossing: Vec<PeerIdx> = net
            .peer(p)
            .long_out
            .iter()
            .copied()
            .filter(|&t| net.is_alive(t) && in_arc[p.as_usize()] != in_arc[t.as_usize()])
            .collect();
        if crossing.is_empty() {
            continue;
        }
        for t in crossing {
            if net.unlink(p, t) {
                severed += 1;
            }
        }
        repair_set.push(p);
    }
    repair_set.sort_by_key(|p| p.as_usize());
    repair_set.dedup();
    Ok(PartitionDamage {
        severed,
        repair_set,
    })
}

/// Reactive heal: rewires (tear down + rebuild long links) every still-
/// alive peer in `repair_set`, plus every live peer left holding a
/// dangling long-range link to a corpse — the peers that would discover
/// the damage through probes and bounced traffic. Targets are visited in
/// peer-index order with per-repair seed children, so the heal is a pure
/// function of `(network, repair_set, seed)`.
///
/// Returns `(repairs, repair_cost)`: peers rewired, and the simulated
/// messages (sampling walks, link handshakes) the rewires generated.
pub fn reactive_heal<B: OverlayBuilder + ?Sized>(
    net: &mut Network,
    builder: &B,
    repair_set: &[PeerIdx],
    seed: &SeedTree,
) -> Result<(u64, u64)> {
    let mut targets: Vec<PeerIdx> = repair_set
        .iter()
        .copied()
        .filter(|&p| net.is_alive(p))
        .collect();
    for p in net.live_peers() {
        if net.peer(p).long_out.iter().any(|&t| !net.is_alive(t)) {
            targets.push(p);
        }
    }
    targets.sort_by_key(|p| p.as_usize());
    targets.dedup();
    let before = net.metrics.total();
    for (i, &p) in targets.iter().enumerate() {
        let mut rng = seed.child2(LBL_HEAL, i as u64).rng();
        builder.rewire(net, p, &mut rng)?;
    }
    Ok((targets.len() as u64, net.metrics.total() - before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use crate::growth::{GrowthConfig, GrowthDriver};
    use crate::peer::LinkError;
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::UniformKeys;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Toy builder: links to up to 4 random live peers.
    struct RandomBuilder;

    impl OverlayBuilder for RandomBuilder {
        fn name(&self) -> &str {
            "random"
        }
        fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
            for _ in 0..16 {
                if net.peer(p).out_degree() >= 4 {
                    break;
                }
                if let Some(t) = net.random_live_peer(rng) {
                    match net.try_link(p, t) {
                        Ok(())
                        | Err(LinkError::SelfLink)
                        | Err(LinkError::Duplicate)
                        | Err(LinkError::TargetFull) => {}
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
            Ok(())
        }
    }

    fn grown(n: usize, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        GrowthDriver::new(GrowthConfig {
            target_size: n,
            seed_size: 4,
            checkpoints: vec![],
            rewire_at_checkpoints: false,
        })
        .run(
            &mut net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            SeedTree::new(seed),
            |_, _| Ok(()),
        )
        .unwrap();
        net
    }

    #[test]
    fn arc_kill_removes_contiguous_ring_range() {
        let mut net = grown(100, 1);
        let damage = kill_ring_arc(&mut net, 0.25, 0.10, 2).unwrap();
        assert_eq!(damage.victims.len(), 10);
        assert_eq!(net.live_count(), 90);
        for &v in &damage.victims {
            assert!(!net.is_alive(v));
        }
        // The repair set borders the hole and survived it.
        assert!(!damage.repair_set.is_empty());
        for &p in &damage.repair_set {
            assert!(net.is_alive(p));
        }
    }

    #[test]
    fn arc_kill_is_deterministic() {
        let mut a = grown(80, 2);
        let mut b = grown(80, 2);
        let da = kill_ring_arc(&mut a, 0.5, 0.2, 2).unwrap();
        let db = kill_ring_arc(&mut b, 0.5, 0.2, 2).unwrap();
        assert_eq!(da.victims, db.victims);
        assert_eq!(da.repair_set, db.repair_set);
    }

    #[test]
    fn arc_kill_rejects_degenerate_specs() {
        let mut net = grown(50, 3);
        assert!(kill_ring_arc(&mut net, 0.0, 0.0, 2).is_err());
        assert!(kill_ring_arc(&mut net, 0.0, 1.0, 2).is_err());
        assert!(kill_ring_arc(&mut net, 0.0, f64::NAN, 2).is_err());
        // A huge fraction clamps to leave 2 survivors rather than erroring.
        let damage = kill_ring_arc(&mut net, 0.0, 0.99, 2).unwrap();
        assert_eq!(net.live_count(), 50 - damage.victims.len());
        assert!(net.live_count() >= 2);
    }

    #[test]
    fn targeted_kill_takes_highest_degree_first() {
        let mut net = grown(100, 4);
        let max_live_degree = |net: &Network| {
            net.live_peers()
                .map(|p| net.peer(p).in_degree() + net.peer(p).out_degree())
                .max()
                .unwrap()
        };
        let before_max = max_live_degree(&net);
        let damage = kill_top_degree(&mut net, 0.05, 2).unwrap();
        assert_eq!(damage.victims.len(), 5);
        let victim_min = damage
            .victims
            .iter()
            .map(|&v| net.peer(v).in_degree() + net.peer(v).out_degree())
            .min()
            .unwrap();
        // Degrees recorded post-kill undercount (links to victims vanish),
        // but the top victim had the max degree by construction.
        assert!(victim_min <= before_max);
        assert_eq!(net.live_count(), 95);
        // Survivors all had degree <= the pre-kill max.
        assert!(max_live_degree(&net) <= before_max);
    }

    #[test]
    fn burst_joins_admits_exactly_count() {
        let mut net = grown(60, 5);
        let joined = burst_joins(
            &mut net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            40,
            &SeedTree::new(77),
        )
        .unwrap();
        assert_eq!(joined.len(), 40);
        assert_eq!(net.live_count(), 100);
        let linked = joined
            .iter()
            .filter(|&&p| net.peer(p).out_degree() > 0)
            .count();
        assert!(linked >= 39, "{linked}/40 joiners got links");
    }

    #[test]
    fn partition_severs_only_crossing_links() {
        let mut net = grown(100, 6);
        let total_links_before: usize = net.live_peers().map(|p| net.peer(p).long_out.len()).sum();
        let damage = sever_arc_links(&mut net, 0.0, 0.3).unwrap();
        assert!(damage.severed > 0, "a 30% arc must cut some links");
        let total_links_after: usize = net.live_peers().map(|p| net.peer(p).long_out.len()).sum();
        assert_eq!(total_links_before - total_links_after, damage.severed);
        assert_eq!(net.live_count(), 100, "partition kills nobody");
        // Adjacency stays symmetric after the cut.
        for p in net.live_peers() {
            for &t in &net.peer(p).long_out {
                assert!(net.peer(t).long_in.contains(&p));
            }
        }
    }

    #[test]
    fn heal_repairs_dangling_links_and_repair_set() {
        let mut net = grown(100, 7);
        let damage = kill_ring_arc(&mut net, 0.1, 0.15, 2).unwrap();
        let dangling_before = net
            .live_peers()
            .filter(|&p| net.peer(p).long_out.iter().any(|&t| !net.is_alive(t)))
            .count();
        assert!(dangling_before > 0, "an arc kill must leave dangling links");
        let (repairs, cost) = reactive_heal(
            &mut net,
            &RandomBuilder,
            &damage.repair_set,
            &SeedTree::new(9),
        )
        .unwrap();
        assert!(repairs >= dangling_before as u64);
        assert!(cost > 0, "rewires are counted maintenance traffic");
        let dangling_after = net
            .live_peers()
            .filter(|&p| net.peer(p).long_out.iter().any(|&t| !net.is_alive(t)))
            .count();
        assert_eq!(dangling_after, 0, "heal must clear every dangling link");
    }

    #[test]
    fn unlink_is_the_exact_inverse_of_try_link() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let a = net
            .add_peer(
                oscar_types::Id::new(10),
                oscar_degree::DegreeCaps::symmetric(4),
            )
            .unwrap();
        let b = net
            .add_peer(
                oscar_types::Id::new(20),
                oscar_degree::DegreeCaps::symmetric(4),
            )
            .unwrap();
        net.try_link(a, b).unwrap();
        assert!(net.unlink(a, b));
        assert!(!net.unlink(a, b), "double-unlink reports absence");
        assert!(net.peer(a).long_out.is_empty());
        assert!(net.peer(b).long_in.is_empty());
        // Budget released: the link can be re-opened.
        net.try_link(a, b).unwrap();
    }

    #[test]
    fn hooks_fuzz_preserve_adjacency_invariants() {
        let mut rng = SeedTree::new(11).rng();
        for round in 0..5u64 {
            let mut net = grown(60, 100 + round);
            let start: f64 = rng.gen();
            kill_ring_arc(&mut net, start, 0.1, 2).unwrap();
            sever_arc_links(&mut net, start + 0.3, 0.2).unwrap();
            kill_top_degree(&mut net, 0.05, 1).unwrap();
            reactive_heal(&mut net, &RandomBuilder, &[], &SeedTree::new(round)).unwrap();
            for p in net.live_peers() {
                let peer = net.peer(p);
                assert!(peer.in_degree() <= peer.caps.rho_in);
                assert!(peer.out_degree() <= peer.caps.rho_out);
                for &t in &peer.long_out {
                    if net.is_alive(t) {
                        assert!(net.peer(t).long_in.contains(&p));
                    }
                }
            }
        }
    }
}
