//! Greedy clockwise routing with dead-link probing and backtracking.
//!
//! Oscar routes like Chord: a query for key `k` travels clockwise, each
//! peer forwarding to its neighbour that makes the most clockwise progress
//! without overshooting the owner (the first live peer at-or-after `k`).
//! Ring links guarantee progress; long-range links provide the
//! `O(log²N)` shortcuts.
//!
//! Under churn the paper modifies the algorithm: neighbours may be dead, a
//! forwarding attempt to a dead neighbour is discovered (timeout) and
//! counted as **wasted traffic**, and if a peer has no live neighbour that
//! makes progress the query **backtracks** to the previous peer — also
//! wasted traffic. Search cost = productive hops + wasted messages.

use crate::metrics::MsgKind;
use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_keydist::{QueryTarget, QueryWorkload};
use oscar_protocol::logic;
use oscar_types::{Id, P2Quantile};
use rand::rngs::SmallRng;
use std::collections::HashSet;

/// Routing parameters.
#[derive(Copy, Clone, Debug)]
pub struct RoutePolicy {
    /// Give-up bound on total messages per query (safety net; fault-free
    /// routing never comes near it).
    pub max_messages: u32,
    /// Use long-range links (disable for the ring-only baseline, which
    /// degrades to O(N) — a useful sanity ablation).
    pub use_long_links: bool,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        RoutePolicy {
            max_messages: 4096,
            use_long_links: true,
        }
    }
}

/// Outcome of routing one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Query reached the live owner of the key.
    pub success: bool,
    /// Productive forwarding hops.
    pub hops: u32,
    /// Wasted messages: probes of dead neighbours + backtrack moves.
    pub wasted: u32,
    /// Number of backtrack moves (subset of `wasted`).
    pub backtracks: u32,
    /// The live owner, when the query reached it.
    pub dest: Option<PeerIdx>,
}

impl RouteOutcome {
    /// The paper's search cost: every message the query generated.
    pub fn cost(&self) -> u32 {
        self.hops + self.wasted
    }
}

/// Routes a query from `src` to the live owner of `key`.
///
/// The simulation-level success criterion is oracle-checked (reaching
/// [`Network::live_owner_of`]); the *routing decisions* only use knowledge
/// a real peer has: its own neighbour list and the probe results the query
/// accumulated.
pub fn route_to_owner(net: &Network, src: PeerIdx, key: Id, policy: &RoutePolicy) -> RouteOutcome {
    route_observed(net, src, key, policy, None)
}

/// [`route_to_owner`] that additionally reports, into `probers`, every
/// peer that probed a dead neighbour along the way (possibly repeated) —
/// the peers that just *detected a failure* and, under a
/// probe-triggered maintenance policy, would now repair themselves.
fn route_observed(
    net: &Network,
    src: PeerIdx,
    key: Id,
    policy: &RoutePolicy,
    mut probers: Option<&mut Vec<PeerIdx>>,
) -> RouteOutcome {
    let mut out = RouteOutcome {
        success: false,
        hops: 0,
        wasted: 0,
        backtracks: 0,
        dest: None,
    };
    let Some(owner) = net.live_owner_of(key) else {
        return out; // empty live ring: nothing to reach
    };
    let owner_id = net.peer(owner).id;
    if src == owner {
        out.success = true;
        out.dest = Some(owner);
        return out;
    }

    // Knowledge carried by the query.
    let mut known_dead: HashSet<PeerIdx> = HashSet::new();
    let mut exhausted: HashSet<PeerIdx> = HashSet::new();
    let mut stack: Vec<PeerIdx> = Vec::new();
    let mut current = src;
    let mut neighbors: Vec<PeerIdx> = Vec::with_capacity(64);
    let mut candidates: Vec<(u64, PeerIdx)> = Vec::with_capacity(64);

    loop {
        // Success check first: arriving at the owner costs no extra
        // message, so a query that lands exactly on the budget succeeds.
        if current == owner {
            out.success = true;
            out.dest = Some(owner);
            return out;
        }
        if out.cost() >= policy.max_messages {
            return out;
        }
        let cur_potential = net.peer(current).id.cw_dist(owner_id);

        // Candidates: neighbours making strict clockwise progress toward
        // the owner, best progress first.
        net.routing_neighbors_into(current, &mut neighbors);
        candidates.clear();
        for &c in neighbors.iter() {
            if !policy.use_long_links {
                // ring-only: keep only the ring successor/predecessor
                let is_ring = Some(c) == net.ring_successor(current)
                    || Some(c) == net.ring_predecessor(current);
                if !is_ring {
                    continue;
                }
            }
            if exhausted.contains(&c) {
                continue;
            }
            // Shared kernel: the same progress ranking drives the
            // distributed PeerMachine's per-hop forwarding decision.
            if let Some(p) = logic::progress_toward(net.peer(c).id, owner_id, cur_potential) {
                candidates.push((p, c));
            }
        }
        candidates.sort_unstable_by_key(|&(p, _)| p);

        let mut forwarded = false;
        for &(_, c) in candidates.iter() {
            if known_dead.contains(&c) {
                continue; // the query already knows; skipping is free
            }
            if out.cost() >= policy.max_messages {
                return out; // budget exhausted mid-probe sequence
            }
            if !net.is_alive(c) {
                // Probe timed out: wasted traffic, remember the corpse.
                out.wasted += 1;
                known_dead.insert(c);
                if let Some(obs) = probers.as_deref_mut() {
                    obs.push(current);
                }
                continue;
            }
            // Forward.
            out.hops += 1;
            stack.push(current);
            current = c;
            forwarded = true;
            break;
        }
        if forwarded {
            continue;
        }

        // Dead end: backtrack (wasted message back along the path).
        exhausted.insert(current);
        match stack.pop() {
            Some(prev) => {
                if out.cost() >= policy.max_messages {
                    return out; // no budget left for the backtrack message
                }
                out.wasted += 1;
                out.backtracks += 1;
                current = prev;
            }
            None => return out, // nowhere left to go
        }
    }
}

/// Aggregate statistics over a batch of queries (one figure data point).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryBatchStats {
    /// Number of queries actually issued (less than requested when the
    /// network runs out of live peers).
    pub queries: usize,
    /// Mean search cost (hops + wasted), successful queries only.
    pub mean_cost: f64,
    /// Mean productive hops, successful queries only (pairs with
    /// `mean_cost`).
    pub mean_hops: f64,
    /// Mean wasted messages over **all** issued queries, failed included —
    /// the paper's wasted-traffic signal. A failed query's probes and
    /// backtracks are traffic the network paid for; dropping them would
    /// make heavy churn look cheaper the more queries it kills.
    pub mean_wasted: f64,
    /// Fraction of issued queries that reached the owner.
    pub success_rate: f64,
    /// Standard error of `mean_cost` (`s / √m` over the m successful
    /// queries) — the error bar that makes sublinear
    /// [`QueryBudget`](crate::churn_engine::QueryBudget) batches
    /// honest about their precision. Zero with fewer than two samples.
    pub se_cost: f64,
    /// Maximum observed cost among successful queries.
    pub max_cost: u32,
    /// Median cost, successful queries only: exact nearest-rank for
    /// batches of ≤ 5 successes, streaming P² estimate beyond
    /// ([`P2Quantile`]) — the batch is never buffered or sorted.
    pub p50_cost: f64,
    /// 95th-percentile cost, successful queries only (same estimator).
    pub p95_cost: f64,
}

/// Issues `n` queries from uniformly random live sources with targets
/// drawn from `workload`, and aggregates the costs.
///
/// Metrics are credited to the network ([`MsgKind::QueryHop`] /
/// [`MsgKind::QueryWasted`]).
pub fn run_query_batch(
    net: &mut Network,
    workload: &QueryWorkload,
    n: usize,
    policy: &RoutePolicy,
    rng: &mut SmallRng,
) -> QueryBatchStats {
    run_batch_observed(net, workload, n, policy, rng, None)
}

/// [`run_query_batch`] that additionally collects, into `corpse_probers`,
/// the distinct peers that probed a dead neighbour during the batch —
/// sorted by peer index, so the set is deterministic for a given network
/// and RNG stream. The continuous-churn engine's `OnProbe` repair policy
/// turns each of them into a scheduled rewire.
pub fn run_query_batch_observed(
    net: &mut Network,
    workload: &QueryWorkload,
    n: usize,
    policy: &RoutePolicy,
    rng: &mut SmallRng,
    corpse_probers: &mut Vec<PeerIdx>,
) -> QueryBatchStats {
    let stats = run_batch_observed(net, workload, n, policy, rng, Some(corpse_probers));
    corpse_probers.sort_unstable();
    corpse_probers.dedup();
    stats
}

fn run_batch_observed(
    net: &mut Network,
    workload: &QueryWorkload,
    n: usize,
    policy: &RoutePolicy,
    rng: &mut SmallRng,
    mut probers: Option<&mut Vec<PeerIdx>>,
) -> QueryBatchStats {
    // Everything streams: O(1) state regardless of batch size, which is
    // what lets a million-peer window afford its measurement batch.
    let mut p50 = P2Quantile::new(0.50);
    let mut p95 = P2Quantile::new(0.95);
    let mut cost_sum = 0.0f64;
    let mut cost_sumsq = 0.0f64;
    let mut max_cost = 0u32;
    let mut hops_sum = 0u64;
    let mut wasted_sum = 0u64;
    let mut issued = 0usize;
    let mut successes = 0usize;
    for _ in 0..n {
        let Some(src) = net.random_live_peer(rng) else {
            break;
        };
        issued += 1;
        let key = match workload.draw(net.live_count(), rng) {
            QueryTarget::PeerRank(r) => net.peer(net.live_peer_by_rank(r)).id,
            QueryTarget::Key(k) => k,
        };
        let outcome = route_observed(net, src, key, policy, probers.as_deref_mut());
        net.metrics.add(MsgKind::QueryHop, outcome.hops as u64);
        net.metrics.add(MsgKind::QueryWasted, outcome.wasted as u64);
        // Waste is traffic whether or not the query delivered.
        wasted_sum += outcome.wasted as u64;
        if outcome.success {
            successes += 1;
            let c = outcome.cost();
            let cf = c as f64;
            cost_sum += cf;
            cost_sumsq += cf * cf;
            max_cost = max_cost.max(c);
            p50.observe(cf);
            p95.observe(cf);
            hops_sum += outcome.hops as u64;
        }
    }
    let mut stats = QueryBatchStats {
        queries: issued,
        ..Default::default()
    };
    stats.success_rate = successes as f64 / issued.max(1) as f64;
    stats.mean_wasted = wasted_sum as f64 / issued.max(1) as f64;
    if successes > 0 {
        let m = successes as f64;
        stats.mean_cost = cost_sum / m;
        stats.mean_hops = hops_sum as f64 / m;
        stats.max_cost = max_cost;
        stats.p50_cost = p50.value();
        stats.p95_cost = p95.value();
        if successes > 1 {
            let var = ((cost_sumsq - cost_sum * cost_sum / m) / (m - 1.0)).max(0.0);
            stats.se_cost = (var / m).sqrt();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use oscar_degree::DegreeCaps;
    use oscar_types::SeedTree;
    use rand::Rng;

    /// Evenly spaced ring; optional random long links.
    fn test_net(n: u64, extra: usize, seed: u64, fm: FaultModel) -> Network {
        let mut net = Network::new(fm);
        let step = u64::MAX / n;
        for i in 0..n {
            net.add_peer(Id::new(i * step), DegreeCaps::symmetric(64))
                .unwrap();
        }
        let mut rng = SeedTree::new(seed).rng();
        if extra > 0 {
            for i in 0..n {
                for _ in 0..extra {
                    let j = rng.gen_range(0..n);
                    let _ = net.try_link(PeerIdx(i as u32), PeerIdx(j as u32));
                }
            }
        }
        net
    }

    #[test]
    fn self_query_costs_nothing() {
        let net = test_net(8, 0, 1, FaultModel::StabilizedRing);
        let src = PeerIdx(3);
        let key = net.peer(src).id;
        let o = route_to_owner(&net, src, key, &RoutePolicy::default());
        assert!(o.success);
        assert_eq!(o.cost(), 0);
    }

    #[test]
    fn arriving_on_exactly_the_budget_is_a_success() {
        // One hop to the ring successor, budget of exactly one message:
        // arrival itself costs nothing, so the query must succeed.
        let net = test_net(8, 0, 1, FaultModel::StabilizedRing);
        let src = PeerIdx(3);
        let owner = net.ring_successor(src).unwrap();
        let key = net.peer(owner).id;
        let policy = RoutePolicy {
            max_messages: 1,
            use_long_links: true,
        };
        let o = route_to_owner(&net, src, key, &policy);
        assert!(o.success, "owner reached within budget must count");
        assert_eq!(o.dest, Some(owner));
        assert_eq!(o.cost(), 1);
    }

    #[test]
    fn ring_only_routing_reaches_owner() {
        let net = test_net(32, 0, 2, FaultModel::StabilizedRing);
        let policy = RoutePolicy::default();
        let mut rng = SeedTree::new(3).rng();
        for _ in 0..100 {
            let src = net.random_live_peer(&mut rng).unwrap();
            let key = Id::new(rng.gen());
            let o = route_to_owner(&net, src, key, &policy);
            assert!(o.success);
            assert_eq!(o.wasted, 0, "no faults, no waste");
            assert!(o.hops <= 32);
        }
    }

    #[test]
    fn long_links_cut_path_length() {
        let n = 256;
        let ring_only = test_net(n, 0, 4, FaultModel::StabilizedRing);
        let with_links = test_net(n, 6, 4, FaultModel::StabilizedRing);
        let policy = RoutePolicy::default();
        let mut rng = SeedTree::new(5).rng();
        let mut cost = |net: &Network| {
            let mut total = 0u64;
            for _ in 0..200 {
                let src = net.random_live_peer(&mut rng).unwrap();
                let key = Id::new(rng.gen());
                let o = route_to_owner(net, src, key, &policy);
                assert!(o.success);
                total += o.cost() as u64;
            }
            total
        };
        let slow = cost(&ring_only);
        let fast = cost(&with_links);
        assert!(
            fast * 3 < slow,
            "random long links should cut cost ≥3x: ring={slow}, links={fast}"
        );
    }

    #[test]
    fn ring_only_policy_ignores_long_links() {
        let net = test_net(64, 6, 6, FaultModel::StabilizedRing);
        let policy = RoutePolicy {
            use_long_links: false,
            ..Default::default()
        };
        // Route between antipodal peers: ring-only must walk ~n/2 hops.
        let src = PeerIdx(0);
        let key = net.peer(PeerIdx(32)).id;
        let o = route_to_owner(&net, src, key, &policy);
        assert!(o.success);
        assert!(o.hops >= 30, "took shortcut with {} hops", o.hops);
    }

    #[test]
    fn routing_makes_clockwise_progress_only() {
        // Query the immediate predecessor: clockwise routing must walk
        // nearly the whole ring (it never steps backwards past the owner).
        let net = test_net(16, 0, 7, FaultModel::StabilizedRing);
        let src = PeerIdx(1);
        let key = net.peer(PeerIdx(0)).id;
        let o = route_to_owner(&net, src, key, &RoutePolicy::default());
        assert!(o.success);
        // owner is peer 0, one counter-clockwise step away but 15 clockwise
        // hops; the predecessor ring link gives exactly one hop though,
        // since pred(1) == 0 makes progress in clockwise potential.
        assert_eq!(o.hops, 1, "predecessor link is a valid progress step");
    }

    #[test]
    fn stabilized_churn_wastes_but_succeeds() {
        let mut net = test_net(128, 5, 8, FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(9).rng();
        crate::churn::kill_fraction(&mut net, 0.33, &mut rng).unwrap();
        let policy = RoutePolicy::default();
        let mut any_waste = false;
        for _ in 0..300 {
            let src = net.random_live_peer(&mut rng).unwrap();
            // target a live peer's id so the owner is that peer
            let key = net.peer(net.random_live_peer(&mut rng).unwrap()).id;
            let o = route_to_owner(&net, src, key, &policy);
            assert!(o.success, "stabilised ring must always deliver");
            any_waste |= o.wasted > 0;
        }
        assert!(any_waste, "33% dead long-links should cause some waste");
    }

    #[test]
    fn observed_batch_reports_corpse_probers_without_changing_stats() {
        let mut net = test_net(128, 5, 8, FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(9).rng();
        crate::churn::kill_fraction(&mut net, 0.33, &mut rng).unwrap();
        let policy = RoutePolicy::default();
        let workload = QueryWorkload::UniformPeers;

        // Same derived stream for both batches: the observer must be a
        // pure tap, not a behaviour change.
        let mut plain_rng = SeedTree::new(77).rng();
        let plain = run_query_batch(&mut net, &workload, 200, &policy, &mut plain_rng);
        let mut obs_rng = SeedTree::new(77).rng();
        let mut probers = Vec::new();
        let observed = run_query_batch_observed(
            &mut net,
            &workload,
            200,
            &policy,
            &mut obs_rng,
            &mut probers,
        );
        assert_eq!(plain, observed);

        // Waste happened, so somebody probed a corpse; each reported
        // prober is live and actually holds a dangling out-link or a
        // view-visible dead ring neighbour.
        assert!(observed.mean_wasted > 0.0);
        assert!(!probers.is_empty(), "corpse probes imply probers");
        let mut sorted = probers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(probers, sorted, "probers are sorted + deduplicated");
        let mut buf = Vec::new();
        for &p in &probers {
            assert!(net.is_alive(p), "a dead peer cannot probe");
            net.routing_neighbors_into(p, &mut buf);
            assert!(
                buf.iter().any(|&c| !net.is_alive(c)),
                "{p:?} reported as prober but has no dead routing neighbour"
            );
        }

        // A fault-free network never reports probers.
        let clean = test_net(64, 4, 12, FaultModel::StabilizedRing);
        let mut net = clean;
        let mut rng = SeedTree::new(13).rng();
        let mut none = Vec::new();
        run_query_batch_observed(&mut net, &workload, 100, &policy, &mut rng, &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn unstabilized_churn_succeeds_via_successor_lists() {
        let mut net = test_net(128, 3, 10, FaultModel::UnstabilizedRing);
        let mut rng = SeedTree::new(11).rng();
        crate::churn::kill_fraction(&mut net, 0.33, &mut rng).unwrap();
        let policy = RoutePolicy::default();
        let mut successes = 0usize;
        let mut wasted = 0u64;
        for _ in 0..300 {
            let src = net.random_live_peer(&mut rng).unwrap();
            let key = net.peer(net.random_live_peer(&mut rng).unwrap()).id;
            let o = route_to_owner(&net, src, key, &policy);
            successes += o.success as usize;
            wasted += o.wasted as u64;
        }
        assert!(wasted > 0, "dead pointers should cost probes");
        // Chord-length successor lists keep the ring navigable.
        assert!(successes > 280, "only {successes}/300 succeeded");
    }

    #[test]
    fn unstabilized_short_successor_list_backtracks() {
        let mut net = test_net(128, 3, 10, FaultModel::UnstabilizedRing);
        net.set_succ_list_len(1);
        let mut rng = SeedTree::new(11).rng();
        crate::churn::kill_fraction(&mut net, 0.33, &mut rng).unwrap();
        let policy = RoutePolicy::default();
        let mut backtracks = 0u64;
        let mut successes = 0usize;
        for _ in 0..300 {
            let src = net.random_live_peer(&mut rng).unwrap();
            let key = net.peer(net.random_live_peer(&mut rng).unwrap()).id;
            let o = route_to_owner(&net, src, key, &policy);
            successes += o.success as usize;
            backtracks += o.backtracks as u64;
        }
        assert!(
            backtracks > 0,
            "single successor pointers should force backtracking"
        );
        // Some queries succeed through long-link detours, many dead-end.
        assert!(successes > 60, "only {successes}/300 succeeded");
        assert!(
            successes < 300,
            "a 1-entry successor list cannot be perfect"
        );
    }

    #[test]
    fn message_budget_bounds_cost() {
        let mut net = test_net(64, 0, 12, FaultModel::UnstabilizedRing);
        let mut rng = SeedTree::new(13).rng();
        crate::churn::kill_fraction(&mut net, 0.5, &mut rng).unwrap();
        let policy = RoutePolicy {
            max_messages: 16,
            use_long_links: true,
        };
        for _ in 0..100 {
            let Some(src) = net.random_live_peer(&mut rng) else {
                break;
            };
            let key = Id::new(rng.gen());
            let o = route_to_owner(&net, src, key, &policy);
            assert!(o.cost() <= 17, "cost {} blew the budget", o.cost());
        }
    }

    #[test]
    fn batch_stats_are_consistent() {
        let mut net = test_net(128, 5, 14, FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(15).rng();
        let stats = run_query_batch(
            &mut net,
            &QueryWorkload::UniformPeers,
            200,
            &RoutePolicy::default(),
            &mut rng,
        );
        assert_eq!(stats.queries, 200);
        assert_eq!(stats.success_rate, 1.0);
        assert!(stats.mean_cost >= stats.mean_hops);
        assert!(stats.p50_cost <= stats.p95_cost);
        assert!(stats.p95_cost <= stats.max_cost as f64);
        assert!(stats.mean_cost > 0.0, "nonzero cost expected");
        assert!(net.metrics.get(MsgKind::QueryHop) > 0);
    }

    #[test]
    fn batch_on_empty_network_is_safe() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(16).rng();
        let stats = run_query_batch(
            &mut net,
            &QueryWorkload::UniformKeys,
            10,
            &RoutePolicy::default(),
            &mut rng,
        );
        assert_eq!(stats.success_rate, 0.0);
        // Nothing could be issued, so nothing may be counted: reporting the
        // requested 10 here would fabricate a denominator.
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.mean_wasted, 0.0);
    }

    #[test]
    fn failed_queries_count_their_waste() {
        // Ring 10,20,30,40 with 20 crashed, unstabilised pointers, and a
        // single-entry successor list: a query from 10 toward 30 has the
        // dead 20 as its only progress candidate — one wasted probe, then a
        // dead end. Every successful route in this topology is probe-free,
        // so the former successful-only accounting reported mean_wasted = 0
        // while the network was in fact paying for the failures.
        let mut net = Network::new(FaultModel::UnstabilizedRing);
        for id in [10u64, 20, 30, 40] {
            net.add_peer(Id::new(id), DegreeCaps::symmetric(8)).unwrap();
        }
        net.set_succ_list_len(1);
        net.kill(net.idx_of(Id::new(20)).unwrap()).unwrap();
        let mut rng = SeedTree::new(17).rng();
        let stats = run_query_batch(
            &mut net,
            &QueryWorkload::UniformPeers,
            200,
            &RoutePolicy::default(),
            &mut rng,
        );
        assert_eq!(stats.queries, 200);
        assert!(stats.success_rate > 0.0 && stats.success_rate < 1.0);
        assert!(
            stats.mean_wasted > 0.0,
            "failed queries' probes must appear in mean_wasted"
        );
    }

    #[test]
    fn streaming_percentiles_keep_small_batches_exact() {
        // The P² estimators behind p50/p95 are exact nearest-rank for up
        // to five observations: len 4 p50 is the lower median (rank
        // ⌈0.5·4⌉ = 2), matching the sorted-buffer behaviour they
        // replaced.
        let feed = |p: f64, xs: &[u32]| {
            let mut est = P2Quantile::new(p);
            for &x in xs {
                est.observe(x as f64);
            }
            est.value()
        };
        assert_eq!(feed(0.50, &[4, 2, 1, 3]), 2.0);
        assert_eq!(feed(0.50, &[5, 1, 4, 2, 3]), 3.0);
        // singletons: every percentile is the one sample
        assert_eq!(feed(0.50, &[7]), 7.0);
        assert_eq!(feed(0.95, &[7]), 7.0);
        // Beyond the bootstrap the estimate is approximate but stays
        // inside the observed range.
        let v: Vec<u32> = (1..=20).collect();
        let p95 = feed(0.95, &v);
        assert!((1.0..=20.0).contains(&p95), "p95 {p95} escaped the sample");
    }

    #[test]
    fn se_cost_reports_the_batch_standard_error() {
        let mut net = test_net(128, 5, 14, FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(23).rng();
        let stats = run_query_batch(
            &mut net,
            &QueryWorkload::UniformPeers,
            200,
            &RoutePolicy::default(),
            &mut rng,
        );
        assert!(stats.se_cost > 0.0, "non-degenerate costs have spread");
        // s/√m is far below the spread itself for a 200-query batch.
        assert!(stats.se_cost < stats.mean_cost);
    }
}
