//! Crash injection and fault models.
//!
//! The paper's churn experiments crash 10% or 33% of the population
//! uniformly at random, assume the ring re-stabilises (Chord maintenance),
//! and leave long-range links dangling. [`FaultModel`] selects whether the
//! ring-link view honours that assumption; [`kill_fraction`] injects the
//! crash wave.

use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_types::{Error, Result};
use rand::Rng;

/// How ring links behave after crashes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Ring links are re-stitched across dead peers (the paper's
    /// assumption: Chord-style self-stabilisation has converged).
    StabilizedRing,
    /// Ring links still point at their pre-crash targets; routing must
    /// probe, fail, and backtrack. Ablation A4 quantifies the difference.
    UnstabilizedRing,
}

/// Crashes `fraction` of the **live** population, chosen uniformly at
/// random. Returns the crashed peers.
///
/// The sampling is a partial Fisher–Yates over the live peer list, so each
/// subset of the requested size is equally likely.
pub fn kill_fraction<R: Rng + ?Sized>(
    net: &mut Network,
    fraction: f64,
    rng: &mut R,
) -> Result<Vec<PeerIdx>> {
    // A bad fraction is an experiment-configuration error like any other in
    // this API (cf. `Network::add_peer`, `depart`): report it, don't abort
    // the whole sweep. The range check also rejects NaN.
    if !(0.0..1.0).contains(&fraction) {
        return Err(Error::InvalidConfig(format!(
            "kill fraction must be in [0, 1), got {fraction}: \
             killing everyone leaves nothing to measure"
        )));
    }
    let mut live: Vec<PeerIdx> = net.live_peers().collect();
    // round() can reach live.len() for fractions ≥ (n-0.5)/n; clamp so the
    // [0, 1) contract (at least one survivor) holds for every input.
    let kill_count =
        ((live.len() as f64 * fraction).round() as usize).min(live.len().saturating_sub(1));
    let mut killed = Vec::with_capacity(kill_count);
    for k in 0..kill_count {
        let j = rng.gen_range(k..live.len());
        live.swap(k, j);
        let victim = live[k];
        net.kill(victim)?;
        killed.push(victim);
    }
    Ok(killed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_types::{Id, SeedTree};

    fn build(n: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        for i in 0..n {
            net.add_peer(Id::new(i * 1000 + 1), DegreeCaps::symmetric(4))
                .unwrap();
        }
        net
    }

    #[test]
    fn kills_requested_fraction() {
        let mut net = build(1000);
        let mut rng = SeedTree::new(1).rng();
        let killed = kill_fraction(&mut net, 0.33, &mut rng).unwrap();
        assert_eq!(killed.len(), 330);
        assert_eq!(net.live_count(), 670);
        for k in &killed {
            assert!(!net.is_alive(*k));
        }
    }

    #[test]
    fn zero_fraction_kills_nobody() {
        let mut net = build(100);
        let mut rng = SeedTree::new(2).rng();
        let killed = kill_fraction(&mut net, 0.0, &mut rng).unwrap();
        assert!(killed.is_empty());
        assert_eq!(net.live_count(), 100);
    }

    #[test]
    fn out_of_range_fractions_are_config_errors() {
        let mut net = build(10);
        let mut rng = SeedTree::new(3).rng();
        for bad in [1.0, -0.1, 2.0, f64::NAN] {
            match kill_fraction(&mut net, bad, &mut rng) {
                Err(oscar_types::Error::InvalidConfig(msg)) => {
                    assert!(msg.contains("kill fraction"), "unhelpful message: {msg}")
                }
                other => panic!("fraction {bad} should be InvalidConfig, got {other:?}"),
            }
        }
        // and the failed call must not have killed anyone
        assert_eq!(net.live_count(), 10);
    }

    #[test]
    fn near_one_fraction_leaves_a_survivor() {
        // round(10 · 0.95) = 10 would kill everyone; the clamp must keep
        // the documented "something left to measure" invariant.
        let mut net = build(10);
        let mut rng = SeedTree::new(4).rng();
        let killed = kill_fraction(&mut net, 0.95, &mut rng).unwrap();
        assert_eq!(killed.len(), 9);
        assert_eq!(net.live_count(), 1);
    }

    #[test]
    fn kill_selection_is_roughly_uniform() {
        // Kill 50% many times; every peer should die in roughly half the
        // trials (crude uniformity check with fixed seed, generous bounds).
        let trials = 200;
        let n = 40;
        let mut death_counts = vec![0u32; n];
        for t in 0..trials {
            let mut net = build(n as u64);
            let mut rng = SeedTree::new(100 + t).rng();
            for k in kill_fraction(&mut net, 0.5, &mut rng).unwrap() {
                death_counts[k.as_usize()] += 1;
            }
        }
        for (i, &c) in death_counts.iter().enumerate() {
            assert!(
                (60..140).contains(&c),
                "peer {i} died {c}/200 times; selection biased"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = build(100);
        let mut b = build(100);
        let ka = kill_fraction(&mut a, 0.1, &mut SeedTree::new(9).rng()).unwrap();
        let kb = kill_fraction(&mut b, 0.1, &mut SeedTree::new(9).rng()).unwrap();
        assert_eq!(ka, kb);
    }
}
