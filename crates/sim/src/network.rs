//! The simulated network: peers, liveness, rings, long-range adjacency.

use crate::churn::FaultModel;
use crate::metrics::{Metrics, MsgKind};
use crate::peer::{LinkError, Peer, PeerIdx};
use oscar_degree::DegreeCaps;
use oscar_ring::Ring;
use oscar_types::{Error, Id, Result};
use rand::Rng;
use std::collections::HashMap;

/// The whole simulated network.
///
/// Two ring views coexist:
/// * `ring_all` — every peer ever added, dead or alive. This is the
///   *unstabilised* view: a peer's successor pointer may dangle onto a
///   crashed peer.
/// * `ring_live` — live peers only, i.e. the state Chord-style
///   stabilisation converges to. The paper's churn experiments assume this
///   view for ring links.
///
/// Long-range links are directed; crashing a peer leaves the links pointing
/// *at* it dangling in the owners' adjacency (probing them is the "wasted
/// traffic" of the paper), while its own outgoing links are torn down.
///
/// `Network` is `Clone`, deliberately: churn experiments snapshot the grown
/// network, crash the clone, and measure it, so one growth run feeds many
/// failure scenarios.
#[derive(Clone)]
pub struct Network {
    peers: Vec<Peer>,
    by_id: HashMap<u64, PeerIdx>,
    ring_all: Ring,
    ring_live: Ring,
    // O(1) ring-neighbour pointers (the construction/measurement hot path
    // walks these hundreds of millions of times per figure; binary
    // searches here would dominate the whole simulation).
    //
    // The "all" list is spliced at insert only — crashed peers stay in
    // their neighbours' pointers, which is exactly the unstabilised-ring
    // semantics. The "live" list is additionally spliced at kill, giving
    // the stabilised (converged Chord maintenance) semantics.
    next_all: Vec<PeerIdx>,
    prev_all: Vec<PeerIdx>,
    next_live: Vec<PeerIdx>,
    prev_live: Vec<PeerIdx>,
    fault_model: FaultModel,
    succ_list_len: usize,
    /// Message accounting for the whole simulation.
    pub metrics: Metrics,
}

impl Network {
    /// Empty network under the given fault model.
    pub fn new(fault_model: FaultModel) -> Self {
        Network {
            peers: Vec::new(),
            by_id: HashMap::new(),
            ring_all: Ring::new(),
            ring_live: Ring::new(),
            next_all: Vec::new(),
            prev_all: Vec::new(),
            next_live: Vec::new(),
            prev_live: Vec::new(),
            fault_model,
            succ_list_len: 8,
            metrics: Metrics::new(),
        }
    }

    /// Length of the Chord-style successor list peers maintain. Only the
    /// unstabilised view consults entries beyond the first: with a single
    /// successor pointer a crash wave partitions the ring, which is why
    /// Chord prescribes `O(log N)` successors. Default 8.
    pub fn succ_list_len(&self) -> usize {
        self.succ_list_len
    }

    /// Sets the successor-list length (ablation A4 uses 1 to show how much
    /// backtracking the list prevents).
    pub fn set_succ_list_len(&mut self, len: usize) {
        assert!(len >= 1, "peers always know at least their successor");
        self.succ_list_len = len;
    }

    /// The configured fault model.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Changes the fault model (used by ablations; cheap — the views are
    /// both maintained continuously).
    pub fn set_fault_model(&mut self, fm: FaultModel) {
        self.fault_model = fm;
    }

    /// Total peers ever added (live + dead).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True iff no peer was ever added.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of live peers.
    pub fn live_count(&self) -> usize {
        self.ring_live.len()
    }

    /// Adds a live peer; errors on duplicate identifier.
    pub fn add_peer(&mut self, id: Id, caps: DegreeCaps) -> Result<PeerIdx> {
        if self.by_id.contains_key(&id.raw()) {
            return Err(Error::InvalidConfig(format!(
                "duplicate peer identifier {id}"
            )));
        }
        let idx = PeerIdx(self.peers.len() as u32);
        // Splice into the "all" ring list: between the current owner's
        // predecessor and the owner (i.e. at the sorted position).
        let (next_a, prev_a) = match self.ring_all.successor_of(id) {
            Some(succ_id) if succ_id != id => {
                let succ = self.by_id[&succ_id.raw()];
                (succ, self.prev_all[succ.as_usize()])
            }
            _ => (idx, idx), // first peer: self-loop
        };
        let (next_l, prev_l) = match self.ring_live.successor_of(id) {
            Some(succ_id) if succ_id != id => {
                let succ = self.by_id[&succ_id.raw()];
                (succ, self.prev_live[succ.as_usize()])
            }
            _ => (idx, idx),
        };
        self.peers.push(Peer::new(id, caps));
        self.next_all.push(next_a);
        self.prev_all.push(prev_a);
        self.next_live.push(next_l);
        self.prev_live.push(prev_l);
        self.next_all[prev_a.as_usize()] = idx;
        self.prev_all[next_a.as_usize()] = idx;
        self.next_live[prev_l.as_usize()] = idx;
        self.prev_live[next_l.as_usize()] = idx;
        self.by_id.insert(id.raw(), idx);
        self.ring_all.insert(id);
        self.ring_live.insert(id);
        Ok(idx)
    }

    /// Peer state by index.
    ///
    /// # Panics
    /// On out-of-range index (indices come from this network, so a bad one
    /// is a programming error, not a simulation condition).
    pub fn peer(&self, idx: PeerIdx) -> &Peer {
        &self.peers[idx.as_usize()]
    }

    /// Index of the peer with identifier `id`.
    pub fn idx_of(&self, id: Id) -> Option<PeerIdx> {
        self.by_id.get(&id.raw()).copied()
    }

    /// Liveness of a peer.
    #[inline]
    pub fn is_alive(&self, idx: PeerIdx) -> bool {
        self.peers[idx.as_usize()].alive
    }

    /// The full ring (live + dead) — the unstabilised view.
    pub fn ring_all(&self) -> &Ring {
        &self.ring_all
    }

    /// The live ring — the stabilised view.
    pub fn ring_live(&self) -> &Ring {
        &self.ring_live
    }

    /// The ring view a peer uses for its ring links, per the fault model.
    pub fn ring_view(&self) -> &Ring {
        match self.fault_model {
            FaultModel::StabilizedRing => &self.ring_live,
            FaultModel::UnstabilizedRing => &self.ring_all,
        }
    }

    /// The live peer owning `key` (ground truth for query success).
    pub fn live_owner_of(&self, key: Id) -> Option<PeerIdx> {
        self.ring_live.owner_of(key).and_then(|id| self.idx_of(id))
    }

    /// The live peer with the given ring rank (for workload resolution).
    ///
    /// # Panics
    /// If `rank >= live_count()`.
    pub fn live_peer_by_rank(&self, rank: usize) -> PeerIdx {
        let id = self.ring_live.select(rank);
        self.idx_of(id).expect("live ring ids are registered")
    }

    /// A uniformly random live peer (experimenter's view; used to pick
    /// query sources, matching the paper's "N random queries").
    pub fn random_live_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PeerIdx> {
        if self.ring_live.is_empty() {
            return None;
        }
        Some(self.live_peer_by_rank(rng.gen_range(0..self.ring_live.len())))
    }

    /// Ring successor of peer `idx` under the current fault-model view
    /// (O(1) pointer read). Returns `idx` itself in a singleton network,
    /// mirroring `Ring::successor_of`.
    pub fn ring_successor(&self, idx: PeerIdx) -> Option<PeerIdx> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.fault_model {
            FaultModel::StabilizedRing => self.next_live[idx.as_usize()],
            FaultModel::UnstabilizedRing => self.next_all[idx.as_usize()],
        })
    }

    /// Ring predecessor of peer `idx` under the current fault-model view
    /// (O(1) pointer read).
    pub fn ring_predecessor(&self, idx: PeerIdx) -> Option<PeerIdx> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.fault_model {
            FaultModel::StabilizedRing => self.prev_live[idx.as_usize()],
            FaultModel::UnstabilizedRing => self.prev_all[idx.as_usize()],
        })
    }

    /// Attempts to establish the directed long-range link `from -> to`,
    /// enforcing both degree budgets. Refusals due to the target's
    /// `ρ_in_max` are the paper's heterogeneity mechanism and are counted
    /// in the metrics; other rejections are caller bugs or races and are
    /// not.
    pub fn try_link(&mut self, from: PeerIdx, to: PeerIdx) -> std::result::Result<(), LinkError> {
        if from == to {
            return Err(LinkError::SelfLink);
        }
        let (fi, ti) = (from.as_usize(), to.as_usize());
        if !self.peers[fi].alive || !self.peers[ti].alive {
            return Err(LinkError::Dead);
        }
        if self.peers[fi].long_out.contains(&to) {
            return Err(LinkError::Duplicate);
        }
        if !self.peers[fi].can_open_out() {
            return Err(LinkError::SourceFull);
        }
        self.metrics.inc(MsgKind::LinkRequest);
        if !self.peers[ti].accepts_in() {
            self.metrics.inc(MsgKind::LinkRefuse);
            return Err(LinkError::TargetFull);
        }
        self.metrics.inc(MsgKind::LinkAccept);
        self.peers[fi].long_out.push(to);
        self.peers[ti].long_in.push(from);
        Ok(())
    }

    /// Tears down all outgoing long-range links of `from` (rewiring step),
    /// releasing the corresponding in-degree budget at the targets.
    pub fn unlink_long_out(&mut self, from: PeerIdx) {
        let targets = std::mem::take(&mut self.peers[from.as_usize()].long_out);
        for t in targets {
            let tp = &mut self.peers[t.as_usize()];
            if let Some(pos) = tp.long_in.iter().position(|&s| s == from) {
                tp.long_in.swap_remove(pos);
            }
        }
    }

    /// Graceful departure: the peer announces it is leaving, so *all* of
    /// its links (in and out) are torn down cleanly — no dangling
    /// references, unlike [`Network::kill`]. The ring re-stitches in both
    /// views (a leaving peer hands over to its neighbours before going).
    pub fn depart(&mut self, idx: PeerIdx) -> Result<()> {
        let i = idx.as_usize();
        if i >= self.peers.len() {
            return Err(Error::UnknownPeer(i));
        }
        if !self.peers[i].alive {
            return Err(Error::PeerDead(i));
        }
        // Notify in-link sources: they drop their links to us.
        let sources = std::mem::take(&mut self.peers[i].long_in);
        for s in sources {
            let sp = &mut self.peers[s.as_usize()];
            if let Some(pos) = sp.long_out.iter().position(|&t| t == idx) {
                sp.long_out.swap_remove(pos);
            }
        }
        // Tear down our own out-links (releases budget at targets).
        self.unlink_long_out(idx);
        self.peers[i].alive = false;
        let id = self.peers[i].id;
        self.ring_live.remove(id);
        self.ring_all.remove(id);
        // Splice out of both ring lists: a graceful leave repairs pointers.
        let (ln, lp) = (self.next_live[i], self.prev_live[i]);
        self.next_live[lp.as_usize()] = ln;
        self.prev_live[ln.as_usize()] = lp;
        let (an, ap) = (self.next_all[i], self.prev_all[i]);
        self.next_all[ap.as_usize()] = an;
        self.prev_all[an.as_usize()] = ap;
        self.by_id.remove(&id.raw());
        Ok(())
    }

    /// Crashes a peer: removes it from the live ring, tears down its
    /// outgoing links (releasing budget at targets), and clears its
    /// incoming bookkeeping — while the *sources* of those incoming links
    /// keep dangling references to it (the wasted-traffic source).
    pub fn kill(&mut self, idx: PeerIdx) -> Result<()> {
        let i = idx.as_usize();
        if i >= self.peers.len() {
            return Err(Error::UnknownPeer(i));
        }
        if !self.peers[i].alive {
            return Err(Error::PeerDead(i));
        }
        self.peers[i].alive = false;
        let id = self.peers[i].id;
        self.ring_live.remove(id);
        // Splice out of the live ring list (stabilisation); the "all" list
        // keeps pointing at the corpse (unstabilised semantics). The dead
        // peer's own live pointers go stale, which is fine: nothing reads
        // a dead peer's ring neighbours in the stabilised view.
        let (ln, lp) = (self.next_live[i], self.prev_live[i]);
        self.next_live[lp.as_usize()] = ln;
        self.prev_live[ln.as_usize()] = lp;
        // Outgoing links vanish with the peer.
        let targets = std::mem::take(&mut self.peers[i].long_out);
        for t in targets {
            let tp = &mut self.peers[t.as_usize()];
            if let Some(pos) = tp.long_in.iter().position(|&s| s == idx) {
                tp.long_in.swap_remove(pos);
            }
        }
        // Incoming bookkeeping is cleared; the sources keep dangling
        // `long_out` entries pointing here until they rewire.
        self.peers[i].long_in.clear();
        Ok(())
    }

    /// Collects the **routing** neighbours of `idx` into `buf` (cleared
    /// first): the successor list and predecessor under the fault-model
    /// view plus all outgoing long-range links (possibly dangling).
    ///
    /// Both views expose the same-length successor list (peers maintain it
    /// regardless of fault state); they differ in *which ring* it is read
    /// from — the stabilised list contains live peers only, the
    /// unstabilised one may contain corpses.
    ///
    /// `buf` is a caller-owned workhorse buffer to keep the routing hot
    /// path allocation-free.
    pub fn routing_neighbors_into(&self, idx: PeerIdx, buf: &mut Vec<PeerIdx>) {
        buf.clear();
        // Successor list: follow the view's next pointers. Duplicates with
        // long links are tolerated (routing treats candidates in order and
        // skips repeats for free), which keeps this hot path scan-free.
        let next: &[PeerIdx] = match self.fault_model {
            FaultModel::StabilizedRing => &self.next_live,
            FaultModel::UnstabilizedRing => &self.next_all,
        };
        let mut cur = idx;
        for _ in 0..self.succ_list_len {
            cur = next[cur.as_usize()];
            if cur == idx {
                break; // wrapped all the way around
            }
            buf.push(cur);
        }
        if let Some(p) = self.ring_predecessor(idx) {
            if p != idx {
                buf.push(p);
            }
        }
        buf.extend_from_slice(&self.peers[idx.as_usize()].long_out);
    }

    /// Collects the **walk** neighbours of `idx` into `buf` (cleared
    /// first): the undirected view — one ring successor and predecessor
    /// plus outgoing and incoming long-range links. Random walks mix much
    /// faster on the undirected graph, and a link is a TCP connection both
    /// endpoints can send on, so this is also the realistic choice.
    ///
    /// The collection is multiset semantics (duplicates possible between
    /// ring and long links): a Metropolis–Hastings walk over a multigraph
    /// with multiset degrees still converges to the uniform distribution,
    /// and skipping deduplication keeps the hottest loop in the simulator
    /// linear in the degree.
    pub fn walk_neighbors_into(&self, idx: PeerIdx, buf: &mut Vec<PeerIdx>) {
        buf.clear();
        if let Some(s) = self.ring_successor(idx) {
            if s != idx {
                buf.push(s);
            }
        }
        if let Some(p) = self.ring_predecessor(idx) {
            if p != idx {
                buf.push(p);
            }
        }
        let peer = &self.peers[idx.as_usize()];
        buf.extend_from_slice(&peer.long_out);
        buf.extend_from_slice(&peer.long_in);
    }

    /// Snapshot of `(in_degree, ρ_in_max)` for every **live** peer — the
    /// raw data of Figure 1(b).
    pub fn degree_load_snapshot(&self) -> Vec<(u32, u32)> {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| (p.in_degree(), p.caps.rho_in))
            .collect()
    }

    /// Iterates all peer indices (live and dead).
    pub fn all_peers(&self) -> impl Iterator<Item = PeerIdx> {
        (0..self.peers.len() as u32).map(PeerIdx)
    }

    /// Iterates live peer indices.
    pub fn live_peers(&self) -> impl Iterator<Item = PeerIdx> + '_ {
        self.all_peers().filter(|&i| self.is_alive(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(n: u32) -> DegreeCaps {
        DegreeCaps::symmetric(n)
    }

    fn net_with(ids: &[u64]) -> (Network, Vec<PeerIdx>) {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let idxs = ids
            .iter()
            .map(|&id| net.add_peer(Id::new(id), caps(4)).unwrap())
            .collect();
        (net, idxs)
    }

    #[test]
    fn add_and_lookup() {
        let (net, idxs) = net_with(&[10, 20, 30]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.live_count(), 3);
        assert_eq!(net.idx_of(Id::new(20)), Some(idxs[1]));
        assert_eq!(net.peer(idxs[0]).id, Id::new(10));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        net.add_peer(Id::new(5), caps(2)).unwrap();
        assert!(net.add_peer(Id::new(5), caps(2)).is_err());
    }

    #[test]
    fn link_budgets_enforced() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        // shrink 20's in budget to 1
        let mut small = Network::new(FaultModel::StabilizedRing);
        let a = small.add_peer(Id::new(1), caps(5)).unwrap();
        let b = small
            .add_peer(
                Id::new(2),
                DegreeCaps {
                    rho_in: 1,
                    rho_out: 5,
                },
            )
            .unwrap();
        let c = small.add_peer(Id::new(3), caps(5)).unwrap();
        assert_eq!(small.try_link(a, b), Ok(()));
        assert_eq!(small.try_link(c, b), Err(LinkError::TargetFull));
        assert_eq!(small.metrics.get(MsgKind::LinkRefuse), 1);
        assert_eq!(small.metrics.get(MsgKind::LinkAccept), 1);

        // self / duplicate / source-full on the other network
        assert_eq!(net.try_link(idxs[0], idxs[0]), Err(LinkError::SelfLink));
        net.try_link(idxs[0], idxs[1]).unwrap();
        assert_eq!(net.try_link(idxs[0], idxs[1]), Err(LinkError::Duplicate));
    }

    #[test]
    fn source_budget_enforced() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let a = net
            .add_peer(
                Id::new(1),
                DegreeCaps {
                    rho_in: 9,
                    rho_out: 1,
                },
            )
            .unwrap();
        let b = net.add_peer(Id::new(2), caps(9)).unwrap();
        let c = net.add_peer(Id::new(3), caps(9)).unwrap();
        net.try_link(a, b).unwrap();
        assert_eq!(net.try_link(a, c), Err(LinkError::SourceFull));
    }

    #[test]
    fn unlink_releases_budget() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let a = net.add_peer(Id::new(1), caps(3)).unwrap();
        let b = net
            .add_peer(
                Id::new(2),
                DegreeCaps {
                    rho_in: 1,
                    rho_out: 3,
                },
            )
            .unwrap();
        let c = net.add_peer(Id::new(3), caps(3)).unwrap();
        net.try_link(a, b).unwrap();
        assert_eq!(net.try_link(c, b), Err(LinkError::TargetFull));
        net.unlink_long_out(a);
        assert_eq!(net.peer(b).in_degree(), 0);
        assert_eq!(net.try_link(c, b), Ok(()));
    }

    #[test]
    fn kill_updates_views_and_budgets() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40]);
        net.try_link(idxs[0], idxs[2]).unwrap(); // 10 -> 30
        net.try_link(idxs[2], idxs[3]).unwrap(); // 30 -> 40
        net.kill(idxs[2]).unwrap(); // kill 30
        assert!(!net.is_alive(idxs[2]));
        assert_eq!(net.live_count(), 3);
        assert!(net.ring_all().contains(Id::new(30)), "full ring keeps dead");
        assert!(!net.ring_live().contains(Id::new(30)));
        // 30's outgoing link to 40 released 40's in budget
        assert_eq!(net.peer(idxs[3]).in_degree(), 0);
        // 10 keeps a dangling long_out to 30
        assert!(net.peer(idxs[0]).long_out.contains(&idxs[2]));
        // double-kill errors
        assert!(net.kill(idxs[2]).is_err());
    }

    #[test]
    fn ring_neighbors_follow_fault_model() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.kill(idxs[1]).unwrap(); // kill 20
                                    // stabilised: successor of 10 skips the dead 20
        assert_eq!(net.ring_successor(idxs[0]), Some(idxs[2]));
        net.set_fault_model(FaultModel::UnstabilizedRing);
        // unstabilised: successor pointer still aims at dead 20
        assert_eq!(net.ring_successor(idxs[0]), Some(idxs[1]));
    }

    #[test]
    fn owner_lookup_uses_live_ring() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        assert_eq!(net.live_owner_of(Id::new(15)), Some(idxs[1]));
        net.kill(idxs[1]).unwrap();
        assert_eq!(net.live_owner_of(Id::new(15)), Some(idxs[2]));
    }

    #[test]
    fn routing_neighbors_exclude_self() {
        let (mut net, idxs) = net_with(&[10, 20]);
        net.try_link(idxs[0], idxs[1]).unwrap();
        let mut buf = Vec::new();
        net.routing_neighbors_into(idxs[0], &mut buf);
        // successor == predecessor == long target == peer 1; multiset
        // semantics allow repeats, but never the peer itself.
        assert!(!buf.is_empty());
        assert!(buf.iter().all(|&c| c == idxs[1]));
    }

    #[test]
    fn walk_neighbors_include_in_links() {
        // Network must be larger than the successor list (8), otherwise
        // every peer is a ring neighbour of every other.
        // Peer 10's successor list reaches 11..=18 and its predecessor is
        // 9, so peer 0 can only appear via the long-range in-link.
        let ids: Vec<u64> = (1..=20).map(|i| i * 100).collect();
        let (mut net, idxs) = net_with(&ids);
        net.try_link(idxs[0], idxs[10]).unwrap();
        let mut buf = Vec::new();
        net.walk_neighbors_into(idxs[10], &mut buf);
        assert!(buf.contains(&idxs[0]), "in-link usable for walks");
        net.routing_neighbors_into(idxs[10], &mut buf);
        assert!(!buf.contains(&idxs[0]), "in-link NOT usable for routing");
    }

    #[test]
    fn single_peer_network_has_no_neighbors() {
        let (net, idxs) = net_with(&[10]);
        let mut buf = vec![PeerIdx(99)];
        net.routing_neighbors_into(idxs[0], &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn degree_load_snapshot_counts_live_only() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.try_link(idxs[0], idxs[1]).unwrap();
        net.kill(idxs[0]).unwrap();
        let snap = net.degree_load_snapshot();
        assert_eq!(snap.len(), 2);
        // peer 20 lost its in-link when 10 died
        assert!(snap.iter().all(|&(ind, cap)| ind == 0 && cap == 4));
    }

    #[test]
    fn random_live_peer_is_live() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40, 50]);
        net.kill(idxs[1]).unwrap();
        net.kill(idxs[3]).unwrap();
        let mut rng = oscar_types::SeedTree::new(1).rng();
        for _ in 0..100 {
            let p = net.random_live_peer(&mut rng).unwrap();
            assert!(net.is_alive(p));
        }
    }

    #[test]
    fn depart_leaves_no_dangling_links() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40]);
        net.try_link(idxs[0], idxs[2]).unwrap(); // 10 -> 30
        net.try_link(idxs[2], idxs[3]).unwrap(); // 30 -> 40
        net.depart(idxs[2]).unwrap();
        // source dropped its link (vs kill, which leaves it dangling)
        assert!(!net.peer(idxs[0]).long_out.contains(&idxs[2]));
        // target's budget released
        assert_eq!(net.peer(idxs[3]).in_degree(), 0);
        // gone from both ring views
        assert!(!net.ring_all().contains(Id::new(30)));
        assert!(!net.ring_live().contains(Id::new(30)));
        net.set_fault_model(FaultModel::UnstabilizedRing);
        assert_eq!(
            net.ring_successor(idxs[1]),
            Some(idxs[3]),
            "all-list re-stitched"
        );
        // departing twice errors
        assert!(net.depart(idxs[2]).is_err());
    }

    #[test]
    fn departed_identifier_can_rejoin() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.depart(idxs[1]).unwrap();
        let again = net.add_peer(Id::new(20), caps(4)).unwrap();
        assert_ne!(again, idxs[1], "rejoin gets a fresh index");
        assert_eq!(net.live_owner_of(Id::new(20)), Some(again));
    }

    mod linked_ring_props {
        use super::*;
        use proptest::prelude::*;

        /// Oracle check: the O(1) ring pointers must always agree with the
        /// authoritative sorted rings, for every live peer, in both views.
        fn check_pointers(net: &mut Network) -> std::result::Result<(), TestCaseError> {
            let live: Vec<PeerIdx> = net.live_peers().collect();
            for &p in &live {
                let id = net.peer(p).id;
                net.set_fault_model(FaultModel::StabilizedRing);
                let s = net.ring_successor(p).unwrap();
                prop_assert_eq!(
                    net.peer(s).id,
                    net.ring_live().successor_of(id).unwrap(),
                    "live successor pointer diverged"
                );
                let q = net.ring_predecessor(p).unwrap();
                prop_assert_eq!(
                    net.peer(q).id,
                    net.ring_live().predecessor_of(id).unwrap(),
                    "live predecessor pointer diverged"
                );
                net.set_fault_model(FaultModel::UnstabilizedRing);
                let s = net.ring_successor(p).unwrap();
                prop_assert_eq!(
                    net.peer(s).id,
                    net.ring_all().successor_of(id).unwrap(),
                    "all successor pointer diverged"
                );
            }
            net.set_fault_model(FaultModel::StabilizedRing);
            Ok(())
        }

        proptest! {
            #[test]
            fn pointers_match_rings_under_random_ops(
                ops in prop::collection::vec((any::<u64>(), 0u8..4), 1..120),
            ) {
                let mut net = Network::new(FaultModel::StabilizedRing);
                let mut added: Vec<PeerIdx> = Vec::new();
                for (x, op) in ops {
                    match op {
                        // add (dedup happens naturally via error)
                        0 | 1 => {
                            if let Ok(p) = net.add_peer(Id::new(x), DegreeCaps::symmetric(4)) {
                                added.push(p);
                            }
                        }
                        // crash some existing peer
                        2 if !added.is_empty() => {
                            let v = added[(x % added.len() as u64) as usize];
                            let _ = net.kill(v);
                        }
                        // graceful departure
                        _ if !added.is_empty() => {
                            let v = added[(x % added.len() as u64) as usize];
                            let _ = net.depart(v);
                        }
                        _ => {}
                    }
                }
                check_pointers(&mut net)?;
            }
        }
    }
}
