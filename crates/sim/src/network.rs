//! The simulated network: peers, liveness, rings, long-range adjacency.

use crate::churn::FaultModel;
use crate::metrics::{Metrics, MsgKind};
use crate::peer::{LinkError, Peer, PeerIdx};
use oscar_degree::DegreeCaps;
use oscar_ring::Ring;
use oscar_types::{Arc, Error, Id, Result};
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;

/// One peer's cached walk adjacency: the live walk neighbours **sorted by
/// identifier** (multiset — a neighbour reachable by ring and long link
/// appears once per role, exactly like the uncached collection). Sorting
/// is the fast path's trick: an [`Arc`] restriction selects at most two
/// contiguous runs of the sorted slice, so the restricted degree and a
/// uniform restricted pick are O(log deg) binary searches instead of an
/// O(deg) filter pass per Metropolis–Hastings step.
///
/// Valid iff `epoch` matches the network's view epoch **and** `built_at`
/// is at or after the peer's dirty stamp. Defaults (0, 0) are stale
/// against the network's counters, which start at 1.
#[derive(Clone, Debug, Default)]
struct WalkCacheEntry {
    epoch: u32,
    built_at: u64,
    neighbors: Vec<(Id, PeerIdx)>,
}

impl WalkCacheEntry {
    /// `(first_run_start, first_run_len, second_run_len)` of the arc's
    /// members within the sorted slice: one run for a non-wrapping arc,
    /// two (tail ∪ head) for a wrapping one.
    fn arc_runs(&self, arc: &Arc) -> (usize, usize, usize) {
        if arc.is_full() {
            return (0, self.neighbors.len(), 0);
        }
        if arc.is_empty() {
            return (0, 0, 0);
        }
        let below = |x: Id| self.neighbors.partition_point(|&(id, _)| id < x);
        let (s, e) = (arc.start(), arc.end());
        let lo = below(s);
        let hi = below(e);
        if s < e {
            (lo, hi - lo, 0)
        } else {
            (lo, self.neighbors.len() - lo, hi)
        }
    }

    /// Number of neighbours inside `arc`.
    fn restricted_degree(&self, arc: Option<&Arc>) -> usize {
        match arc {
            None => self.neighbors.len(),
            Some(a) => {
                let (_, first, second) = self.arc_runs(a);
                first + second
            }
        }
    }

    /// The `k`-th neighbour inside `arc`, in sorted order (test oracle
    /// for the runs arithmetic; production composes
    /// [`Network::walk_runs`] + [`Network::walk_neighbor_at`]).
    ///
    /// # Panics
    /// If `k >= restricted_degree(arc)`.
    #[cfg(test)]
    fn restricted_pick(&self, arc: Option<&Arc>, k: usize) -> PeerIdx {
        match arc {
            None => self.neighbors[k].1,
            Some(a) => {
                let (lo, first, _) = self.arc_runs(a);
                if k < first {
                    self.neighbors[lo + k].1
                } else {
                    self.neighbors[k - first].1
                }
            }
        }
    }
}

/// Position of an arc restriction within one peer's sorted cached walk
/// adjacency (see [`Network::walk_runs`]): the restricted neighbours are
/// `neighbors[lo..lo + first]` followed by `neighbors[..count - first]`
/// (the wrapped head), `count` in total. Valid until the peer's cache
/// entry is invalidated by a mutation.
#[derive(Copy, Clone, Debug)]
pub struct WalkRuns {
    lo: usize,
    first: usize,
    /// Restricted degree: total neighbours inside the arc.
    pub count: usize,
}

/// The whole simulated network.
///
/// Two ring views coexist:
/// * `ring_all` — every peer ever added, dead or alive. This is the
///   *unstabilised* view: a peer's successor pointer may dangle onto a
///   crashed peer.
/// * `ring_live` — live peers only, i.e. the state Chord-style
///   stabilisation converges to. The paper's churn experiments assume this
///   view for ring links.
///
/// Long-range links are directed; crashing a peer leaves the links pointing
/// *at* it dangling in the owners' adjacency (probing them is the "wasted
/// traffic" of the paper), while its own outgoing links are torn down.
///
/// `Network` is `Clone`, deliberately: churn experiments snapshot the grown
/// network, crash the clone, and measure it, so one growth run feeds many
/// failure scenarios.
#[derive(Clone)]
pub struct Network {
    peers: Vec<Peer>,
    by_id: HashMap<u64, PeerIdx>,
    ring_all: Ring,
    ring_live: Ring,
    // O(1) ring-neighbour pointers (the construction/measurement hot path
    // walks these hundreds of millions of times per figure; binary
    // searches here would dominate the whole simulation).
    //
    // The "all" list is spliced at insert only — crashed peers stay in
    // their neighbours' pointers, which is exactly the unstabilised-ring
    // semantics. The "live" list is additionally spliced at kill, giving
    // the stabilised (converged Chord maintenance) semantics.
    next_all: Vec<PeerIdx>,
    prev_all: Vec<PeerIdx>,
    next_live: Vec<PeerIdx>,
    prev_live: Vec<PeerIdx>,
    fault_model: FaultModel,
    succ_list_len: usize,
    // Per-peer walk-adjacency cache, rebuilt lazily per peer. Every
    // mutation touches the dirty stamps of exactly the peers whose walk
    // neighbourhood it changes (a link's two endpoints, a splice's ring
    // neighbours, a crash's dangling-link owners), so entries persist
    // across unrelated mutations — that is what amortises the rebuilds
    // over the join hot loop. `walk_epoch` is the one whole-cache hammer,
    // for fault-model flips that change every adjacency at once.
    // Interior mutability keeps the samplers on `&Network` (the cache is
    // pure memoisation); the cost is that `Network` is `Send` but not
    // `Sync` — parallel experiment drivers hand each thread its own
    // network, they never share one.
    walk_epoch: u32,
    walk_clock: u64,
    walk_dirty: Vec<u64>,
    walk_cache: RefCell<Vec<WalkCacheEntry>>,
    /// Message accounting for the whole simulation.
    pub metrics: Metrics,
}

impl Network {
    /// Empty network under the given fault model.
    pub fn new(fault_model: FaultModel) -> Self {
        Network {
            peers: Vec::new(),
            by_id: HashMap::new(),
            ring_all: Ring::new(),
            ring_live: Ring::new(),
            next_all: Vec::new(),
            prev_all: Vec::new(),
            next_live: Vec::new(),
            prev_live: Vec::new(),
            fault_model,
            succ_list_len: 8,
            walk_epoch: 1,
            walk_clock: 1,
            walk_dirty: Vec::new(),
            walk_cache: RefCell::new(Vec::new()),
            metrics: Metrics::new(),
        }
    }

    /// Marks one peer's cached walk adjacency stale; it is rebuilt lazily
    /// on its next walk visit. Callers must touch every peer whose
    /// *filtered* neighbour list a mutation changes — including peers that
    /// merely hold a now-dead neighbour.
    #[inline]
    fn touch_walk(&mut self, idx: PeerIdx) {
        self.walk_clock += 1;
        self.walk_dirty[idx.as_usize()] = self.walk_clock;
    }

    /// Length of the Chord-style successor list peers maintain. Only the
    /// unstabilised view consults entries beyond the first: with a single
    /// successor pointer a crash wave partitions the ring, which is why
    /// Chord prescribes `O(log N)` successors. Default 8.
    pub fn succ_list_len(&self) -> usize {
        self.succ_list_len
    }

    /// Sets the successor-list length (ablation A4 uses 1 to show how much
    /// backtracking the list prevents).
    pub fn set_succ_list_len(&mut self, len: usize) {
        assert!(len >= 1, "peers always know at least their successor");
        self.succ_list_len = len;
    }

    /// The configured fault model.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Changes the fault model (used by ablations; cheap — the views are
    /// both maintained continuously).
    pub fn set_fault_model(&mut self, fm: FaultModel) {
        self.fault_model = fm;
        // Every walk adjacency reads ring pointers through the view, so a
        // view flip invalidates the whole cache at once.
        self.walk_epoch += 1;
    }

    /// Total peers ever added (live + dead).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True iff no peer was ever added.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of live peers.
    pub fn live_count(&self) -> usize {
        self.ring_live.len()
    }

    /// Adds a live peer; errors on duplicate identifier.
    pub fn add_peer(&mut self, id: Id, caps: DegreeCaps) -> Result<PeerIdx> {
        if self.by_id.contains_key(&id.raw()) {
            return Err(Error::InvalidConfig(format!(
                "duplicate peer identifier {id}"
            )));
        }
        let idx = PeerIdx(self.peers.len() as u32);
        // Splice into the "all" ring list: between the current owner's
        // predecessor and the owner (i.e. at the sorted position).
        let (next_a, prev_a) = match self.ring_all.successor_of(id) {
            Some(succ_id) if succ_id != id => {
                let succ = self.by_id[&succ_id.raw()];
                (succ, self.prev_all[succ.as_usize()])
            }
            _ => (idx, idx), // first peer: self-loop
        };
        let (next_l, prev_l) = match self.ring_live.successor_of(id) {
            Some(succ_id) if succ_id != id => {
                let succ = self.by_id[&succ_id.raw()];
                (succ, self.prev_live[succ.as_usize()])
            }
            _ => (idx, idx),
        };
        self.peers.push(Peer::new(id, caps));
        self.next_all.push(next_a);
        self.prev_all.push(prev_a);
        self.next_live.push(next_l);
        self.prev_live.push(prev_l);
        self.next_all[prev_a.as_usize()] = idx;
        self.prev_all[next_a.as_usize()] = idx;
        self.next_live[prev_l.as_usize()] = idx;
        self.prev_live[next_l.as_usize()] = idx;
        self.by_id.insert(id.raw(), idx);
        self.ring_all.insert(id);
        self.ring_live.insert(id);
        // The splice changed the ring adjacency of the new peer and of its
        // (up to four) new ring neighbours — nobody else's.
        self.walk_dirty.push(0);
        self.touch_walk(idx);
        for n in [prev_a, next_a, prev_l, next_l] {
            self.touch_walk(n);
        }
        Ok(idx)
    }

    /// Peer state by index.
    ///
    /// # Panics
    /// On out-of-range index (indices come from this network, so a bad one
    /// is a programming error, not a simulation condition).
    pub fn peer(&self, idx: PeerIdx) -> &Peer {
        &self.peers[idx.as_usize()]
    }

    /// Index of the peer with identifier `id`.
    pub fn idx_of(&self, id: Id) -> Option<PeerIdx> {
        self.by_id.get(&id.raw()).copied()
    }

    /// Liveness of a peer.
    #[inline]
    pub fn is_alive(&self, idx: PeerIdx) -> bool {
        self.peers[idx.as_usize()].alive
    }

    /// The full ring (live + dead) — the unstabilised view.
    pub fn ring_all(&self) -> &Ring {
        &self.ring_all
    }

    /// The live ring — the stabilised view.
    pub fn ring_live(&self) -> &Ring {
        &self.ring_live
    }

    /// The ring view a peer uses for its ring links, per the fault model.
    pub fn ring_view(&self) -> &Ring {
        match self.fault_model {
            FaultModel::StabilizedRing => &self.ring_live,
            FaultModel::UnstabilizedRing => &self.ring_all,
        }
    }

    /// The live peer owning `key` (ground truth for query success).
    pub fn live_owner_of(&self, key: Id) -> Option<PeerIdx> {
        self.ring_live.owner_of(key).and_then(|id| self.idx_of(id))
    }

    /// The live peer with the given ring rank (for workload resolution).
    ///
    /// # Panics
    /// If `rank >= live_count()`.
    pub fn live_peer_by_rank(&self, rank: usize) -> PeerIdx {
        let id = self.ring_live.select(rank);
        self.idx_of(id).expect("live ring ids are registered")
    }

    /// A uniformly random live peer (experimenter's view; used to pick
    /// query sources, matching the paper's "N random queries").
    pub fn random_live_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PeerIdx> {
        if self.ring_live.is_empty() {
            return None;
        }
        Some(self.live_peer_by_rank(rng.gen_range(0..self.ring_live.len())))
    }

    /// Ring successor of peer `idx` under the current fault-model view
    /// (O(1) pointer read). Returns `idx` itself in a singleton network,
    /// mirroring `Ring::successor_of`.
    pub fn ring_successor(&self, idx: PeerIdx) -> Option<PeerIdx> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.fault_model {
            FaultModel::StabilizedRing => self.next_live[idx.as_usize()],
            FaultModel::UnstabilizedRing => self.next_all[idx.as_usize()],
        })
    }

    /// The `k` nearest live ring successors and `k` nearest live ring
    /// predecessors of `idx` in the **stabilised** (live) ring view,
    /// excluding `idx` itself, deduplicated — the peers whose ring
    /// neighbourhood changes when `idx` crashes or departs, i.e. the
    /// repair set of a reactive maintenance policy. Successors first
    /// (nearest outward), then predecessors; O(k).
    ///
    /// # Panics
    /// If `idx` is not alive (a dead peer's live-ring pointers are stale,
    /// so its neighbourhood is meaningless).
    pub fn live_ring_neighborhood(&self, idx: PeerIdx, k: usize) -> Vec<PeerIdx> {
        assert!(
            self.is_alive(idx),
            "live_ring_neighborhood of a dead peer is undefined"
        );
        let mut out = Vec::with_capacity(2 * k);
        let mut cur = idx;
        for _ in 0..k {
            cur = self.next_live[cur.as_usize()];
            if cur == idx || out.contains(&cur) {
                break; // wrapped around: the whole ring is closer than k
            }
            out.push(cur);
        }
        cur = idx;
        for _ in 0..k {
            cur = self.prev_live[cur.as_usize()];
            if cur == idx || out.contains(&cur) {
                break;
            }
            out.push(cur);
        }
        out
    }

    /// Ring predecessor of peer `idx` under the current fault-model view
    /// (O(1) pointer read).
    pub fn ring_predecessor(&self, idx: PeerIdx) -> Option<PeerIdx> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.fault_model {
            FaultModel::StabilizedRing => self.prev_live[idx.as_usize()],
            FaultModel::UnstabilizedRing => self.prev_all[idx.as_usize()],
        })
    }

    /// Attempts to establish the directed long-range link `from -> to`,
    /// enforcing both degree budgets. Refusals due to the target's
    /// `ρ_in_max` are the paper's heterogeneity mechanism and are counted
    /// in the metrics; other rejections are caller bugs or races and are
    /// not.
    pub fn try_link(&mut self, from: PeerIdx, to: PeerIdx) -> std::result::Result<(), LinkError> {
        if from == to {
            return Err(LinkError::SelfLink);
        }
        let (fi, ti) = (from.as_usize(), to.as_usize());
        if !self.peers[fi].alive || !self.peers[ti].alive {
            return Err(LinkError::Dead);
        }
        if self.peers[fi].long_out.contains(&to) {
            return Err(LinkError::Duplicate);
        }
        if !self.peers[fi].can_open_out() {
            return Err(LinkError::SourceFull);
        }
        self.metrics.inc(MsgKind::LinkRequest);
        if !self.peers[ti].accepts_in() {
            self.metrics.inc(MsgKind::LinkRefuse);
            return Err(LinkError::TargetFull);
        }
        self.metrics.inc(MsgKind::LinkAccept);
        self.peers[fi].long_out.push(to);
        self.peers[ti].long_in.push(from);
        self.touch_walk(from);
        self.touch_walk(to);
        Ok(())
    }

    /// Tears down the single directed long-range link `from -> to`,
    /// releasing the in-degree budget at `to`. Returns whether the link
    /// existed. Used by the scenario partition hook to sever exactly the
    /// links that cross a cut, leaving the rest of both peers' link
    /// tables intact.
    pub fn unlink(&mut self, from: PeerIdx, to: PeerIdx) -> bool {
        let fp = &mut self.peers[from.as_usize()];
        let Some(pos) = fp.long_out.iter().position(|&t| t == to) else {
            return false;
        };
        fp.long_out.swap_remove(pos);
        let tp = &mut self.peers[to.as_usize()];
        if let Some(pos) = tp.long_in.iter().position(|&s| s == from) {
            tp.long_in.swap_remove(pos);
        }
        self.touch_walk(from);
        self.touch_walk(to);
        true
    }

    /// Tears down all outgoing long-range links of `from` (rewiring step),
    /// releasing the corresponding in-degree budget at the targets.
    pub fn unlink_long_out(&mut self, from: PeerIdx) {
        let targets = std::mem::take(&mut self.peers[from.as_usize()].long_out);
        for t in targets {
            let tp = &mut self.peers[t.as_usize()];
            if let Some(pos) = tp.long_in.iter().position(|&s| s == from) {
                tp.long_in.swap_remove(pos);
            }
            self.touch_walk(t);
        }
        self.touch_walk(from);
    }

    /// Graceful departure: the peer announces it is leaving, so *all* of
    /// its links (in and out) are torn down cleanly — no dangling
    /// references, unlike [`Network::kill`]. The ring re-stitches in both
    /// views (a leaving peer hands over to its neighbours before going).
    pub fn depart(&mut self, idx: PeerIdx) -> Result<()> {
        let i = idx.as_usize();
        if i >= self.peers.len() {
            return Err(Error::UnknownPeer(i));
        }
        if !self.peers[i].alive {
            return Err(Error::PeerDead(i));
        }
        // Notify in-link sources: they drop their links to us.
        let sources = std::mem::take(&mut self.peers[i].long_in);
        for s in sources {
            let sp = &mut self.peers[s.as_usize()];
            if let Some(pos) = sp.long_out.iter().position(|&t| t == idx) {
                sp.long_out.swap_remove(pos);
            }
            self.touch_walk(s);
        }
        // Tear down our own out-links (releases budget at targets; touches
        // them and us for the walk cache).
        self.unlink_long_out(idx);
        self.peers[i].alive = false;
        let id = self.peers[i].id;
        self.ring_live.remove(id);
        self.ring_all.remove(id);
        // Splice out of both ring lists: a graceful leave repairs pointers.
        let (ln, lp) = (self.next_live[i], self.prev_live[i]);
        self.next_live[lp.as_usize()] = ln;
        self.prev_live[ln.as_usize()] = lp;
        let (an, ap) = (self.next_all[i], self.prev_all[i]);
        self.next_all[ap.as_usize()] = an;
        self.prev_all[an.as_usize()] = ap;
        self.by_id.remove(&id.raw());
        for n in [ln, lp, an, ap] {
            self.touch_walk(n);
        }
        Ok(())
    }

    /// Crashes a peer: removes it from the live ring, tears down its
    /// outgoing links (releasing budget at targets), and clears its
    /// incoming bookkeeping — while the *sources* of those incoming links
    /// keep dangling references to it (the wasted-traffic source).
    pub fn kill(&mut self, idx: PeerIdx) -> Result<()> {
        let i = idx.as_usize();
        if i >= self.peers.len() {
            return Err(Error::UnknownPeer(i));
        }
        if !self.peers[i].alive {
            return Err(Error::PeerDead(i));
        }
        self.peers[i].alive = false;
        let id = self.peers[i].id;
        self.ring_live.remove(id);
        // Splice out of the live ring list (stabilisation); the "all" list
        // keeps pointing at the corpse (unstabilised semantics). The dead
        // peer's own live pointers go stale, which is fine: nothing reads
        // a dead peer's ring neighbours in the stabilised view.
        let (ln, lp) = (self.next_live[i], self.prev_live[i]);
        self.next_live[lp.as_usize()] = ln;
        self.prev_live[ln.as_usize()] = lp;
        // Outgoing links vanish with the peer.
        let targets = std::mem::take(&mut self.peers[i].long_out);
        for t in targets {
            let tp = &mut self.peers[t.as_usize()];
            if let Some(pos) = tp.long_in.iter().position(|&s| s == idx) {
                tp.long_in.swap_remove(pos);
            }
            self.touch_walk(t);
        }
        // Incoming bookkeeping is cleared; the sources keep dangling
        // `long_out` entries pointing here until they rewire — their
        // live-filtered walk adjacency just lost this peer, so touch them.
        let sources = std::mem::take(&mut self.peers[i].long_in);
        for s in sources {
            self.touch_walk(s);
        }
        // Ring neighbours in *both* views see the corpse disappear from
        // their filtered adjacency (the "all" pointers still aim at it,
        // but the liveness filter now drops it).
        let (an, ap) = (self.next_all[i], self.prev_all[i]);
        for n in [ln, lp, an, ap, idx] {
            self.touch_walk(n);
        }
        Ok(())
    }

    /// Collects the **routing** neighbours of `idx` into `buf` (cleared
    /// first): the successor list and predecessor under the fault-model
    /// view plus all outgoing long-range links (possibly dangling).
    ///
    /// Both views expose the same-length successor list (peers maintain it
    /// regardless of fault state); they differ in *which ring* it is read
    /// from — the stabilised list contains live peers only, the
    /// unstabilised one may contain corpses.
    ///
    /// `buf` is a caller-owned workhorse buffer to keep the routing hot
    /// path allocation-free.
    pub fn routing_neighbors_into(&self, idx: PeerIdx, buf: &mut Vec<PeerIdx>) {
        buf.clear();
        // Successor list: follow the view's next pointers. Duplicates with
        // long links are tolerated (routing treats candidates in order and
        // skips repeats for free), which keeps this hot path scan-free.
        let next: &[PeerIdx] = match self.fault_model {
            FaultModel::StabilizedRing => &self.next_live,
            FaultModel::UnstabilizedRing => &self.next_all,
        };
        let mut cur = idx;
        for _ in 0..self.succ_list_len {
            cur = next[cur.as_usize()];
            if cur == idx {
                break; // wrapped all the way around
            }
            buf.push(cur);
        }
        if let Some(p) = self.ring_predecessor(idx) {
            if p != idx {
                buf.push(p);
            }
        }
        buf.extend_from_slice(&self.peers[idx.as_usize()].long_out);
    }

    /// Collects the **walk** neighbours of `idx` into `buf` (cleared
    /// first): the undirected view — one ring successor and predecessor
    /// plus outgoing and incoming long-range links. Random walks mix much
    /// faster on the undirected graph, and a link is a TCP connection both
    /// endpoints can send on, so this is also the realistic choice.
    ///
    /// The collection is multiset semantics (duplicates possible between
    /// ring and long links): a Metropolis–Hastings walk over a multigraph
    /// with multiset degrees still converges to the uniform distribution,
    /// and skipping deduplication keeps the hottest loop in the simulator
    /// linear in the degree.
    pub fn walk_neighbors_into(&self, idx: PeerIdx, buf: &mut Vec<PeerIdx>) {
        buf.clear();
        if let Some(s) = self.ring_successor(idx) {
            if s != idx {
                buf.push(s);
            }
        }
        if let Some(p) = self.ring_predecessor(idx) {
            if p != idx {
                buf.push(p);
            }
        }
        let peer = &self.peers[idx.as_usize()];
        buf.extend_from_slice(&peer.long_out);
        buf.extend_from_slice(&peer.long_in);
    }

    /// Runs `f` on `idx`'s walk-cache entry, lazily (re)building it first
    /// if its dirty stamp or the view epoch invalidated it.
    fn with_walk_entry<R>(&self, idx: PeerIdx, f: impl FnOnce(&WalkCacheEntry) -> R) -> R {
        let mut cache = self.walk_cache.borrow_mut();
        if cache.len() < self.peers.len() {
            cache.resize_with(self.peers.len(), WalkCacheEntry::default);
        }
        let entry = &mut cache[idx.as_usize()];
        if entry.epoch != self.walk_epoch || entry.built_at < self.walk_dirty[idx.as_usize()] {
            entry.neighbors.clear();
            let push_live = |e: &mut WalkCacheEntry, c: PeerIdx| {
                let p = &self.peers[c.as_usize()];
                if p.alive {
                    e.neighbors.push((p.id, c));
                }
            };
            if let Some(s) = self.ring_successor(idx) {
                if s != idx {
                    push_live(entry, s);
                }
            }
            if let Some(p) = self.ring_predecessor(idx) {
                if p != idx {
                    push_live(entry, p);
                }
            }
            let peer = &self.peers[idx.as_usize()];
            for &t in &peer.long_out {
                push_live(entry, t);
            }
            for &s in &peer.long_in {
                push_live(entry, s);
            }
            entry.neighbors.sort_unstable();
            entry.epoch = self.walk_epoch;
            entry.built_at = self.walk_clock;
        }
        f(entry)
    }

    /// The number of walk neighbours of `idx` that are alive and (when
    /// `arc` is given) inside the arc — O(log deg) off the sorted cached
    /// adjacency, no list materialised.
    pub fn walk_degree(&self, idx: PeerIdx, arc: Option<&Arc>) -> usize {
        self.with_walk_entry(idx, |e| e.restricted_degree(arc))
    }

    /// The arc's position in `idx`'s sorted cached adjacency, for callers
    /// that hold a walk position across steps: resolve the runs once per
    /// position change, then map proposals through
    /// [`Network::walk_neighbor_at`] with no further searches.
    pub fn walk_runs(&self, idx: PeerIdx, arc: Option<&Arc>) -> WalkRuns {
        self.with_walk_entry(idx, |e| match arc {
            None => WalkRuns {
                lo: 0,
                first: e.neighbors.len(),
                count: e.neighbors.len(),
            },
            Some(a) => {
                let (lo, first, second) = e.arc_runs(a);
                WalkRuns {
                    lo,
                    first,
                    count: first + second,
                }
            }
        })
    }

    /// The `k`-th (0-based) restricted walk neighbour of `idx` under
    /// `runs` (obtained from [`Network::walk_runs`] for the same peer and
    /// arc, with no intervening mutation) — a direct index, no search.
    ///
    /// # Panics
    /// If `k >= runs.count`.
    pub fn walk_neighbor_at(&self, idx: PeerIdx, runs: WalkRuns, k: usize) -> PeerIdx {
        let i = if k < runs.first {
            runs.lo + k
        } else {
            k - runs.first
        };
        self.with_walk_entry(idx, |e| e.neighbors[i].1)
    }

    /// The `k`-th (0-based, identifier-sorted) live walk neighbour of
    /// `idx` inside `arc` — a one-shot convenience over
    /// [`Network::walk_runs`] + [`Network::walk_neighbor_at`] (what the
    /// walker composes itself), kept test-only so the panicky indexed
    /// form is not public API.
    ///
    /// # Panics
    /// If `k >= walk_degree(idx, arc)`.
    #[cfg(test)]
    pub(crate) fn walk_pick(&self, idx: PeerIdx, arc: Option<&Arc>, k: usize) -> PeerIdx {
        self.with_walk_entry(idx, |e| e.restricted_pick(arc, k))
    }

    /// The walk neighbours of `idx` that are alive and (when `arc` is
    /// given) inside the arc, collected into `buf` (cleared first) in
    /// identifier-sorted order; returns the restricted degree. Same
    /// multiset as [`Network::walk_neighbors_into`] followed by an
    /// alive+arc `retain`, served from the cache.
    pub fn walk_neighbors_restricted(
        &self,
        idx: PeerIdx,
        arc: Option<&Arc>,
        buf: &mut Vec<PeerIdx>,
    ) -> usize {
        self.with_walk_entry(idx, |e| {
            buf.clear();
            match arc {
                Some(a) => {
                    let (lo, first, second) = e.arc_runs(a);
                    buf.extend(e.neighbors[lo..lo + first].iter().map(|&(_, c)| c));
                    buf.extend(e.neighbors[..second].iter().map(|&(_, c)| c));
                }
                None => buf.extend(e.neighbors.iter().map(|&(_, c)| c)),
            }
            buf.len()
        })
    }

    /// Snapshot of `(in_degree, ρ_in_max)` for every **live** peer — the
    /// raw data of Figure 1(b).
    pub fn degree_load_snapshot(&self) -> Vec<(u32, u32)> {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| (p.in_degree(), p.caps.rho_in))
            .collect()
    }

    /// Iterates all peer indices (live and dead).
    pub fn all_peers(&self) -> impl Iterator<Item = PeerIdx> {
        (0..self.peers.len() as u32).map(PeerIdx)
    }

    /// Iterates live peer indices.
    pub fn live_peers(&self) -> impl Iterator<Item = PeerIdx> + '_ {
        self.all_peers().filter(|&i| self.is_alive(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(n: u32) -> DegreeCaps {
        DegreeCaps::symmetric(n)
    }

    fn net_with(ids: &[u64]) -> (Network, Vec<PeerIdx>) {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let idxs = ids
            .iter()
            .map(|&id| net.add_peer(Id::new(id), caps(4)).unwrap())
            .collect();
        (net, idxs)
    }

    #[test]
    fn add_and_lookup() {
        let (net, idxs) = net_with(&[10, 20, 30]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.live_count(), 3);
        assert_eq!(net.idx_of(Id::new(20)), Some(idxs[1]));
        assert_eq!(net.peer(idxs[0]).id, Id::new(10));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        net.add_peer(Id::new(5), caps(2)).unwrap();
        assert!(net.add_peer(Id::new(5), caps(2)).is_err());
    }

    #[test]
    fn link_budgets_enforced() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        // shrink 20's in budget to 1
        let mut small = Network::new(FaultModel::StabilizedRing);
        let a = small.add_peer(Id::new(1), caps(5)).unwrap();
        let b = small
            .add_peer(
                Id::new(2),
                DegreeCaps {
                    rho_in: 1,
                    rho_out: 5,
                },
            )
            .unwrap();
        let c = small.add_peer(Id::new(3), caps(5)).unwrap();
        assert_eq!(small.try_link(a, b), Ok(()));
        assert_eq!(small.try_link(c, b), Err(LinkError::TargetFull));
        assert_eq!(small.metrics.get(MsgKind::LinkRefuse), 1);
        assert_eq!(small.metrics.get(MsgKind::LinkAccept), 1);

        // self / duplicate / source-full on the other network
        assert_eq!(net.try_link(idxs[0], idxs[0]), Err(LinkError::SelfLink));
        net.try_link(idxs[0], idxs[1]).unwrap();
        assert_eq!(net.try_link(idxs[0], idxs[1]), Err(LinkError::Duplicate));
    }

    #[test]
    fn source_budget_enforced() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let a = net
            .add_peer(
                Id::new(1),
                DegreeCaps {
                    rho_in: 9,
                    rho_out: 1,
                },
            )
            .unwrap();
        let b = net.add_peer(Id::new(2), caps(9)).unwrap();
        let c = net.add_peer(Id::new(3), caps(9)).unwrap();
        net.try_link(a, b).unwrap();
        assert_eq!(net.try_link(a, c), Err(LinkError::SourceFull));
    }

    #[test]
    fn unlink_releases_budget() {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let a = net.add_peer(Id::new(1), caps(3)).unwrap();
        let b = net
            .add_peer(
                Id::new(2),
                DegreeCaps {
                    rho_in: 1,
                    rho_out: 3,
                },
            )
            .unwrap();
        let c = net.add_peer(Id::new(3), caps(3)).unwrap();
        net.try_link(a, b).unwrap();
        assert_eq!(net.try_link(c, b), Err(LinkError::TargetFull));
        net.unlink_long_out(a);
        assert_eq!(net.peer(b).in_degree(), 0);
        assert_eq!(net.try_link(c, b), Ok(()));
    }

    #[test]
    fn kill_updates_views_and_budgets() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40]);
        net.try_link(idxs[0], idxs[2]).unwrap(); // 10 -> 30
        net.try_link(idxs[2], idxs[3]).unwrap(); // 30 -> 40
        net.kill(idxs[2]).unwrap(); // kill 30
        assert!(!net.is_alive(idxs[2]));
        assert_eq!(net.live_count(), 3);
        assert!(net.ring_all().contains(Id::new(30)), "full ring keeps dead");
        assert!(!net.ring_live().contains(Id::new(30)));
        // 30's outgoing link to 40 released 40's in budget
        assert_eq!(net.peer(idxs[3]).in_degree(), 0);
        // 10 keeps a dangling long_out to 30
        assert!(net.peer(idxs[0]).long_out.contains(&idxs[2]));
        // double-kill errors
        assert!(net.kill(idxs[2]).is_err());
    }

    #[test]
    fn ring_neighbors_follow_fault_model() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.kill(idxs[1]).unwrap(); // kill 20
                                    // stabilised: successor of 10 skips the dead 20
        assert_eq!(net.ring_successor(idxs[0]), Some(idxs[2]));
        net.set_fault_model(FaultModel::UnstabilizedRing);
        // unstabilised: successor pointer still aims at dead 20
        assert_eq!(net.ring_successor(idxs[0]), Some(idxs[1]));
    }

    #[test]
    fn owner_lookup_uses_live_ring() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        assert_eq!(net.live_owner_of(Id::new(15)), Some(idxs[1]));
        net.kill(idxs[1]).unwrap();
        assert_eq!(net.live_owner_of(Id::new(15)), Some(idxs[2]));
    }

    #[test]
    fn routing_neighbors_exclude_self() {
        let (mut net, idxs) = net_with(&[10, 20]);
        net.try_link(idxs[0], idxs[1]).unwrap();
        let mut buf = Vec::new();
        net.routing_neighbors_into(idxs[0], &mut buf);
        // successor == predecessor == long target == peer 1; multiset
        // semantics allow repeats, but never the peer itself.
        assert!(!buf.is_empty());
        assert!(buf.iter().all(|&c| c == idxs[1]));
    }

    #[test]
    fn walk_neighbors_include_in_links() {
        // Network must be larger than the successor list (8), otherwise
        // every peer is a ring neighbour of every other.
        // Peer 10's successor list reaches 11..=18 and its predecessor is
        // 9, so peer 0 can only appear via the long-range in-link.
        let ids: Vec<u64> = (1..=20).map(|i| i * 100).collect();
        let (mut net, idxs) = net_with(&ids);
        net.try_link(idxs[0], idxs[10]).unwrap();
        let mut buf = Vec::new();
        net.walk_neighbors_into(idxs[10], &mut buf);
        assert!(buf.contains(&idxs[0]), "in-link usable for walks");
        net.routing_neighbors_into(idxs[10], &mut buf);
        assert!(!buf.contains(&idxs[0]), "in-link NOT usable for routing");
    }

    #[test]
    fn single_peer_network_has_no_neighbors() {
        let (net, idxs) = net_with(&[10]);
        let mut buf = vec![PeerIdx(99)];
        net.routing_neighbors_into(idxs[0], &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn degree_load_snapshot_counts_live_only() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.try_link(idxs[0], idxs[1]).unwrap();
        net.kill(idxs[0]).unwrap();
        let snap = net.degree_load_snapshot();
        assert_eq!(snap.len(), 2);
        // peer 20 lost its in-link when 10 died
        assert!(snap.iter().all(|&(ind, cap)| ind == 0 && cap == 4));
    }

    #[test]
    fn random_live_peer_is_live() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40, 50]);
        net.kill(idxs[1]).unwrap();
        net.kill(idxs[3]).unwrap();
        let mut rng = oscar_types::SeedTree::new(1).rng();
        for _ in 0..100 {
            let p = net.random_live_peer(&mut rng).unwrap();
            assert!(net.is_alive(p));
        }
    }

    #[test]
    fn live_ring_neighborhood_walks_both_ways_live_only() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40, 50, 60]);
        // k = 2 around 30: successors 40, 50; predecessors 20, 10.
        assert_eq!(
            net.live_ring_neighborhood(idxs[2], 2),
            vec![idxs[3], idxs[4], idxs[1], idxs[0]]
        );
        // Dead peers are skipped: kill 40, the successor side walks on.
        net.kill(idxs[3]).unwrap();
        assert_eq!(
            net.live_ring_neighborhood(idxs[2], 2),
            vec![idxs[4], idxs[5], idxs[1], idxs[0]]
        );
        // k exceeding the ring dedups and never includes the peer itself:
        // 5 live peers -> at most the 4 others.
        let hood = net.live_ring_neighborhood(idxs[2], 10);
        assert_eq!(hood.len(), 4);
        assert!(!hood.contains(&idxs[2]));
        assert!(!hood.contains(&idxs[3]), "corpse excluded");
        // Singleton ring: no neighbours at all.
        let (single, s_idxs) = net_with(&[7]);
        assert!(single.live_ring_neighborhood(s_idxs[0], 3).is_empty());
    }

    #[test]
    fn depart_leaves_no_dangling_links() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40]);
        net.try_link(idxs[0], idxs[2]).unwrap(); // 10 -> 30
        net.try_link(idxs[2], idxs[3]).unwrap(); // 30 -> 40
        net.depart(idxs[2]).unwrap();
        // source dropped its link (vs kill, which leaves it dangling)
        assert!(!net.peer(idxs[0]).long_out.contains(&idxs[2]));
        // target's budget released
        assert_eq!(net.peer(idxs[3]).in_degree(), 0);
        // gone from both ring views
        assert!(!net.ring_all().contains(Id::new(30)));
        assert!(!net.ring_live().contains(Id::new(30)));
        net.set_fault_model(FaultModel::UnstabilizedRing);
        assert_eq!(
            net.ring_successor(idxs[1]),
            Some(idxs[3]),
            "all-list re-stitched"
        );
        // departing twice errors
        assert!(net.depart(idxs[2]).is_err());
    }

    #[test]
    fn departed_identifier_can_rejoin() {
        let (mut net, idxs) = net_with(&[10, 20, 30]);
        net.depart(idxs[1]).unwrap();
        let again = net.add_peer(Id::new(20), caps(4)).unwrap();
        assert_ne!(again, idxs[1], "rejoin gets a fresh index");
        assert_eq!(net.live_owner_of(Id::new(20)), Some(again));
    }

    #[test]
    fn cached_walk_neighbors_match_uncached() {
        let (mut net, idxs) = net_with(&[10, 20, 30, 40, 50, 60]);
        net.try_link(idxs[0], idxs[3]).unwrap();
        net.try_link(idxs[4], idxs[0]).unwrap();
        net.kill(idxs[3]).unwrap(); // dangling long_out at idxs[0]
        let arcs = [
            None,
            Some(Arc::between(Id::new(15), Id::new(45))),
            Some(Arc::between(Id::new(45), Id::new(15))), // wrapping
        ];
        for p in net.all_peers() {
            if !net.is_alive(p) {
                continue;
            }
            for arc in &arcs {
                let mut cached = Vec::new();
                let deg = net.walk_neighbors_restricted(p, arc.as_ref(), &mut cached);
                let mut plain = Vec::new();
                net.walk_neighbors_into(p, &mut plain);
                plain.retain(|&c| {
                    net.is_alive(c) && arc.as_ref().is_none_or(|a| a.contains(net.peer(c).id))
                });
                // Same multiset (the cached order is identifier-sorted).
                let mut cached_sorted = cached.clone();
                cached_sorted.sort_unstable();
                plain.sort_unstable();
                assert_eq!(cached_sorted, plain, "peer {p:?} arc {arc:?}");
                // Degree and picks agree with the materialised list.
                assert_eq!(net.walk_degree(p, arc.as_ref()), deg);
                for (k, &c) in cached.iter().enumerate() {
                    assert_eq!(net.walk_pick(p, arc.as_ref(), k), c);
                }
            }
        }
    }

    mod walk_cache_props {
        use super::*;
        use proptest::prelude::*;

        /// Uncached reference for one peer's restricted walk adjacency,
        /// sorted for multiset comparison.
        fn plain(net: &Network, p: PeerIdx, arc: Option<&Arc>) -> Vec<PeerIdx> {
            let mut buf = Vec::new();
            net.walk_neighbors_into(p, &mut buf);
            buf.retain(|&c| net.is_alive(c) && arc.is_none_or(|a| a.contains(net.peer(c).id)));
            buf.sort_unstable();
            buf
        }

        proptest! {
            /// The dirty-stamp invalidation must keep every cached entry
            /// coherent through arbitrary interleavings of joins, crashes,
            /// departures, links and unlinks. Queries after every op warm
            /// the cache, so a missed `touch_walk` on a later op would
            /// serve a stale entry and fail the comparison.
            #[test]
            fn cache_matches_uncached_under_random_ops(
                ops in prop::collection::vec((any::<u64>(), 0u8..8), 1..80),
                a: u64,
                b: u64,
            ) {
                let mut net = Network::new(FaultModel::StabilizedRing);
                let mut added: Vec<PeerIdx> = Vec::new();
                let arc = Arc::between(Id::new(a), Id::new(b));
                let mut buf = Vec::new();
                for (x, op) in ops {
                    let pick = |added: &[PeerIdx], salt: u64| {
                        added[((x ^ salt) % added.len() as u64) as usize]
                    };
                    match op {
                        0..=2 => {
                            if let Ok(p) = net.add_peer(Id::new(x), DegreeCaps::symmetric(4)) {
                                added.push(p);
                            }
                        }
                        3 if !added.is_empty() => {
                            let _ = net.kill(pick(&added, 1));
                        }
                        4 if !added.is_empty() => {
                            let _ = net.depart(pick(&added, 2));
                        }
                        5 | 6 if !added.is_empty() => {
                            let _ = net.try_link(pick(&added, 3), pick(&added, 5));
                        }
                        _ if !added.is_empty() => {
                            net.unlink_long_out(pick(&added, 7));
                        }
                        _ => {}
                    }
                    for &p in &added {
                        if !net.is_alive(p) {
                            continue;
                        }
                        for arc in [None, Some(&arc)] {
                            let deg = net.walk_neighbors_restricted(p, arc, &mut buf);
                            prop_assert_eq!(deg, net.walk_degree(p, arc));
                            for (k, &c) in buf.iter().enumerate() {
                                prop_assert_eq!(net.walk_pick(p, arc, k), c);
                            }
                            buf.sort_unstable();
                            prop_assert_eq!(&buf, &plain(&net, p, arc), "peer {:?}", p);
                        }
                    }
                }
            }
        }
    }

    mod linked_ring_props {
        use super::*;
        use proptest::prelude::*;

        /// Oracle check: the O(1) ring pointers must always agree with the
        /// authoritative sorted rings, for every live peer, in both views.
        fn check_pointers(net: &mut Network) -> std::result::Result<(), TestCaseError> {
            let live: Vec<PeerIdx> = net.live_peers().collect();
            for &p in &live {
                let id = net.peer(p).id;
                net.set_fault_model(FaultModel::StabilizedRing);
                let s = net.ring_successor(p).unwrap();
                prop_assert_eq!(
                    net.peer(s).id,
                    net.ring_live().successor_of(id).unwrap(),
                    "live successor pointer diverged"
                );
                let q = net.ring_predecessor(p).unwrap();
                prop_assert_eq!(
                    net.peer(q).id,
                    net.ring_live().predecessor_of(id).unwrap(),
                    "live predecessor pointer diverged"
                );
                net.set_fault_model(FaultModel::UnstabilizedRing);
                let s = net.ring_successor(p).unwrap();
                prop_assert_eq!(
                    net.peer(s).id,
                    net.ring_all().successor_of(id).unwrap(),
                    "all successor pointer diverged"
                );
            }
            net.set_fault_model(FaultModel::StabilizedRing);
            Ok(())
        }

        proptest! {
            #[test]
            fn pointers_match_rings_under_random_ops(
                ops in prop::collection::vec((any::<u64>(), 0u8..4), 1..120),
            ) {
                let mut net = Network::new(FaultModel::StabilizedRing);
                let mut added: Vec<PeerIdx> = Vec::new();
                for (x, op) in ops {
                    match op {
                        // add (dedup happens naturally via error)
                        0 | 1 => {
                            if let Ok(p) = net.add_peer(Id::new(x), DegreeCaps::symmetric(4)) {
                                added.push(p);
                            }
                        }
                        // crash some existing peer
                        2 if !added.is_empty() => {
                            let v = added[(x % added.len() as u64) as usize];
                            let _ = net.kill(v);
                        }
                        // graceful departure
                        _ if !added.is_empty() => {
                            let v = added[(x % added.len() as u64) as usize];
                            let _ = net.depart(v);
                        }
                        _ => {}
                    }
                }
                check_pointers(&mut net)?;
            }
        }
    }
}
