//! # oscar-sim — deterministic P2P network simulator
//!
//! The substrate on which the Oscar and Mercury overlays are built and
//! measured. The authors used a custom simulator; we rebuild one with the
//! same observables (message counts, degrees, search cost) and strict
//! determinism (every stochastic step draws from an explicitly seeded RNG).
//!
//! Layering:
//!
//! * [`network::Network`] — peer table, liveness, degree budgets,
//!   long-range adjacency, and the two ring views (stabilised = live-only,
//!   unstabilised = including crashed peers).
//! * [`walker`] — Metropolis–Hastings random-walk sampling, optionally
//!   restricted to an identifier arc: the Mercury sampling technique plus
//!   Oscar's sub-population restriction.
//! * [`routing`] — greedy clockwise routing with dead-link probing and
//!   backtracking; returns hop/wasted-traffic accounting.
//! * [`churn`] — crash injection and fault models.
//! * [`growth`] — bootstrap-and-grow driver, generic over an
//!   [`OverlayBuilder`] (Oscar and Mercury implement it), with checkpoint
//!   callbacks for rewiring and measurement.
//! * [`events`] — a small discrete-event queue with virtual time.
//! * [`churn_engine`] — continuous churn: Poisson join/crash/depart
//!   arrivals on the event queue, periodic rewire sweeps, steady-state
//!   measurement windows.
//! * [`churn_machine`] — the same churn schedules driven through
//!   [`oscar_protocol::PeerMachine`] fleets on any `ProtocolDriver`
//!   (the DES or the threaded runtime), where failure detection and
//!   repair are real protocol messages; multi-phase scenario runs via
//!   [`run_machine_phases`].
//! * [`scenario_hooks`] — shock primitives for the scenario engine:
//!   contiguous ring-arc kills, targeted top-degree kills, mass-join
//!   bursts, partition (cross-arc link severing) and reactive healing,
//!   all against the oracle-backed `Network`.
//! * [`metrics`] — message accounting by category.
//!
//! Each `Network` is single-threaded and allocation-conscious: a full
//! paper-scale run (10⁴ peers, nine rewiring checkpoints) performs on the
//! order of 10⁸ walk steps, served from a per-peer walk-adjacency cache
//! with dirty-stamp invalidation (see [`network`]). `Network` is `Send`
//! but — deliberately, because that cache uses interior mutability — not
//! `Sync`: the parallel experiment drivers in `oscar-bench` give every
//! worker thread its own network and never share one.

pub mod churn;
pub mod churn_engine;
pub mod churn_machine;
pub mod events;
pub mod growth;
pub mod metrics;
pub mod network;
pub mod overlay;
pub mod peer;
pub mod protocol_des;
pub mod routing;
pub mod scenario_hooks;
pub mod walker;

pub use churn::{kill_fraction, FaultModel};
pub use churn_engine::{
    run_continuous_churn, run_continuous_churn_with, ChurnSchedule, ChurnWindowStats, QueryBudget,
    RepairPolicy,
};
pub use churn_machine::{
    machine_repair_policy, run_machine_churn, run_machine_phases, MachineChurnConfig, MachinePhase,
};
pub use events::{Event, EventQueue, VirtualTime};
pub use growth::{rewire_all_peers, Checkpoint, GrowthConfig, GrowthDriver, OverlayBuilder};
pub use metrics::{Metrics, MsgKind};
pub use network::Network;
pub use overlay::Overlay;
pub use peer::{LinkError, Peer, PeerIdx};
pub use protocol_des::{DesDriver, Envelope};
pub use routing::{
    route_to_owner, run_query_batch, run_query_batch_observed, QueryBatchStats, RouteOutcome,
    RoutePolicy,
};
pub use scenario_hooks::{
    burst_joins, kill_ring_arc, kill_top_degree, reactive_heal, sever_arc_links, PartitionDamage,
    ShockDamage,
};
pub use walker::{sample_peers, WalkConfig, Walker};
