//! Continuous-churn engine: sustained join/crash/depart at a rate.
//!
//! The paper's churn experiments (Figure 2) are one-shot crash waves
//! measured on post-wave snapshots; its harder open regime is a network
//! under *sustained* membership change, measured at steady state. This
//! engine drives [`Network::add_peer`] / [`Network::kill`] /
//! [`Network::depart`] from independent Poisson processes on the
//! discrete-event queue ([`EventQueue`]): each process draws exponential
//! inter-arrival times from its own seed-tree stream, a [`RepairPolicy`]
//! heals the damage (whole-network sweeps, reactive neighbour rewires, or
//! probe-triggered rewires), and measurement windows of fixed virtual
//! length aggregate cost, wasted traffic, success rate, repair traffic
//! and the live population over time.
//!
//! Everything derives from one [`SeedTree`], so a run is a pure function
//! of `(network, schedule, windows, seed)` — the bench drivers fan
//! independent runs over worker threads with byte-identical results.

use crate::events::{EventQueue, VirtualTime};
use crate::growth::{rewire_all_peers, OverlayBuilder};
use crate::network::Network;
use crate::peer::PeerIdx;
use crate::routing::{run_query_batch, run_query_batch_observed, QueryBatchStats, RoutePolicy};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_types::labels::sim_churn_engine::{
    LBL_CRASH_GAPS, LBL_CRASH_PICK, LBL_DEPART_GAPS, LBL_DEPART_PICK, LBL_JOIN, LBL_JOIN_GAPS,
    LBL_MEASURE, LBL_REPAIR, LBL_REWIRE,
};
use oscar_types::{Error, Result, SeedTree};
use rand::rngs::SmallRng;
use rand::Rng;

/// Failure-detection latency of the reactive policies, in ticks: a repair
/// triggered by a crash/departure/corpse probe fires this much later on
/// the event queue, after any same-tick measurement (window timers are
/// pre-scheduled and win FIFO ties).
const REPAIR_DELAY: u64 = 1;

/// How a continuous-churn run heals churn damage.
///
/// The sweep policy is the paper's checkpoint protocol (O(n) per sweep
/// regardless of how much actually broke); the two reactive policies
/// model real maintenance traffic — repair work proportional to the
/// damage observed, O(k) per membership event — which is what makes
/// steady-state runs at 10⁵+ peers affordable.
#[derive(Clone, Debug, PartialEq)]
pub enum RepairPolicy {
    /// Rewire every live peer's long-range links every this many ticks —
    /// the engine's original behaviour. `0` disables repair entirely,
    /// letting dangling-link waste accumulate.
    SweepEvery(u64),
    /// On each crash or graceful departure, schedule a rewire of the
    /// `neighbors_k` nearest live ring successors *and* predecessors of
    /// the dead peer (the peers whose ring neighbourhood the event
    /// changed), as repair events `REPAIR_DELAY` ticks later. Repair
    /// work is O(k) per membership event instead of O(n) per sweep.
    Reactive {
        /// Live ring successors/predecessors rewired per membership
        /// event, on each side of the dead peer. Must be >= 1.
        neighbors_k: usize,
    },
    /// A peer that probes a corpse while routing (a timed-out forwarding
    /// attempt, the paper's wasted traffic) enqueues its *own* rewire —
    /// failure-detection-driven maintenance: damage is repaired exactly
    /// where traffic discovers it. The engine's measurement batches are
    /// the probe traffic, so repairs trail each window's queries.
    OnProbe,
}

impl RepairPolicy {
    /// Checks the policy is runnable.
    fn validate(&self) -> Result<()> {
        if let RepairPolicy::Reactive { neighbors_k: 0 } = self {
            return Err(Error::InvalidConfig(
                "Reactive repair needs neighbors_k >= 1: k = 0 repairs nothing".into(),
            ));
        }
        Ok(())
    }
}

/// How many measurement queries a window issues, as a function of the
/// live population at the window's end.
///
/// At paper scale a fixed batch is fine, but the measurement cost of a
/// `Fixed(n/4)` batch scales linearly with the network and becomes the
/// bottleneck of million-peer runs. Sublinear budgets trade per-window
/// precision for scale; the per-window standard error
/// ([`QueryBatchStats::se_cost`]) quantifies exactly what was traded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryBudget {
    /// The classic fixed batch, independent of population.
    Fixed(usize),
    /// `ceil(sqrt(live))`, floored at `min`: sublinear sampling for big
    /// networks while small ones keep a usable sample.
    SqrtLive {
        /// Lower bound on the resolved batch size.
        min: usize,
    },
    /// `live * fraction`, capped at `cap`: linear at small scale, flat
    /// once the population crosses `cap / fraction`.
    FractionCapped {
        /// Fraction of the live population queried per window.
        fraction: f64,
        /// Hard ceiling on the resolved batch size.
        cap: usize,
    },
}

impl QueryBudget {
    /// The number of queries a window with `live` peers issues. Always
    /// at least 1 for a validated budget (a window without queries has
    /// no data point).
    pub fn resolve(&self, live: usize) -> usize {
        match *self {
            QueryBudget::Fixed(q) => q,
            QueryBudget::SqrtLive { min } => ((live as f64).sqrt().ceil() as usize).max(min),
            QueryBudget::FractionCapped { fraction, cap } => {
                ((live as f64 * fraction).ceil() as usize).clamp(1, cap)
            }
        }
    }

    /// Checks the budget can never resolve to zero queries.
    fn validate(&self) -> Result<()> {
        match *self {
            QueryBudget::Fixed(0) => Err(Error::InvalidConfig(
                "QueryBudget::Fixed must be >= 1: a window without queries has no data point"
                    .into(),
            )),
            QueryBudget::SqrtLive { min: 0 } => Err(Error::InvalidConfig(
                "QueryBudget::SqrtLive needs min >= 1: an empty window has no data point".into(),
            )),
            QueryBudget::FractionCapped { fraction, cap } => {
                if !fraction.is_finite() || fraction <= 0.0 {
                    return Err(Error::InvalidConfig(format!(
                        "QueryBudget::FractionCapped needs a finite positive fraction, got \
                         {fraction}"
                    )));
                }
                if cap == 0 {
                    return Err(Error::InvalidConfig(
                        "QueryBudget::FractionCapped needs cap >= 1".into(),
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Rates and windows of a continuous-churn run.
///
/// Rates are expected events per virtual tick; each membership process is
/// an independent Poisson process (exponential inter-arrival times), so
/// joins and crashes genuinely interleave rather than alternating on a
/// fixed grid. A rate of `0.0` disables the process.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnSchedule {
    /// Expected joins per tick.
    pub join_rate: f64,
    /// Expected crashes (abrupt failures leaving dangling links) per tick.
    pub crash_rate: f64,
    /// Expected graceful departures (clean link teardown) per tick.
    pub depart_rate: f64,
    /// How churn damage is healed: periodic whole-network sweeps,
    /// reactive per-event neighbour rewires, or probe-triggered rewires.
    pub repair: RepairPolicy,
    /// Virtual length of one measurement window.
    pub window_ticks: u64,
    /// Queries issued at the end of each window (uniform live targets),
    /// resolved against the live population at measurement time.
    pub query_budget: QueryBudget,
    /// Crash/depart events fizzle while the live population is at or
    /// below this floor, so a crash-heavy schedule cannot extinguish the
    /// network mid-experiment.
    pub min_live: usize,
}

impl ChurnSchedule {
    /// A population-neutral schedule: joins and crashes at the same rate,
    /// no graceful departures, one rewire sweep per window.
    pub fn symmetric(rate_per_tick: f64) -> Self {
        ChurnSchedule {
            join_rate: rate_per_tick,
            crash_rate: rate_per_tick,
            depart_rate: 0.0,
            repair: RepairPolicy::SweepEvery(1000),
            window_ticks: 1000,
            query_budget: QueryBudget::Fixed(200),
            min_live: 16,
        }
    }

    /// Checks the schedule is runnable.
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("join_rate", self.join_rate),
            ("crash_rate", self.crash_rate),
            ("depart_rate", self.depart_rate),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "{name} must be a finite non-negative rate, got {rate}"
                )));
            }
        }
        if self.window_ticks == 0 {
            return Err(Error::InvalidConfig(
                "window_ticks must be >= 1: zero-length windows measure nothing".into(),
            ));
        }
        self.query_budget.validate()?;
        if self.min_live < 1 {
            return Err(Error::InvalidConfig(
                "min_live must be >= 1: the engine never extinguishes the network".into(),
            ));
        }
        self.repair.validate()
    }
}

/// What one measurement window observed.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnWindowStats {
    /// 0-based window index.
    pub window: usize,
    /// Window start (inclusive).
    pub start: VirtualTime,
    /// Window end (the measurement instant).
    pub end: VirtualTime,
    /// Joins completed during the window.
    pub joins: u64,
    /// Crashes injected during the window.
    pub crashes: u64,
    /// Graceful departures during the window.
    pub departs: u64,
    /// Rewire-all sweeps during the window.
    pub rewires: u64,
    /// Individual peer rewires the repair policy executed during the
    /// window: a sweep contributes one per live peer, the reactive
    /// policies one per fired repair event whose target was still alive.
    pub repairs: u64,
    /// Simulated messages those repairs generated (sampling walks, probes,
    /// link handshakes) — the window's maintenance traffic.
    pub repair_cost: u64,
    /// Crash/depart arrivals suppressed by the `min_live` floor.
    pub suppressed: u64,
    /// Live population at the measurement instant.
    pub live_at_end: usize,
    /// The window's query batch (cost, wasted traffic, success rate).
    pub queries: QueryBatchStats,
}

impl ChurnWindowStats {
    /// Zeroed accumulator for the window opening at `start`.
    pub(crate) fn fresh(window: usize, start: VirtualTime) -> Self {
        ChurnWindowStats {
            window,
            start,
            end: start,
            joins: 0,
            crashes: 0,
            departs: 0,
            rewires: 0,
            repairs: 0,
            repair_cost: 0,
            suppressed: 0,
            live_at_end: 0,
            queries: QueryBatchStats::default(),
        }
    }
}

/// The engine's event alphabet.
#[derive(Copy, Clone, Debug)]
enum EngineEvent {
    Join,
    Crash,
    Depart,
    Rewire,
    /// Reactive repair of a single peer (scheduled by the `Reactive` and
    /// `OnProbe` policies; a no-op if the target died in the meantime).
    Repair(PeerIdx),
    WindowEnd,
}

/// Draws an exponential inter-arrival gap (in whole ticks, >= 1) for a
/// Poisson process with `rate` events per tick. Shared with the
/// machine-backend engine (`churn_machine`) so both backends realise the
/// same arrival process from the same gap streams.
pub(crate) fn exponential_gap(rate: f64, rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen(); // [0, 1)
                            // -ln(1-u)/rate, clamped into [1, 2^40] ticks: a gap of one tick is
                            // the event-queue resolution, and the upper clamp keeps a glacial
                            // rate from overflowing the virtual clock.
    let gap = -(1.0 - u).ln() / rate;
    (gap.ceil() as u64).clamp(1, 1 << 40)
}

/// Under the `Reactive` policy, schedules repair events for the k nearest
/// live ring neighbours of `victim` on each side — the peers whose ring
/// neighbourhood the imminent crash/departure changes. Must run *before*
/// the victim is removed (its live-ring position is what locates them).
fn schedule_reactive_repairs(
    net: &Network,
    queue: &mut EventQueue<EngineEvent>,
    policy: &RepairPolicy,
    victim: PeerIdx,
) {
    if let RepairPolicy::Reactive { neighbors_k } = *policy {
        for n in net.live_ring_neighborhood(victim, neighbors_k) {
            queue.schedule_in(REPAIR_DELAY, EngineEvent::Repair(n));
        }
    }
}

/// Runs `windows` measurement windows of continuous churn on `net`.
///
/// Joins sample fresh identifiers from `keys` and caps from `degrees`,
/// then build links through `builder` — exactly the growth driver's join
/// protocol, but interleaved with failures on the virtual clock. Crash
/// and depart victims are uniform over the live population.
///
/// Determinism: all randomness derives from `seed`; identical inputs give
/// identical windows, regardless of what else the process is doing.
pub fn run_continuous_churn<B: OverlayBuilder + ?Sized>(
    net: &mut Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    schedule: &ChurnSchedule,
    windows: usize,
    seed: SeedTree,
) -> Result<Vec<ChurnWindowStats>> {
    run_continuous_churn_with(
        net,
        builder,
        keys,
        degrees,
        schedule,
        &QueryWorkload::UniformPeers,
        windows,
        seed,
    )
}

/// [`run_continuous_churn`] with an explicit measurement workload: each
/// window's query batch draws targets from `workload` instead of the
/// default uniform-live-peers mix. The scenario engine uses this to run
/// drifting-hotspot query storms; with `QueryWorkload::UniformPeers` the
/// two entry points are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn run_continuous_churn_with<B: OverlayBuilder + ?Sized>(
    net: &mut Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    schedule: &ChurnSchedule,
    workload: &QueryWorkload,
    windows: usize,
    seed: SeedTree,
) -> Result<Vec<ChurnWindowStats>> {
    schedule.validate()?;
    if net.live_count() < 2 {
        return Err(Error::InvalidConfig(format!(
            "continuous churn needs a running overlay (>= 2 live peers), got {}",
            net.live_count()
        )));
    }
    let mut results = Vec::with_capacity(windows);
    if windows == 0 {
        return Ok(results);
    }

    let mut queue: EventQueue<EngineEvent> = EventQueue::new();
    let mut join_gaps = seed.child(LBL_JOIN_GAPS).rng();
    let mut crash_gaps = seed.child(LBL_CRASH_GAPS).rng();
    let mut depart_gaps = seed.child(LBL_DEPART_GAPS).rng();
    let mut crash_pick = seed.child(LBL_CRASH_PICK).rng();
    let mut depart_pick = seed.child(LBL_DEPART_PICK).rng();

    // Every window timer is scheduled up front, before anything else, so
    // each WindowEnd carries a lower FIFO sequence than every membership
    // event and rewire sweep (initial or rescheduled): an event landing
    // exactly on a window boundary is always counted in the *next*
    // window, and a coinciding sweep repairs only *after* the books
    // close — a window reports the damage churn accumulated since the
    // last repair, under any `rewire_every`/`window_ticks` ratio.
    for k in 1..=windows as u64 {
        queue.schedule(
            VirtualTime(k * schedule.window_ticks),
            EngineEvent::WindowEnd,
        );
    }
    if schedule.join_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.join_rate, &mut join_gaps),
            EngineEvent::Join,
        );
    }
    if schedule.crash_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.crash_rate, &mut crash_gaps),
            EngineEvent::Crash,
        );
    }
    if schedule.depart_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.depart_rate, &mut depart_gaps),
            EngineEvent::Depart,
        );
    }
    if let RepairPolicy::SweepEvery(every) = schedule.repair {
        if every > 0 {
            queue.schedule_in(every, EngineEvent::Rewire);
        }
    }

    // Lifetime counters for per-activity seed derivation; window counters
    // reset at each measurement.
    let mut joins_total = 0u64;
    let mut rewires_total = 0u64;
    let mut repairs_total = 0u64;
    let mut window_start = VirtualTime(0);
    let mut w = ChurnWindowStats::fresh(0, window_start);

    while results.len() < windows {
        let (now, event) = queue
            .pop()
            .expect("an engine process or the window timer is always scheduled");
        match event {
            EngineEvent::Join => {
                let join_seed = seed.child2(LBL_JOIN, joins_total);
                joins_total += 1;
                let mut jrng = join_seed.rng();
                let caps = degrees.sample(&mut jrng);
                // Resample identifier collisions, like the growth driver.
                let mut admitted = false;
                for _ in 0..1000 {
                    let id = keys.sample(&mut jrng);
                    if net.idx_of(id).is_none() {
                        let p = net.add_peer(id, caps)?;
                        builder.build_links(net, p, &mut jrng)?;
                        admitted = true;
                        break;
                    }
                }
                if !admitted {
                    return Err(Error::InvalidConfig(
                        "key distribution too degenerate: 1000 consecutive id collisions".into(),
                    ));
                }
                w.joins += 1;
                queue.schedule_in(
                    exponential_gap(schedule.join_rate, &mut join_gaps),
                    EngineEvent::Join,
                );
            }
            EngineEvent::Crash => {
                if net.live_count() > schedule.min_live {
                    let victim = net
                        .random_live_peer(&mut crash_pick)
                        .expect("live_count > min_live >= 1");
                    schedule_reactive_repairs(net, &mut queue, &schedule.repair, victim);
                    net.kill(victim)?;
                    w.crashes += 1;
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.crash_rate, &mut crash_gaps),
                    EngineEvent::Crash,
                );
            }
            EngineEvent::Depart => {
                if net.live_count() > schedule.min_live {
                    let victim = net
                        .random_live_peer(&mut depart_pick)
                        .expect("live_count > min_live >= 1");
                    schedule_reactive_repairs(net, &mut queue, &schedule.repair, victim);
                    net.depart(victim)?;
                    w.departs += 1;
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.depart_rate, &mut depart_gaps),
                    EngineEvent::Depart,
                );
            }
            EngineEvent::Rewire => {
                let before = net.metrics.total();
                let swept = net.live_count() as u64;
                rewire_all_peers(net, builder, seed.child2(LBL_REWIRE, rewires_total))?;
                rewires_total += 1;
                w.rewires += 1;
                w.repairs += swept;
                w.repair_cost += net.metrics.total() - before;
                let RepairPolicy::SweepEvery(every) = schedule.repair else {
                    unreachable!("Rewire events are only scheduled by SweepEvery")
                };
                queue.schedule_in(every, EngineEvent::Rewire);
            }
            EngineEvent::Repair(p) => {
                // The target may have crashed or departed between failure
                // detection and the repair firing; a corpse has no links
                // to rebuild.
                if net.is_alive(p) {
                    let mut rrng = seed.child2(LBL_REPAIR, repairs_total).rng();
                    repairs_total += 1;
                    let before = net.metrics.total();
                    builder.rewire(net, p, &mut rrng)?;
                    w.repairs += 1;
                    w.repair_cost += net.metrics.total() - before;
                }
            }
            EngineEvent::WindowEnd => {
                let widx = results.len();
                let mut qrng = seed.child2(LBL_MEASURE, widx as u64).rng();
                w.window = widx;
                w.start = window_start;
                w.end = now;
                w.live_at_end = net.live_count();
                let batch = schedule.query_budget.resolve(w.live_at_end);
                w.queries = if matches!(schedule.repair, RepairPolicy::OnProbe) {
                    // The measurement batch doubles as the failure
                    // detector: every peer that probed a corpse schedules
                    // its own rewire, which lands (after the books close)
                    // in the next window.
                    let mut probers = Vec::new();
                    let stats = run_query_batch_observed(
                        net,
                        workload,
                        batch,
                        &RoutePolicy::default(),
                        &mut qrng,
                        &mut probers,
                    );
                    for p in probers {
                        queue.schedule_in(REPAIR_DELAY, EngineEvent::Repair(p));
                    }
                    stats
                } else {
                    run_query_batch(net, workload, batch, &RoutePolicy::default(), &mut qrng)
                };
                results.push(w.clone());
                window_start = now;
                w = ChurnWindowStats::fresh(widx + 1, window_start);
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use crate::peer::{LinkError, PeerIdx};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::UniformKeys;

    /// Toy builder: links to up to 4 random live peers.
    struct RandomBuilder;

    impl OverlayBuilder for RandomBuilder {
        fn name(&self) -> &str {
            "random"
        }
        fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
            for _ in 0..16 {
                if net.peer(p).out_degree() >= 4 {
                    break;
                }
                if let Some(t) = net.random_live_peer(rng) {
                    match net.try_link(p, t) {
                        Ok(())
                        | Err(LinkError::SelfLink)
                        | Err(LinkError::Duplicate)
                        | Err(LinkError::TargetFull) => {}
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
            Ok(())
        }
    }

    fn grown(n: usize, seed: u64) -> Network {
        use crate::growth::{GrowthConfig, GrowthDriver};
        let mut net = Network::new(FaultModel::StabilizedRing);
        GrowthDriver::new(GrowthConfig {
            target_size: n,
            seed_size: 4,
            checkpoints: vec![],
            rewire_at_checkpoints: false,
        })
        .run(
            &mut net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            SeedTree::new(seed),
            |_, _| Ok(()),
        )
        .unwrap();
        net
    }

    fn run(
        net: &mut Network,
        schedule: &ChurnSchedule,
        windows: usize,
        seed: u64,
    ) -> Vec<ChurnWindowStats> {
        run_continuous_churn(
            net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            schedule,
            windows,
            SeedTree::new(seed),
        )
        .unwrap()
    }

    #[test]
    fn windows_cover_the_virtual_timeline() {
        let mut net = grown(120, 1);
        let schedule = ChurnSchedule {
            window_ticks: 500,
            query_budget: QueryBudget::Fixed(50),
            ..ChurnSchedule::symmetric(0.05)
        };
        let ws = run(&mut net, &schedule, 4, 9);
        assert_eq!(ws.len(), 4);
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.window, i);
            assert_eq!(w.start, VirtualTime(i as u64 * 500));
            assert_eq!(w.end, VirtualTime((i as u64 + 1) * 500));
            assert!(w.queries.queries > 0, "window {i} issued no queries");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let schedule = ChurnSchedule::symmetric(0.08);
        let mut a = grown(150, 2);
        let mut b = grown(150, 2);
        let wa = run(&mut a, &schedule, 3, 7);
        let wb = run(&mut b, &schedule, 3, 7);
        assert_eq!(wa, wb, "same seed, same windows");
        let mut c = grown(150, 2);
        let wc = run(&mut c, &schedule, 3, 8);
        assert_ne!(wa, wc, "different engine seed diverges");
    }

    #[test]
    fn symmetric_rates_hold_the_population() {
        let mut net = grown(200, 3);
        let ws = run(&mut net, &ChurnSchedule::symmetric(0.1), 6, 11);
        for w in &ws {
            assert!(
                (100..=300).contains(&w.live_at_end),
                "population drifted to {} in window {}",
                w.live_at_end,
                w.window
            );
            assert!(w.joins > 0 && w.crashes > 0, "both processes must fire");
        }
    }

    #[test]
    fn join_only_grows_and_crash_only_shrinks_to_the_floor() {
        let mut net = grown(100, 4);
        let join_only = ChurnSchedule {
            crash_rate: 0.0,
            ..ChurnSchedule::symmetric(0.1)
        };
        let ws = run(&mut net, &join_only, 3, 13);
        assert!(
            ws.last().unwrap().live_at_end > 200,
            "joins should compound"
        );
        assert!(ws.iter().all(|w| w.crashes == 0 && w.departs == 0));

        let mut net = grown(100, 5);
        let crash_only = ChurnSchedule {
            join_rate: 0.0,
            min_live: 40,
            ..ChurnSchedule::symmetric(0.2)
        };
        let ws = run(&mut net, &crash_only, 4, 13);
        let last = ws.last().unwrap();
        assert_eq!(last.live_at_end, 40, "floor must hold exactly");
        assert!(last.suppressed > 0, "floor suppressions must be counted");
    }

    #[test]
    fn departures_leave_no_dangling_links() {
        let mut net = grown(150, 6);
        let depart_only = ChurnSchedule {
            join_rate: 0.0,
            crash_rate: 0.0,
            depart_rate: 0.15,
            repair: RepairPolicy::SweepEvery(0),
            ..ChurnSchedule::symmetric(0.0)
        };
        let ws = run(&mut net, &depart_only, 3, 17);
        assert!(ws.iter().map(|w| w.departs).sum::<u64>() > 0);
        // Graceful departures tear links down cleanly: every remaining
        // out-link targets a live peer, so queries waste nothing.
        for p in net.live_peers().collect::<Vec<_>>() {
            for &t in &net.peer(p).long_out {
                assert!(net.is_alive(t), "departure left a dangling link");
            }
        }
        assert_eq!(ws.last().unwrap().queries.mean_wasted, 0.0);
    }

    #[test]
    fn rewire_sweeps_fire_on_schedule() {
        let mut net = grown(100, 7);
        let schedule = ChurnSchedule {
            repair: RepairPolicy::SweepEvery(250),
            window_ticks: 1000,
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 2, 19);
        // Sweeps land at ticks 250, 500, 750, 1000, … — but at a window
        // boundary the measurement wins the FIFO tie (it was scheduled a
        // whole window earlier), so the boundary sweep is counted in the
        // *next* window: 3 sweeps in window 0, then 4 per window.
        assert_eq!(ws[0].rewires, 3);
        assert_eq!(ws[1].rewires, 4);
    }

    #[test]
    fn measurements_precede_sweeps_even_when_the_sweep_period_spans_windows() {
        // Regression: with `rewire_every > window_ticks` the first sweep
        // used to be enqueued (at init, t=0) with a lower FIFO sequence
        // than the coinciding window timer (enqueued one window later),
        // so the tick-200 measurement saw a freshly-swept network.
        // Pre-scheduling every window timer makes the measurement win all
        // same-tick ties: sweeps at 200, 400, 600 land *after* the books
        // close, i.e. in windows 2, 4, 6.
        let mut net = grown(100, 10);
        let schedule = ChurnSchedule {
            repair: RepairPolicy::SweepEvery(200),
            window_ticks: 100,
            query_budget: QueryBudget::Fixed(30),
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 7, 23);
        let rewires: Vec<u64> = ws.iter().map(|w| w.rewires).collect();
        assert_eq!(rewires, vec![0, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn query_budgets_resolve_against_the_live_population() {
        assert_eq!(QueryBudget::Fixed(200).resolve(10), 200);
        assert_eq!(QueryBudget::Fixed(200).resolve(1_000_000), 200);
        let sqrt = QueryBudget::SqrtLive { min: 32 };
        assert_eq!(sqrt.resolve(4), 32, "floored below min^2");
        assert_eq!(sqrt.resolve(10_000), 100);
        assert_eq!(sqrt.resolve(1_000_000), 1_000);
        let frac = QueryBudget::FractionCapped {
            fraction: 0.25,
            cap: 500,
        };
        assert_eq!(frac.resolve(100), 25);
        assert_eq!(frac.resolve(2_000), 500, "capped");
        assert_eq!(frac.resolve(0), 1, "never resolves to zero");
    }

    #[test]
    fn sublinear_budgets_drive_real_windows() {
        let mut net = grown(150, 77);
        let schedule = ChurnSchedule {
            query_budget: QueryBudget::SqrtLive { min: 8 },
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 3, 78);
        for w in &ws {
            let expect = schedule.query_budget.resolve(w.live_at_end);
            assert_eq!(w.queries.queries, expect, "window {}", w.window);
            assert!(w.queries.queries < 150, "sublinear at this scale");
        }
    }

    #[test]
    fn invalid_schedules_are_config_errors() {
        let mut net = grown(50, 8);
        let bad = [
            ChurnSchedule {
                join_rate: -0.1,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                crash_rate: f64::NAN,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                window_ticks: 0,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                query_budget: QueryBudget::Fixed(0),
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                query_budget: QueryBudget::SqrtLive { min: 0 },
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                query_budget: QueryBudget::FractionCapped {
                    fraction: 0.0,
                    cap: 100,
                },
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                query_budget: QueryBudget::FractionCapped {
                    fraction: 0.25,
                    cap: 0,
                },
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                min_live: 0,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                repair: RepairPolicy::Reactive { neighbors_k: 0 },
                ..ChurnSchedule::symmetric(0.1)
            },
        ];
        for schedule in bad {
            let r = run_continuous_churn(
                &mut net,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(8),
                &schedule,
                2,
                SeedTree::new(1),
            );
            assert!(
                matches!(r, Err(Error::InvalidConfig(_))),
                "schedule {schedule:?} must be rejected"
            );
        }
        // An empty network is not a runnable overlay either.
        let mut empty = Network::new(FaultModel::StabilizedRing);
        assert!(matches!(
            run_continuous_churn(
                &mut empty,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(8),
                &ChurnSchedule::symmetric(0.1),
                1,
                SeedTree::new(1),
            ),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_windows_do_nothing() {
        let mut net = grown(60, 9);
        let before = net.live_count();
        let ws = run(&mut net, &ChurnSchedule::symmetric(0.1), 0, 21);
        assert!(ws.is_empty());
        assert_eq!(net.live_count(), before, "no windows, no churn applied");
    }

    #[test]
    fn sweeps_record_per_peer_repairs_and_cost() {
        let mut net = grown(100, 30);
        let schedule = ChurnSchedule {
            repair: RepairPolicy::SweepEvery(1000),
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 2, 31);
        // Sweep at tick 1000 lands in window 1 (the boundary measurement
        // wins the FIFO tie); it rewires every peer live at sweep time —
        // the whole population, give or take the churn since the window
        // opened.
        assert_eq!(ws[0].repairs, 0);
        assert_eq!(ws[0].repair_cost, 0);
        assert_eq!(ws[1].rewires, 1);
        assert!(
            ws[1].repairs > ws[1].live_at_end as u64 / 2,
            "a sweep rewires the whole population: {} repairs, {} live",
            ws[1].repairs,
            ws[1].live_at_end
        );
        assert!(ws[1].repair_cost > 0, "a sweep generates link traffic");
    }

    #[test]
    fn reactive_repairs_follow_membership_events() {
        let mut net = grown(150, 32);
        let schedule = ChurnSchedule {
            repair: RepairPolicy::Reactive { neighbors_k: 2 },
            ..ChurnSchedule::symmetric(0.05)
        };
        let ws = run(&mut net, &schedule, 3, 33);
        let events: u64 = ws.iter().map(|w| w.crashes + w.departs).sum();
        let repairs: u64 = ws.iter().map(|w| w.repairs).sum();
        assert!(events > 0, "schedule must generate membership events");
        assert!(repairs > 0, "reactive repairs must fire");
        // At most 2k repairs per event (fewer when a scheduled target
        // itself died before its repair fired); never a whole sweep.
        assert!(
            repairs <= 4 * events,
            "repairs {repairs} exceed 2k per membership event ({events} events)"
        );
        assert!(
            ws.iter().all(|w| w.rewires == 0),
            "no sweeps under Reactive"
        );
        assert!(ws.iter().map(|w| w.repair_cost).sum::<u64>() > 0);
    }

    #[test]
    fn reactive_repair_is_cheaper_than_sweeping() {
        // 2%/window turnover on 200 peers (the regime the policy is
        // for): a sweep rewires all ~200 peers per window while reactive
        // rewires ~4 per membership event. At extreme turnover (a large
        // fraction of the population per window) the two converge.
        let schedule_with = |repair: RepairPolicy| ChurnSchedule {
            repair,
            ..ChurnSchedule::symmetric(0.004)
        };
        let mut a = grown(200, 34);
        let sweep = run(
            &mut a,
            &schedule_with(RepairPolicy::SweepEvery(1000)),
            4,
            35,
        );
        let mut b = grown(200, 34);
        let reactive = run(
            &mut b,
            &schedule_with(RepairPolicy::Reactive { neighbors_k: 2 }),
            4,
            35,
        );
        let total = |ws: &[ChurnWindowStats]| ws.iter().map(|w| w.repair_cost).sum::<u64>();
        assert!(
            total(&reactive) * 4 < total(&sweep),
            "reactive repair should cost a small fraction of sweeping: {} vs {}",
            total(&reactive),
            total(&sweep)
        );
    }

    #[test]
    fn on_probe_repairs_trail_corpse_probes() {
        // Crashes with no sweeps leave dangling links; the window-end
        // query batches probe them, so under OnProbe the probing peers
        // rewire themselves early in the *next* window.
        let mut net = grown(150, 36);
        let schedule = ChurnSchedule {
            join_rate: 0.0,
            crash_rate: 0.08,
            repair: RepairPolicy::OnProbe,
            min_live: 40,
            ..ChurnSchedule::symmetric(0.0)
        };
        let ws = run(&mut net, &schedule, 4, 37);
        assert_eq!(
            ws[0].repairs, 0,
            "no probes happened before window 0 closed"
        );
        let later: u64 = ws[1..].iter().map(|w| w.repairs).sum();
        assert!(later > 0, "corpse probes must trigger repairs: {ws:?}");
        assert!(ws.iter().all(|w| w.rewires == 0), "no sweeps under OnProbe");
    }

    #[test]
    fn every_policy_is_deterministic_under_seed() {
        for repair in [
            RepairPolicy::SweepEvery(700),
            RepairPolicy::Reactive { neighbors_k: 2 },
            RepairPolicy::OnProbe,
        ] {
            let schedule = ChurnSchedule {
                repair: repair.clone(),
                ..ChurnSchedule::symmetric(0.08)
            };
            let mut a = grown(150, 40);
            let mut b = grown(150, 40);
            assert_eq!(
                run(&mut a, &schedule, 3, 41),
                run(&mut b, &schedule, 3, 41),
                "{repair:?} must be a pure function of the seed"
            );
        }
    }

    #[test]
    fn exponential_gaps_match_the_rate() {
        // Mean of exponential(λ) is 1/λ; the integer clamp biases the mean
        // up by at most half a tick, so a generous band suffices.
        let mut rng = SeedTree::new(33).rng();
        let rate = 0.05;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| exponential_gap(rate, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 2.0,
            "mean gap {mean:.2} far from {:.2}",
            1.0 / rate
        );
        // The clamp floor: very high rates still advance time.
        assert!(exponential_gap(1e9, &mut rng) >= 1);
    }
}
