//! Continuous-churn engine: sustained join/crash/depart at a rate.
//!
//! The paper's churn experiments (Figure 2) are one-shot crash waves
//! measured on post-wave snapshots; its harder open regime is a network
//! under *sustained* membership change, measured at steady state. This
//! engine drives [`Network::add_peer`] / [`Network::kill`] /
//! [`Network::depart`] from independent Poisson processes on the
//! discrete-event queue ([`EventQueue`]): each process draws exponential
//! inter-arrival times from its own seed-tree stream, periodic rewire
//! sweeps repair dangling links, and measurement windows of fixed virtual
//! length aggregate cost, wasted traffic, success rate and the live
//! population over time.
//!
//! Everything derives from one [`SeedTree`], so a run is a pure function
//! of `(network, schedule, windows, seed)` — the bench drivers fan
//! independent runs over worker threads with byte-identical results.

use crate::events::{EventQueue, VirtualTime};
use crate::growth::{rewire_all_peers, OverlayBuilder};
use crate::network::Network;
use crate::routing::{run_query_batch, QueryBatchStats, RoutePolicy};
use oscar_degree::DegreeDistribution;
use oscar_keydist::{KeyDistribution, QueryWorkload};
use oscar_types::{Error, Result, SeedTree};
use rand::rngs::SmallRng;
use rand::Rng;

/// Seed-tree labels for the engine's RNG streams.
const LBL_JOIN_GAPS: u64 = 1;
const LBL_CRASH_GAPS: u64 = 2;
const LBL_DEPART_GAPS: u64 = 3;
const LBL_JOIN: u64 = 4;
const LBL_CRASH_PICK: u64 = 5;
const LBL_DEPART_PICK: u64 = 6;
const LBL_REWIRE: u64 = 7;
const LBL_MEASURE: u64 = 8;

/// Rates and windows of a continuous-churn run.
///
/// Rates are expected events per virtual tick; each membership process is
/// an independent Poisson process (exponential inter-arrival times), so
/// joins and crashes genuinely interleave rather than alternating on a
/// fixed grid. A rate of `0.0` disables the process.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnSchedule {
    /// Expected joins per tick.
    pub join_rate: f64,
    /// Expected crashes (abrupt failures leaving dangling links) per tick.
    pub crash_rate: f64,
    /// Expected graceful departures (clean link teardown) per tick.
    pub depart_rate: f64,
    /// Rewire every live peer's long-range links every this many ticks
    /// (the repair protocol of the paper's checkpoints); `0` disables
    /// sweeps, which lets dangling-link waste accumulate.
    pub rewire_every: u64,
    /// Virtual length of one measurement window.
    pub window_ticks: u64,
    /// Queries issued at the end of each window (uniform live targets).
    pub queries_per_window: usize,
    /// Crash/depart events fizzle while the live population is at or
    /// below this floor, so a crash-heavy schedule cannot extinguish the
    /// network mid-experiment.
    pub min_live: usize,
}

impl ChurnSchedule {
    /// A population-neutral schedule: joins and crashes at the same rate,
    /// no graceful departures, one rewire sweep per window.
    pub fn symmetric(rate_per_tick: f64) -> Self {
        ChurnSchedule {
            join_rate: rate_per_tick,
            crash_rate: rate_per_tick,
            depart_rate: 0.0,
            rewire_every: 1000,
            window_ticks: 1000,
            queries_per_window: 200,
            min_live: 16,
        }
    }

    /// Checks the schedule is runnable.
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("join_rate", self.join_rate),
            ("crash_rate", self.crash_rate),
            ("depart_rate", self.depart_rate),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "{name} must be a finite non-negative rate, got {rate}"
                )));
            }
        }
        if self.window_ticks == 0 {
            return Err(Error::InvalidConfig(
                "window_ticks must be >= 1: zero-length windows measure nothing".into(),
            ));
        }
        if self.queries_per_window == 0 {
            return Err(Error::InvalidConfig(
                "queries_per_window must be >= 1: a window without queries has no data point"
                    .into(),
            ));
        }
        if self.min_live < 1 {
            return Err(Error::InvalidConfig(
                "min_live must be >= 1: the engine never extinguishes the network".into(),
            ));
        }
        Ok(())
    }
}

/// What one measurement window observed.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnWindowStats {
    /// 0-based window index.
    pub window: usize,
    /// Window start (inclusive).
    pub start: VirtualTime,
    /// Window end (the measurement instant).
    pub end: VirtualTime,
    /// Joins completed during the window.
    pub joins: u64,
    /// Crashes injected during the window.
    pub crashes: u64,
    /// Graceful departures during the window.
    pub departs: u64,
    /// Rewire-all sweeps during the window.
    pub rewires: u64,
    /// Crash/depart arrivals suppressed by the `min_live` floor.
    pub suppressed: u64,
    /// Live population at the measurement instant.
    pub live_at_end: usize,
    /// The window's query batch (cost, wasted traffic, success rate).
    pub queries: QueryBatchStats,
}

impl ChurnWindowStats {
    /// Zeroed accumulator for the window opening at `start`.
    fn fresh(window: usize, start: VirtualTime) -> Self {
        ChurnWindowStats {
            window,
            start,
            end: start,
            joins: 0,
            crashes: 0,
            departs: 0,
            rewires: 0,
            suppressed: 0,
            live_at_end: 0,
            queries: QueryBatchStats::default(),
        }
    }
}

/// The engine's event alphabet.
#[derive(Copy, Clone, Debug)]
enum EngineEvent {
    Join,
    Crash,
    Depart,
    Rewire,
    WindowEnd,
}

/// Draws an exponential inter-arrival gap (in whole ticks, >= 1) for a
/// Poisson process with `rate` events per tick.
fn exponential_gap(rate: f64, rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen(); // [0, 1)
                            // -ln(1-u)/rate, clamped into [1, 2^40] ticks: a gap of one tick is
                            // the event-queue resolution, and the upper clamp keeps a glacial
                            // rate from overflowing the virtual clock.
    let gap = -(1.0 - u).ln() / rate;
    (gap.ceil() as u64).clamp(1, 1 << 40)
}

/// Runs `windows` measurement windows of continuous churn on `net`.
///
/// Joins sample fresh identifiers from `keys` and caps from `degrees`,
/// then build links through `builder` — exactly the growth driver's join
/// protocol, but interleaved with failures on the virtual clock. Crash
/// and depart victims are uniform over the live population.
///
/// Determinism: all randomness derives from `seed`; identical inputs give
/// identical windows, regardless of what else the process is doing.
pub fn run_continuous_churn<B: OverlayBuilder + ?Sized>(
    net: &mut Network,
    builder: &B,
    keys: &dyn KeyDistribution,
    degrees: &dyn DegreeDistribution,
    schedule: &ChurnSchedule,
    windows: usize,
    seed: SeedTree,
) -> Result<Vec<ChurnWindowStats>> {
    schedule.validate()?;
    if net.live_count() < 2 {
        return Err(Error::InvalidConfig(format!(
            "continuous churn needs a running overlay (>= 2 live peers), got {}",
            net.live_count()
        )));
    }
    let mut results = Vec::with_capacity(windows);
    if windows == 0 {
        return Ok(results);
    }

    let mut queue: EventQueue<EngineEvent> = EventQueue::new();
    let mut join_gaps = seed.child(LBL_JOIN_GAPS).rng();
    let mut crash_gaps = seed.child(LBL_CRASH_GAPS).rng();
    let mut depart_gaps = seed.child(LBL_DEPART_GAPS).rng();
    let mut crash_pick = seed.child(LBL_CRASH_PICK).rng();
    let mut depart_pick = seed.child(LBL_DEPART_PICK).rng();

    // Every window timer is scheduled up front, before anything else, so
    // each WindowEnd carries a lower FIFO sequence than every membership
    // event and rewire sweep (initial or rescheduled): an event landing
    // exactly on a window boundary is always counted in the *next*
    // window, and a coinciding sweep repairs only *after* the books
    // close — a window reports the damage churn accumulated since the
    // last repair, under any `rewire_every`/`window_ticks` ratio.
    for k in 1..=windows as u64 {
        queue.schedule(
            VirtualTime(k * schedule.window_ticks),
            EngineEvent::WindowEnd,
        );
    }
    if schedule.join_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.join_rate, &mut join_gaps),
            EngineEvent::Join,
        );
    }
    if schedule.crash_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.crash_rate, &mut crash_gaps),
            EngineEvent::Crash,
        );
    }
    if schedule.depart_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.depart_rate, &mut depart_gaps),
            EngineEvent::Depart,
        );
    }
    if schedule.rewire_every > 0 {
        queue.schedule_in(schedule.rewire_every, EngineEvent::Rewire);
    }

    // Lifetime counters for per-activity seed derivation; window counters
    // reset at each measurement.
    let mut joins_total = 0u64;
    let mut rewires_total = 0u64;
    let mut window_start = VirtualTime(0);
    let mut w = ChurnWindowStats::fresh(0, window_start);

    while results.len() < windows {
        let (now, event) = queue
            .pop()
            .expect("an engine process or the window timer is always scheduled");
        match event {
            EngineEvent::Join => {
                let join_seed = seed.child2(LBL_JOIN, joins_total);
                joins_total += 1;
                let mut jrng = join_seed.rng();
                let caps = degrees.sample(&mut jrng);
                // Resample identifier collisions, like the growth driver.
                let mut admitted = false;
                for _ in 0..1000 {
                    let id = keys.sample(&mut jrng);
                    if net.idx_of(id).is_none() {
                        let p = net.add_peer(id, caps)?;
                        builder.build_links(net, p, &mut jrng)?;
                        admitted = true;
                        break;
                    }
                }
                if !admitted {
                    return Err(Error::InvalidConfig(
                        "key distribution too degenerate: 1000 consecutive id collisions".into(),
                    ));
                }
                w.joins += 1;
                queue.schedule_in(
                    exponential_gap(schedule.join_rate, &mut join_gaps),
                    EngineEvent::Join,
                );
            }
            EngineEvent::Crash => {
                if net.live_count() > schedule.min_live {
                    let victim = net
                        .random_live_peer(&mut crash_pick)
                        .expect("live_count > min_live >= 1");
                    net.kill(victim)?;
                    w.crashes += 1;
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.crash_rate, &mut crash_gaps),
                    EngineEvent::Crash,
                );
            }
            EngineEvent::Depart => {
                if net.live_count() > schedule.min_live {
                    let victim = net
                        .random_live_peer(&mut depart_pick)
                        .expect("live_count > min_live >= 1");
                    net.depart(victim)?;
                    w.departs += 1;
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.depart_rate, &mut depart_gaps),
                    EngineEvent::Depart,
                );
            }
            EngineEvent::Rewire => {
                rewire_all_peers(net, builder, seed.child2(LBL_REWIRE, rewires_total))?;
                rewires_total += 1;
                w.rewires += 1;
                queue.schedule_in(schedule.rewire_every, EngineEvent::Rewire);
            }
            EngineEvent::WindowEnd => {
                let widx = results.len();
                let mut qrng = seed.child2(LBL_MEASURE, widx as u64).rng();
                w.window = widx;
                w.start = window_start;
                w.end = now;
                w.live_at_end = net.live_count();
                w.queries = run_query_batch(
                    net,
                    &QueryWorkload::UniformPeers,
                    schedule.queries_per_window,
                    &RoutePolicy::default(),
                    &mut qrng,
                );
                results.push(w.clone());
                window_start = now;
                w = ChurnWindowStats::fresh(widx + 1, window_start);
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use crate::peer::{LinkError, PeerIdx};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::UniformKeys;

    /// Toy builder: links to up to 4 random live peers.
    struct RandomBuilder;

    impl OverlayBuilder for RandomBuilder {
        fn name(&self) -> &str {
            "random"
        }
        fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
            for _ in 0..16 {
                if net.peer(p).out_degree() >= 4 {
                    break;
                }
                if let Some(t) = net.random_live_peer(rng) {
                    match net.try_link(p, t) {
                        Ok(())
                        | Err(LinkError::SelfLink)
                        | Err(LinkError::Duplicate)
                        | Err(LinkError::TargetFull) => {}
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
            Ok(())
        }
    }

    fn grown(n: usize, seed: u64) -> Network {
        use crate::growth::{GrowthConfig, GrowthDriver};
        let mut net = Network::new(FaultModel::StabilizedRing);
        GrowthDriver::new(GrowthConfig {
            target_size: n,
            seed_size: 4,
            checkpoints: vec![],
            rewire_at_checkpoints: false,
        })
        .run(
            &mut net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            SeedTree::new(seed),
            |_, _| Ok(()),
        )
        .unwrap();
        net
    }

    fn run(
        net: &mut Network,
        schedule: &ChurnSchedule,
        windows: usize,
        seed: u64,
    ) -> Vec<ChurnWindowStats> {
        run_continuous_churn(
            net,
            &RandomBuilder,
            &UniformKeys,
            &ConstantDegrees::new(8),
            schedule,
            windows,
            SeedTree::new(seed),
        )
        .unwrap()
    }

    #[test]
    fn windows_cover_the_virtual_timeline() {
        let mut net = grown(120, 1);
        let schedule = ChurnSchedule {
            window_ticks: 500,
            queries_per_window: 50,
            ..ChurnSchedule::symmetric(0.05)
        };
        let ws = run(&mut net, &schedule, 4, 9);
        assert_eq!(ws.len(), 4);
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.window, i);
            assert_eq!(w.start, VirtualTime(i as u64 * 500));
            assert_eq!(w.end, VirtualTime((i as u64 + 1) * 500));
            assert!(w.queries.queries > 0, "window {i} issued no queries");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let schedule = ChurnSchedule::symmetric(0.08);
        let mut a = grown(150, 2);
        let mut b = grown(150, 2);
        let wa = run(&mut a, &schedule, 3, 7);
        let wb = run(&mut b, &schedule, 3, 7);
        assert_eq!(wa, wb, "same seed, same windows");
        let mut c = grown(150, 2);
        let wc = run(&mut c, &schedule, 3, 8);
        assert_ne!(wa, wc, "different engine seed diverges");
    }

    #[test]
    fn symmetric_rates_hold_the_population() {
        let mut net = grown(200, 3);
        let ws = run(&mut net, &ChurnSchedule::symmetric(0.1), 6, 11);
        for w in &ws {
            assert!(
                (100..=300).contains(&w.live_at_end),
                "population drifted to {} in window {}",
                w.live_at_end,
                w.window
            );
            assert!(w.joins > 0 && w.crashes > 0, "both processes must fire");
        }
    }

    #[test]
    fn join_only_grows_and_crash_only_shrinks_to_the_floor() {
        let mut net = grown(100, 4);
        let join_only = ChurnSchedule {
            crash_rate: 0.0,
            ..ChurnSchedule::symmetric(0.1)
        };
        let ws = run(&mut net, &join_only, 3, 13);
        assert!(
            ws.last().unwrap().live_at_end > 200,
            "joins should compound"
        );
        assert!(ws.iter().all(|w| w.crashes == 0 && w.departs == 0));

        let mut net = grown(100, 5);
        let crash_only = ChurnSchedule {
            join_rate: 0.0,
            min_live: 40,
            ..ChurnSchedule::symmetric(0.2)
        };
        let ws = run(&mut net, &crash_only, 4, 13);
        let last = ws.last().unwrap();
        assert_eq!(last.live_at_end, 40, "floor must hold exactly");
        assert!(last.suppressed > 0, "floor suppressions must be counted");
    }

    #[test]
    fn departures_leave_no_dangling_links() {
        let mut net = grown(150, 6);
        let depart_only = ChurnSchedule {
            join_rate: 0.0,
            crash_rate: 0.0,
            depart_rate: 0.15,
            rewire_every: 0,
            ..ChurnSchedule::symmetric(0.0)
        };
        let ws = run(&mut net, &depart_only, 3, 17);
        assert!(ws.iter().map(|w| w.departs).sum::<u64>() > 0);
        // Graceful departures tear links down cleanly: every remaining
        // out-link targets a live peer, so queries waste nothing.
        for p in net.live_peers().collect::<Vec<_>>() {
            for &t in &net.peer(p).long_out {
                assert!(net.is_alive(t), "departure left a dangling link");
            }
        }
        assert_eq!(ws.last().unwrap().queries.mean_wasted, 0.0);
    }

    #[test]
    fn rewire_sweeps_fire_on_schedule() {
        let mut net = grown(100, 7);
        let schedule = ChurnSchedule {
            rewire_every: 250,
            window_ticks: 1000,
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 2, 19);
        // Sweeps land at ticks 250, 500, 750, 1000, … — but at a window
        // boundary the measurement wins the FIFO tie (it was scheduled a
        // whole window earlier), so the boundary sweep is counted in the
        // *next* window: 3 sweeps in window 0, then 4 per window.
        assert_eq!(ws[0].rewires, 3);
        assert_eq!(ws[1].rewires, 4);
    }

    #[test]
    fn measurements_precede_sweeps_even_when_the_sweep_period_spans_windows() {
        // Regression: with `rewire_every > window_ticks` the first sweep
        // used to be enqueued (at init, t=0) with a lower FIFO sequence
        // than the coinciding window timer (enqueued one window later),
        // so the tick-200 measurement saw a freshly-swept network.
        // Pre-scheduling every window timer makes the measurement win all
        // same-tick ties: sweeps at 200, 400, 600 land *after* the books
        // close, i.e. in windows 2, 4, 6.
        let mut net = grown(100, 10);
        let schedule = ChurnSchedule {
            rewire_every: 200,
            window_ticks: 100,
            queries_per_window: 30,
            ..ChurnSchedule::symmetric(0.02)
        };
        let ws = run(&mut net, &schedule, 7, 23);
        let rewires: Vec<u64> = ws.iter().map(|w| w.rewires).collect();
        assert_eq!(rewires, vec![0, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn invalid_schedules_are_config_errors() {
        let mut net = grown(50, 8);
        let bad = [
            ChurnSchedule {
                join_rate: -0.1,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                crash_rate: f64::NAN,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                window_ticks: 0,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                queries_per_window: 0,
                ..ChurnSchedule::symmetric(0.1)
            },
            ChurnSchedule {
                min_live: 0,
                ..ChurnSchedule::symmetric(0.1)
            },
        ];
        for schedule in bad {
            let r = run_continuous_churn(
                &mut net,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(8),
                &schedule,
                2,
                SeedTree::new(1),
            );
            assert!(
                matches!(r, Err(Error::InvalidConfig(_))),
                "schedule {schedule:?} must be rejected"
            );
        }
        // An empty network is not a runnable overlay either.
        let mut empty = Network::new(FaultModel::StabilizedRing);
        assert!(matches!(
            run_continuous_churn(
                &mut empty,
                &RandomBuilder,
                &UniformKeys,
                &ConstantDegrees::new(8),
                &ChurnSchedule::symmetric(0.1),
                1,
                SeedTree::new(1),
            ),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_windows_do_nothing() {
        let mut net = grown(60, 9);
        let before = net.live_count();
        let ws = run(&mut net, &ChurnSchedule::symmetric(0.1), 0, 21);
        assert!(ws.is_empty());
        assert_eq!(net.live_count(), before, "no windows, no churn applied");
    }

    #[test]
    fn exponential_gaps_match_the_rate() {
        // Mean of exponential(λ) is 1/λ; the integer clamp biases the mean
        // up by at most half a tick, so a generous band suffices.
        let mut rng = SeedTree::new(33).rng();
        let rate = 0.05;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| exponential_gap(rate, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 2.0,
            "mean gap {mean:.2} far from {:.2}",
            1.0 / rate
        );
        // The clamp floor: very high rates still advance time.
        assert!(exponential_gap(1e9, &mut rng) >= 1);
    }
}
