//! Continuous churn through the protocol machines — the second backend.
//!
//! [`run_continuous_churn`](crate::churn_engine::run_continuous_churn)
//! drives Poisson join/crash/depart against the oracle-backed
//! [`Network`](crate::network::Network): repairs are `builder.rewire`
//! calls and failure detection is free (the engine simply knows who is
//! dead). This module runs the *same* [`ChurnSchedule`] against a fleet
//! of [`PeerMachine`](oscar_protocol::PeerMachine)s hosted by any
//! [`ProtocolDriver`] — the discrete-event simulator or the threaded
//! actor runtime — where death must be *discovered* (ring probes,
//! bounced sends, retry give-ups) and every repair is real messages.
//!
//! The engine owns the Poisson clock and the window books; the machines
//! own detection and repair. Policy mapping
//! ([`machine_repair_policy`]):
//!
//! * `SweepEvery(t)` → machines run `oscar_protocol::RepairPolicy::Off`; the
//!   engine
//!   injects [`Command::Rewire`] to every live peer every `t` ticks
//!   (the checkpoint protocol: O(n) per sweep, no detection needed).
//! * `Reactive { k }` → machines run `ReactiveK { k }`; the engine
//!   injects [`Command::ProbeRing`] every `probe_every` ticks and the
//!   machines rewire where probes find corpses — O(damage) repair.
//! * `OnProbe` → machines run `OnProbe`; ring probes run at depth 1 and
//!   each measurement query that bounces off a corpse rewires its
//!   prober, so repair trails the traffic that discovered the damage.
//!
//! Window books ([`ChurnWindowStats`]): `repairs` counts
//! [`ProtocolEvent::RepairFired`] (sweeps count one per swept peer,
//! matching the legacy engine); `repair_cost` is the driver's `sent()`
//! delta across sweep and probe settles — honest maintenance traffic,
//! including the failure-detection pings the oracle backend gets for
//! free. Repairs fired *by* a measurement batch (the `OnProbe` path)
//! are booked to the next window, exactly like the legacy engine's
//! delayed repair events. `OnProbe` repair walks ride the measurement
//! settle, so their traffic lands in the query books rather than
//! `repair_cost` — the sweep-vs-reactive comparison is unaffected.
//!
//! Multi-phase runs ([`run_machine_phases`]): a scenario is a sequence
//! of [`MachinePhase`]s — churn/measurement spans, mass-join bursts and
//! contiguous arc kills — over one bootstrapped fleet. Each phase
//! derives its randomness from a `LBL_SPAN`-keyed child of the run
//! seed, and each churn span restarts its virtual clock at zero (the
//! scenario layer re-indexes windows globally). [`run_machine_churn`]
//! is the single-span special case and derives exactly the same streams
//! it always has, so committed machine baselines are unaffected.
//!
//! Determinism: every draw comes from a labelled child of the run seed
//! (scope `sim_churn_machine`), walks and queries carry token RNGs, and
//! query reports are aggregated in qid order — so a DES run and a
//! threaded-runtime run at the same seed produce the same windows.

use crate::churn_engine::{exponential_gap, ChurnSchedule, ChurnWindowStats, RepairPolicy};
use crate::events::{EventQueue, VirtualTime};
use crate::routing::QueryBatchStats;
use oscar_keydist::{KeyDistribution, QueryTarget, QueryWorkload};
use oscar_protocol::{Command, ProtocolDriver, ProtocolEvent, QueryReport};
use oscar_types::labels::sim_churn_machine::{
    LBL_BOOT, LBL_CRASH_GAPS, LBL_CRASH_PICK, LBL_DEPART_GAPS, LBL_DEPART_PICK, LBL_JOIN,
    LBL_JOIN_GAPS, LBL_MEASURE, LBL_SPAN,
};
use oscar_types::{Error, Id, P2Quantile, Result, SeedTree};
use rand::rngs::SmallRng;
use rand::Rng;

/// Timer-round budget for one settle: far above any single membership
/// event's retry chains, so a hit means a protocol livelock, not churn.
const SETTLE_ROUNDS: u64 = 4096;

/// Shape of the machine fleet a churn run is driven against.
#[derive(Clone, Debug)]
pub struct MachineChurnConfig {
    /// Peers bootstrapped (serial joins) before the schedule starts.
    pub initial_peers: usize,
    /// Sampling walks per link build: joins, sweeps, and bootstrap all
    /// launch this many (repairs use `PeerConfig::repair_walks`).
    pub build_walks: u32,
    /// Ring-probe cadence in virtual ticks (reactive policies only).
    pub probe_every: u64,
}

impl Default for MachineChurnConfig {
    fn default() -> Self {
        MachineChurnConfig {
            initial_peers: 64,
            build_walks: 3,
            probe_every: 100,
        }
    }
}

impl MachineChurnConfig {
    /// Checks the config is runnable.
    pub fn validate(&self) -> Result<()> {
        if self.initial_peers < 2 {
            return Err(Error::InvalidConfig(
                "machine churn needs initial_peers >= 2: one peer has no overlay".into(),
            ));
        }
        if self.probe_every == 0 {
            return Err(Error::InvalidConfig(
                "probe_every must be >= 1: zero-cadence probing never detects anything".into(),
            ));
        }
        Ok(())
    }
}

/// The machine-side repair policy a [`ChurnSchedule`] maps to. Callers
/// must build their driver's `PeerConfig` with this before running —
/// the engine cannot reconfigure machines after spawn.
pub fn machine_repair_policy(repair: &RepairPolicy) -> oscar_protocol::RepairPolicy {
    match repair {
        RepairPolicy::SweepEvery(_) => oscar_protocol::RepairPolicy::Off,
        RepairPolicy::Reactive { neighbors_k } => {
            oscar_protocol::RepairPolicy::ReactiveK { k: *neighbors_k }
        }
        RepairPolicy::OnProbe => oscar_protocol::RepairPolicy::OnProbe,
    }
}

/// The engine's event alphabet (the machine analogue of the legacy
/// engine's: sweeps become `Rewire` injections, reactive repair becomes
/// probe rounds, and there is no oracle `Repair` event — machines fire
/// their own).
#[derive(Copy, Clone, Debug)]
enum MachineEvent {
    Join,
    Crash,
    Depart,
    /// Ring-probe round across the live fleet (reactive policies).
    Probe,
    /// Whole-network rewire sweep (`SweepEvery`).
    Sweep,
    WindowEnd,
}

/// One step of a multi-phase machine scenario run.
#[derive(Clone, Debug)]
pub enum MachinePhase {
    /// A span of Poisson churn measured per window. Zero rates make it a
    /// pure measurement span; `workload` picks what the window batches
    /// target (`UniformPeers` reproduces the classic runs).
    Churn {
        /// Rates, repair policy and window geometry of the span.
        schedule: ChurnSchedule,
        /// Measurement workload of the span's window batches.
        workload: QueryWorkload,
        /// Measurement windows in the span.
        windows: usize,
    },
    /// A flash crowd: exactly `count` serial joins through random live
    /// contacts, links built immediately (no measurement of its own —
    /// follow with a zero-rate `Churn` span to observe the aftermath).
    MassJoin {
        /// Joins injected by the burst.
        count: usize,
    },
    /// A regional outage: crashes the contiguous arc of
    /// `fraction · live` peers starting at ring position `start` (a
    /// fraction of the sorted-identifier ring; values wrap). Survivors
    /// must *discover* the hole — probes and queries in later phases do.
    KillArc {
        /// Ring position of the arc's first victim, as a fraction.
        start: f64,
        /// Fraction of the live fleet killed, in `(0, 1)`.
        fraction: f64,
    },
}

/// Runs `windows` measurement windows of continuous churn against the
/// machines hosted by `driver`, which must be empty (the engine
/// bootstraps its own fleet so both drivers start from the same state).
///
/// Joins sample fresh identifiers from `keys` and enter through a
/// uniformly random live contact; crash and depart victims are uniform
/// over the live population; every window closes with a query batch
/// sized by the schedule's budget. Identical inputs give identical
/// windows on either driver.
pub fn run_machine_churn<D: ProtocolDriver>(
    driver: &mut D,
    keys: &dyn KeyDistribution,
    cfg: &MachineChurnConfig,
    schedule: &ChurnSchedule,
    windows: usize,
    seed: SeedTree,
) -> Result<Vec<ChurnWindowStats>> {
    schedule.validate()?;
    cfg.validate()?;
    bootstrap_fleet(driver, keys, cfg, &seed)?;
    let mut carry_repairs = 0u64;
    churn_span(
        driver,
        keys,
        cfg,
        schedule,
        &QueryWorkload::UniformPeers,
        windows,
        &seed,
        &mut carry_repairs,
    )
}

/// Runs a sequence of [`MachinePhase`]s over one bootstrapped fleet —
/// the machine backend of the scenario engine. Returns one
/// `Vec<ChurnWindowStats>` per phase, empty for phases that measure
/// nothing themselves (`MassJoin`, `KillArc`).
///
/// Phase `p` derives all randomness from `seed.child2(LBL_SPAN, p)`;
/// repairs fired by a phase's trailing measurement batch carry into the
/// next churn span's first window, mirroring the single-span engine's
/// next-window booking. Works on any [`ProtocolDriver`] and is
/// bit-deterministic per `(phases, seed)` on all of them.
pub fn run_machine_phases<D: ProtocolDriver>(
    driver: &mut D,
    keys: &dyn KeyDistribution,
    cfg: &MachineChurnConfig,
    phases: &[MachinePhase],
    seed: SeedTree,
) -> Result<Vec<Vec<ChurnWindowStats>>> {
    cfg.validate()?;
    bootstrap_fleet(driver, keys, cfg, &seed)?;
    let mut results = Vec::with_capacity(phases.len());
    let mut carry_repairs = 0u64;
    for (p, phase) in phases.iter().enumerate() {
        let span_seed = seed.child2(LBL_SPAN, p as u64);
        match phase {
            MachinePhase::Churn {
                schedule,
                workload,
                windows,
            } => {
                schedule.validate()?;
                results.push(churn_span(
                    driver,
                    keys,
                    cfg,
                    schedule,
                    workload,
                    *windows,
                    &span_seed,
                    &mut carry_repairs,
                )?);
            }
            MachinePhase::MassJoin { count } => {
                for i in 0..*count {
                    let mut jrng = span_seed.child2(LBL_JOIN, i as u64).rng();
                    machine_join(driver, keys, cfg, &mut jrng)?;
                    carry_repairs += absorb_repairs(driver);
                }
                results.push(Vec::new());
            }
            MachinePhase::KillArc { start, fraction } => {
                let live = driver.peer_ids();
                let n = live.len();
                if n < 3 {
                    return Err(Error::InvalidConfig(format!(
                        "KillArc needs >= 3 live peers, got {n}"
                    )));
                }
                if !fraction.is_finite() || *fraction <= 0.0 || *fraction >= 1.0 {
                    return Err(Error::InvalidConfig(format!(
                        "KillArc fraction must be in (0, 1), got {fraction}"
                    )));
                }
                let count = ((n as f64 * fraction).ceil() as usize).clamp(1, n - 2);
                let first = (start.rem_euclid(1.0) * n as f64) as usize % n;
                for i in 0..count {
                    // Abrupt, like the Crash event: no farewell, mail to
                    // the corpses bounces until survivors rewire.
                    driver.remove_peer(live[(first + i) % n]);
                }
                results.push(Vec::new());
            }
        }
    }
    Ok(results)
}

/// Bootstraps the fleet: serial joins through the first peer, then one
/// serialized link build per peer. The driver must start empty so both
/// drivers (and every run) grow identical overlays from the seed.
fn bootstrap_fleet<D: ProtocolDriver>(
    driver: &mut D,
    keys: &dyn KeyDistribution,
    cfg: &MachineChurnConfig,
    seed: &SeedTree,
) -> Result<()> {
    if !driver.peer_ids().is_empty() {
        return Err(Error::InvalidConfig(
            "machine churn bootstraps its own fleet: the driver must start empty".into(),
        ));
    }
    let mut boot = seed.child(LBL_BOOT).rng();
    let mut ids: Vec<Id> = Vec::with_capacity(cfg.initial_peers);
    while ids.len() < cfg.initial_peers {
        let mut placed = false;
        for _ in 0..1000 {
            let id = keys.sample(&mut boot);
            if !ids.contains(&id) {
                ids.push(id);
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(Error::InvalidConfig(
                "key distribution too degenerate: 1000 consecutive id collisions".into(),
            ));
        }
    }
    driver.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        driver.spawn_peer(id);
        driver.inject(id, Command::Join { contact: ids[0] });
        driver.settle(SETTLE_ROUNDS);
    }
    // One settle per peer, here and in the probe/sweep handlers below:
    // concurrent walks read each other's half-built link tables in
    // whatever order the driver interleaves them, which would make link
    // state scheduling-dependent on the threaded runtime. Serialized
    // injection keeps every link-mutating phase a pure function of the
    // trace, so both drivers grow identical overlays.
    for &id in &ids {
        driver.inject(
            id,
            Command::BuildLinks {
                walks: cfg.build_walks,
            },
        );
        driver.settle(SETTLE_ROUNDS);
    }
    driver.drain_events(); // bootstrap milestones are not window data
    Ok(())
}

/// Admits one joiner: samples a fresh identifier (resampling collisions,
/// like the legacy engine), joins through a uniformly random live
/// contact and builds links once the splice settled.
fn machine_join<D: ProtocolDriver>(
    driver: &mut D,
    keys: &dyn KeyDistribution,
    cfg: &MachineChurnConfig,
    jrng: &mut SmallRng,
) -> Result<()> {
    let live = driver.peer_ids();
    for _ in 0..1000 {
        let id = keys.sample(jrng);
        if live.binary_search(&id).is_err() {
            let contact = live[jrng.gen_range(0..live.len())];
            driver.spawn_peer(id);
            driver.inject(id, Command::Join { contact });
            driver.settle(SETTLE_ROUNDS);
            // Links only after the splice: a walk needs the joiner's
            // ring links to leave from.
            driver.inject(
                id,
                Command::BuildLinks {
                    walks: cfg.build_walks,
                },
            );
            driver.settle(SETTLE_ROUNDS);
            return Ok(());
        }
    }
    Err(Error::InvalidConfig(
        "key distribution too degenerate: 1000 consecutive id collisions".into(),
    ))
}

/// One churn span: `windows` measurement windows of Poisson churn, all
/// randomness derived from `span_seed`, virtual clock starting at zero.
/// `carry_repairs` feeds repairs booked past the previous span's books
/// into this span's first window and returns this span's own trailing
/// batch repairs the same way.
#[allow(clippy::too_many_arguments)]
fn churn_span<D: ProtocolDriver>(
    driver: &mut D,
    keys: &dyn KeyDistribution,
    cfg: &MachineChurnConfig,
    schedule: &ChurnSchedule,
    workload: &QueryWorkload,
    windows: usize,
    span_seed: &SeedTree,
    carry_repairs: &mut u64,
) -> Result<Vec<ChurnWindowStats>> {
    let mut results = Vec::with_capacity(windows);
    if windows == 0 {
        return Ok(results);
    }

    // --- schedule: same pre-scheduled window timers as the legacy engine
    // (a WindowEnd on a boundary tick always outranks same-tick churn).
    let mut queue: EventQueue<MachineEvent> = EventQueue::new();
    let mut join_gaps = span_seed.child(LBL_JOIN_GAPS).rng();
    let mut crash_gaps = span_seed.child(LBL_CRASH_GAPS).rng();
    let mut depart_gaps = span_seed.child(LBL_DEPART_GAPS).rng();
    let mut crash_pick = span_seed.child(LBL_CRASH_PICK).rng();
    let mut depart_pick = span_seed.child(LBL_DEPART_PICK).rng();
    for k in 1..=windows as u64 {
        queue.schedule(
            VirtualTime(k * schedule.window_ticks),
            MachineEvent::WindowEnd,
        );
    }
    if schedule.join_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.join_rate, &mut join_gaps),
            MachineEvent::Join,
        );
    }
    if schedule.crash_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.crash_rate, &mut crash_gaps),
            MachineEvent::Crash,
        );
    }
    if schedule.depart_rate > 0.0 {
        queue.schedule_in(
            exponential_gap(schedule.depart_rate, &mut depart_gaps),
            MachineEvent::Depart,
        );
    }
    match schedule.repair {
        RepairPolicy::SweepEvery(every) => {
            if every > 0 {
                queue.schedule_in(every, MachineEvent::Sweep);
            }
        }
        RepairPolicy::Reactive { .. } | RepairPolicy::OnProbe => {
            queue.schedule_in(cfg.probe_every, MachineEvent::Probe);
        }
    }

    let mut joins_total = 0u64;
    let mut window_start = VirtualTime(0);
    let mut w = ChurnWindowStats::fresh(0, window_start);
    w.repairs += *carry_repairs;
    *carry_repairs = 0;

    while results.len() < windows {
        let (now, event) = queue
            .pop()
            .expect("an engine process or the window timer is always scheduled");
        match event {
            MachineEvent::Join => {
                let join_seed = span_seed.child2(LBL_JOIN, joins_total);
                joins_total += 1;
                let mut jrng = join_seed.rng();
                machine_join(driver, keys, cfg, &mut jrng)?;
                w.joins += 1;
                w.repairs += absorb_repairs(driver);
                queue.schedule_in(
                    exponential_gap(schedule.join_rate, &mut join_gaps),
                    MachineEvent::Join,
                );
            }
            MachineEvent::Crash => {
                let live = driver.peer_ids();
                if live.len() > schedule.min_live {
                    let victim = live[crash_pick.gen_range(0..live.len())];
                    // Abrupt: no farewell, mail to the corpse bounces (or
                    // blackholes, per the fault plan). Survivors discover
                    // the hole at the next probe round or query.
                    driver.remove_peer(victim);
                    w.crashes += 1;
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.crash_rate, &mut crash_gaps),
                    MachineEvent::Crash,
                );
            }
            MachineEvent::Depart => {
                let live = driver.peer_ids();
                if live.len() > schedule.min_live {
                    let victim = live[depart_pick.gen_range(0..live.len())];
                    driver.inject(victim, Command::Depart);
                    driver.settle(SETTLE_ROUNDS);
                    driver.remove_peer(victim);
                    w.departs += 1;
                    w.repairs += absorb_repairs(driver);
                } else {
                    w.suppressed += 1;
                }
                queue.schedule_in(
                    exponential_gap(schedule.depart_rate, &mut depart_gaps),
                    MachineEvent::Depart,
                );
            }
            MachineEvent::Probe => {
                let before = driver.sent();
                for id in driver.peer_ids() {
                    driver.inject(id, Command::ProbeRing);
                    driver.settle(SETTLE_ROUNDS);
                }
                w.repair_cost += driver.sent() - before;
                w.repairs += absorb_repairs(driver);
                queue.schedule_in(cfg.probe_every, MachineEvent::Probe);
            }
            MachineEvent::Sweep => {
                let live = driver.peer_ids();
                let before = driver.sent();
                for &id in &live {
                    driver.inject(
                        id,
                        Command::Rewire {
                            walks: cfg.build_walks,
                        },
                    );
                    driver.settle(SETTLE_ROUNDS);
                }
                w.rewires += 1;
                w.repairs += live.len() as u64;
                w.repair_cost += driver.sent() - before;
                driver.drain_events();
                let RepairPolicy::SweepEvery(every) = schedule.repair else {
                    unreachable!("Sweep events are only scheduled by SweepEvery")
                };
                queue.schedule_in(every, MachineEvent::Sweep);
            }
            MachineEvent::WindowEnd => {
                let widx = results.len();
                let mut qrng = span_seed.child2(LBL_MEASURE, widx as u64).rng();
                w.window = widx;
                w.start = window_start;
                w.end = now;
                // Close the repair books before measuring: batch-triggered
                // repairs (OnProbe) belong to the next window, like the
                // legacy engine's delayed repair events.
                w.repairs += absorb_repairs(driver);
                let live = driver.peer_ids();
                w.live_at_end = live.len();
                let batch = schedule.query_budget.resolve(w.live_at_end);
                let mut issued = 0usize;
                for q in 0..batch {
                    if live.is_empty() {
                        break;
                    }
                    let src = live[qrng.gen_range(0..live.len())];
                    let key = match workload.draw(live.len(), &mut qrng) {
                        QueryTarget::PeerRank(r) => live[r],
                        QueryTarget::Key(k) => k,
                    };
                    driver.inject(
                        src,
                        Command::StartQuery {
                            qid: ((widx as u64) << 32) | q as u64,
                            key,
                        },
                    );
                    issued += 1;
                }
                driver.settle(SETTLE_ROUNDS);
                let (mut reports, batch_repairs) = split_events(driver.drain_events());
                // The P² estimators are observation-order sensitive; qid
                // order is the one ordering every driver agrees on.
                reports.sort_by_key(|r| r.qid);
                w.queries = aggregate_reports(&reports, issued);
                results.push(w.clone());
                window_start = now;
                w = ChurnWindowStats::fresh(widx + 1, window_start);
                w.repairs += batch_repairs;
            }
        }
    }
    // Whatever the last measurement batch triggered was booked to the
    // window that will never close in this span; hand it to the caller so
    // a following span can own it instead of silently dropping it.
    *carry_repairs = w.repairs;
    Ok(results)
}

/// Drains the driver's events and counts the repairs that fired.
fn absorb_repairs<D: ProtocolDriver>(driver: &mut D) -> u64 {
    driver
        .drain_events()
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::RepairFired { .. }))
        .count() as u64
}

/// Splits a measurement settle's events into query reports and the
/// count of repairs the batch itself triggered.
fn split_events(events: Vec<ProtocolEvent>) -> (Vec<QueryReport>, u64) {
    let mut reports = Vec::new();
    let mut repairs = 0u64;
    for e in events {
        match e {
            ProtocolEvent::QueryCompleted(r) => reports.push(r),
            ProtocolEvent::RepairFired { .. } => repairs += 1,
            _ => {}
        }
    }
    (reports, repairs)
}

/// Aggregates query reports with the same streaming math as the oracle
/// backend's batch runner (`routing::run_query_batch`): wasted traffic
/// over all issued queries, cost statistics over the successful ones.
/// A query that produced no report (killed outright by the fault plan)
/// counts as issued-and-failed with zero observed waste.
fn aggregate_reports(reports: &[QueryReport], issued: usize) -> QueryBatchStats {
    let mut p50 = P2Quantile::new(0.50);
    let mut p95 = P2Quantile::new(0.95);
    let mut cost_sum = 0.0f64;
    let mut cost_sumsq = 0.0f64;
    let mut max_cost = 0u32;
    let mut hops_sum = 0u64;
    let mut wasted_sum = 0u64;
    let mut successes = 0usize;
    for r in reports {
        wasted_sum += r.wasted as u64;
        if r.success {
            successes += 1;
            let c = r.cost();
            let cf = c as f64;
            cost_sum += cf;
            cost_sumsq += cf * cf;
            max_cost = max_cost.max(c);
            p50.observe(cf);
            p95.observe(cf);
            hops_sum += r.hops as u64;
        }
    }
    let mut stats = QueryBatchStats {
        queries: issued,
        ..Default::default()
    };
    stats.success_rate = successes as f64 / issued.max(1) as f64;
    stats.mean_wasted = wasted_sum as f64 / issued.max(1) as f64;
    if successes > 0 {
        let m = successes as f64;
        stats.mean_cost = cost_sum / m;
        stats.mean_hops = hops_sum as f64 / m;
        stats.max_cost = max_cost;
        stats.p50_cost = p50.value();
        stats.p95_cost = p95.value();
        if successes > 1 {
            let var = ((cost_sumsq - cost_sum * cost_sum / m) / (m - 1.0)).max(0.0);
            stats.se_cost = (var / m).sqrt();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn_engine::QueryBudget;
    use crate::protocol_des::DesDriver;
    use oscar_keydist::UniformKeys;
    use oscar_protocol::{FaultPlan, PeerConfig};

    fn des_for(schedule: &ChurnSchedule, seed: u64) -> DesDriver {
        let peer_cfg = PeerConfig {
            repair: machine_repair_policy(&schedule.repair),
            ..PeerConfig::default()
        };
        DesDriver::new_with_faults(seed, peer_cfg, FaultPlan::reliable())
    }

    fn small_schedule(repair: RepairPolicy) -> ChurnSchedule {
        ChurnSchedule {
            join_rate: 0.004,
            crash_rate: 0.004,
            depart_rate: 0.001,
            repair,
            window_ticks: 400,
            query_budget: crate::churn_engine::QueryBudget::Fixed(40),
            min_live: 8,
        }
    }

    fn run(repair: RepairPolicy, seed: u64) -> Vec<ChurnWindowStats> {
        let schedule = small_schedule(repair);
        let mut des = des_for(&schedule, seed);
        let cfg = MachineChurnConfig {
            initial_peers: 32,
            build_walks: 3,
            probe_every: 100,
        };
        run_machine_churn(
            &mut des,
            &UniformKeys,
            &cfg,
            &schedule,
            3,
            SeedTree::new(seed),
        )
        .unwrap()
    }

    #[test]
    fn windows_carry_churn_and_query_books() {
        let windows = run(RepairPolicy::Reactive { neighbors_k: 2 }, 7);
        assert_eq!(windows.len(), 3);
        let joins: u64 = windows.iter().map(|w| w.joins).sum();
        let crashes: u64 = windows.iter().map(|w| w.crashes).sum();
        assert!(joins > 0, "0.004/tick over 1200 ticks must join someone");
        assert!(crashes > 0, "0.004/tick over 1200 ticks must crash someone");
        for w in &windows {
            assert_eq!(w.queries.queries, 40);
            assert!(w.live_at_end >= 8);
            assert!(
                w.queries.success_rate > 0.5,
                "window {}: reactive repair must keep the overlay navigable, got {}",
                w.window,
                w.queries.success_rate
            );
        }
    }

    #[test]
    fn reactive_detection_repairs_crash_damage() {
        let windows = run(RepairPolicy::Reactive { neighbors_k: 2 }, 11);
        let crashes: u64 = windows.iter().map(|w| w.crashes).sum();
        let repairs: u64 = windows.iter().map(|w| w.repairs).sum();
        assert!(crashes > 0);
        assert!(
            repairs > 0,
            "probe rounds must detect {crashes} crashes and fire repairs"
        );
        let cost: u64 = windows.iter().map(|w| w.repair_cost).sum();
        assert!(cost > 0, "detection and repair are real messages here");
    }

    #[test]
    fn sweeps_repair_without_detection() {
        let windows = run(RepairPolicy::SweepEvery(400), 13);
        let rewires: u64 = windows.iter().map(|w| w.rewires).sum();
        let repairs: u64 = windows.iter().map(|w| w.repairs).sum();
        assert!(rewires >= 2, "a sweep every window-length must fire");
        assert!(repairs > rewires, "each sweep rewires the whole fleet");
        for w in &windows {
            assert!(
                w.queries.success_rate > 0.5,
                "sweeps must keep the overlay navigable"
            );
        }
    }

    #[test]
    fn same_seed_same_windows() {
        let a = run(RepairPolicy::Reactive { neighbors_k: 2 }, 23);
        let b = run(RepairPolicy::Reactive { neighbors_k: 2 }, 23);
        assert_eq!(a, b, "machine churn must be bit-deterministic");
    }

    #[test]
    fn reactive_repair_is_cheaper_than_sweeping() {
        let reactive = run(RepairPolicy::Reactive { neighbors_k: 2 }, 31);
        let sweep = run(RepairPolicy::SweepEvery(400), 31);
        let rc: u64 = reactive.iter().map(|w| w.repair_cost).sum();
        let sc: u64 = sweep.iter().map(|w| w.repair_cost).sum();
        // At 32 peers the probe rounds are a sizeable fraction of a sweep,
        // so only strict ordering holds here; the order-of-magnitude gap
        // appears at scale (see the phase tests in `tests/`).
        assert!(
            rc < sc,
            "reactive maintenance ({rc} msgs) must undercut sweeps ({sc} msgs)"
        );
    }

    fn measure_phase(windows: usize) -> MachinePhase {
        MachinePhase::Churn {
            schedule: ChurnSchedule {
                join_rate: 0.0,
                crash_rate: 0.0,
                depart_rate: 0.0,
                repair: RepairPolicy::Reactive { neighbors_k: 2 },
                window_ticks: 400,
                query_budget: QueryBudget::Fixed(40),
                min_live: 8,
            },
            workload: QueryWorkload::UniformPeers,
            windows,
        }
    }

    fn phase_cfg() -> MachineChurnConfig {
        MachineChurnConfig {
            initial_peers: 32,
            build_walks: 3,
            probe_every: 100,
        }
    }

    fn run_phases(phases: &[MachinePhase], seed: u64) -> Vec<Vec<ChurnWindowStats>> {
        let schedule = small_schedule(RepairPolicy::Reactive { neighbors_k: 2 });
        let mut des = des_for(&schedule, seed);
        run_machine_phases(
            &mut des,
            &UniformKeys,
            &phase_cfg(),
            phases,
            SeedTree::new(seed),
        )
        .unwrap()
    }

    #[test]
    fn phases_mass_join_grows_the_fleet() {
        let phases = vec![
            measure_phase(1),
            MachinePhase::MassJoin { count: 16 },
            measure_phase(1),
        ];
        let out = run_phases(&phases, 41);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].len(), 1);
        assert!(out[1].is_empty(), "a burst phase has no windows");
        assert_eq!(out[2][0].live_at_end, out[0][0].live_at_end + 16);
        assert!(
            out[2][0].queries.success_rate > 0.9,
            "a 50% flash crowd must not break delivery, got {}",
            out[2][0].queries.success_rate
        );
    }

    #[test]
    fn phases_kill_arc_damages_then_probes_recover() {
        let phases = vec![
            measure_phase(1),
            MachinePhase::KillArc {
                start: 0.25,
                fraction: 0.2,
            },
            // Two zero-rate spans: probes run between windows, so the
            // second span measures the healed overlay.
            measure_phase(4),
        ];
        let out = run_phases(&phases, 43);
        let pre = out[0][0].queries.success_rate;
        let post = out[2].last().unwrap().queries.success_rate;
        assert_eq!(out[2][0].live_at_end, 32 - 7); // ceil(32 * 0.2) = 7
        let repairs: u64 = out[2].iter().map(|w| w.repairs).sum();
        assert!(repairs > 0, "probe rounds must discover the arc kill");
        assert!(
            post >= pre - 0.05,
            "reactive probes must heal the outage: pre {pre}, post {post}"
        );
    }

    #[test]
    fn phases_are_deterministic_and_reject_bad_specs() {
        let phases = vec![
            measure_phase(1),
            MachinePhase::MassJoin { count: 8 },
            MachinePhase::KillArc {
                start: 0.9,
                fraction: 0.1,
            },
            measure_phase(2),
        ];
        let a = run_phases(&phases, 47);
        let b = run_phases(&phases, 47);
        assert_eq!(a, b, "multi-phase machine runs must be bit-deterministic");

        let schedule = small_schedule(RepairPolicy::Reactive { neighbors_k: 2 });
        let mut des = des_for(&schedule, 1);
        let bad = vec![MachinePhase::KillArc {
            start: 0.0,
            fraction: 1.5,
        }];
        assert!(
            run_machine_phases(&mut des, &UniformKeys, &phase_cfg(), &bad, SeedTree::new(1))
                .is_err()
        );
    }
}
