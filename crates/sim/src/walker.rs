//! Random-walk peer sampling (the Mercury technique, plus Oscar's
//! sub-population restriction).
//!
//! Oscar's median estimation needs (near-)uniform samples from arbitrary
//! sub-populations of peers without any global knowledge. The mechanism is
//! a random walk over the overlay graph:
//!
//! * walks traverse the **undirected** link graph (ring + long-range links
//!   in either direction) — a link is a connection both endpoints can use;
//! * a **Metropolis–Hastings** correction (move `u → v` accepted with
//!   probability `min(1, deg(u)/deg(v))`) makes the stationary distribution
//!   uniform over peers despite degree heterogeneity — without it, spiky
//!   degree distributions would bias every estimate toward hubs;
//! * for sub-population sampling, the walk simply refuses to leave the
//!   identifier arc ("random walkers which do not visit nodes with
//!   identifiers that do not belong to the current population", §2 of the
//!   paper). The induced subgraph always contains the arc's ring path, so
//!   it is connected and the restricted walk converges on the arc.
//!
//! Every step is a simulated message ([`MsgKind::WalkStep`]); rejected MH
//! moves and forced stays still consume a step, because the probe that
//! discovered the rejection travelled the wire.

use crate::metrics::MsgKind;
use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_protocol::logic;
use oscar_types::{Arc, Error, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// Random-walk parameters.
#[derive(Copy, Clone, Debug)]
pub struct WalkConfig {
    /// Steps walked before emitting a sample. The graph is an expander
    /// once long links exist, so a few dozen steps suffice; this is the
    /// `O(log N)`-ish walk length Mercury uses.
    pub burn_in: u32,
    /// Apply the Metropolis–Hastings degree correction (on by default;
    /// turning it off is ablation material — hubs get oversampled).
    pub metropolis_hastings: bool,
    /// Serve walk proposals from the network's sorted walk-adjacency
    /// cache (on by default): restricted degree and uniform neighbour
    /// pick become O(log deg) binary searches instead of an O(deg)
    /// collect-and-filter per step. Both paths run the *same chain* —
    /// uniform proposal over the restricted neighbours, same MH ratio —
    /// but enumerate neighbours in different orders, so they produce
    /// different (equally valid) realisations from the same seed. The
    /// knob exists for the `join_cost` bench to measure the fast path
    /// against the recollect-and-retain baseline.
    pub cached: bool,
    /// Chained sampling: `0` (default) gives every sample of
    /// [`Walker::sample_many`] its own fresh `burn_in`-step walk from the
    /// start peer; `t > 0` walks one burn-in and then emits each further
    /// sample after only `t` thinning steps, continuing from the previous
    /// sample. Consecutive samples are then correlated — fine for median
    /// estimation (ablation-validated), much cheaper per sample.
    pub chain_thin: u32,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            burn_in: 24,
            metropolis_hastings: true,
            cached: true,
            chain_thin: 0,
        }
    }
}

impl WalkConfig {
    /// Same config with chained sampling at the given thinning interval.
    pub fn with_chain_thin(mut self, thin: u32) -> Self {
        self.chain_thin = thin;
        self
    }

    /// Same config with the walk-adjacency cache disabled — the bench
    /// baseline; the chain is the same, only slower (see
    /// [`WalkConfig::cached`]).
    pub fn without_cache(mut self) -> Self {
        self.cached = false;
        self
    }
}

/// A reusable sampler bound to a network snapshot.
///
/// Holds workhorse buffers so repeated sampling does not allocate.
pub struct Walker<'a> {
    net: &'a Network,
    cfg: WalkConfig,
    buf_cur: Vec<PeerIdx>,
    buf_deg: Vec<PeerIdx>,
    /// Walk steps consumed since the last [`Walker::take_steps`] call.
    steps: u64,
}

impl<'a> Walker<'a> {
    /// New sampler over `net`.
    pub fn new(net: &'a Network, cfg: WalkConfig) -> Self {
        Walker {
            net,
            cfg,
            buf_cur: Vec::with_capacity(64),
            buf_deg: Vec::with_capacity(64),
            steps: 0,
        }
    }

    /// Steps consumed since last drained; the caller credits them to
    /// [`MsgKind::WalkStep`] (the walker holds `&Network`, so it cannot
    /// write metrics itself).
    pub fn take_steps(&mut self) -> u64 {
        std::mem::take(&mut self.steps)
    }

    /// Collects the live walk-neighbours of `p` that satisfy the arc
    /// restriction into `buf`, returning the restricted degree — the
    /// uncached baseline path.
    fn collect_restricted(
        net: &Network,
        p: PeerIdx,
        arc: Option<&Arc>,
        buf: &mut Vec<PeerIdx>,
    ) -> usize {
        net.walk_neighbors_into(p, buf);
        buf.retain(|&c| {
            net.is_alive(c)
                && match arc {
                    Some(a) => a.contains(net.peer(c).id),
                    None => true,
                }
        });
        buf.len()
    }

    /// Advances the walk by `steps` Metropolis–Hastings steps from
    /// `(current, cur_deg)`. On the uncached path `buf_cur` must hold
    /// `current`'s restricted neighbours on entry and holds the returned
    /// peer's on exit; the cached path proposes straight off the network's
    /// sorted adjacency cache and touches no buffers.
    fn advance(
        &mut self,
        current: PeerIdx,
        cur_deg: usize,
        arc: Option<&Arc>,
        steps: u32,
        rng: &mut SmallRng,
    ) -> (PeerIdx, usize) {
        if self.cfg.cached {
            return self.advance_cached(current, arc, steps, rng);
        }
        self.advance_uncached(current, cur_deg, arc, steps, rng)
    }

    /// Cached fast path: the current position's arc runs are resolved
    /// once per move, every proposal is a direct index into the sorted
    /// cached adjacency, and the candidate's runs — computed for the MH
    /// ratio — are promoted wholesale on acceptance. O(log deg) per step,
    /// no buffers.
    fn advance_cached(
        &mut self,
        mut current: PeerIdx,
        arc: Option<&Arc>,
        steps: u32,
        rng: &mut SmallRng,
    ) -> (PeerIdx, usize) {
        let mut runs = self.net.walk_runs(current, arc);
        for _ in 0..steps {
            self.steps += 1;
            if runs.count == 0 {
                // Isolated within the restriction (single-member arc):
                // the walk stays put; the sample is `current` itself.
                continue;
            }
            let k = logic::uniform_index(runs.count, rng);
            let cand = self.net.walk_neighbor_at(current, runs, k);
            let cand_runs = self.net.walk_runs(cand, arc);
            let accept = if self.cfg.metropolis_hastings {
                // min(1, deg(u)/deg(v)) — uniform stationary distribution.
                // Shared kernel: the protocol crate's PeerMachine applies
                // the same rule to its token walks.
                logic::mh_accept(runs.count, cand_runs.count, || rng.gen::<f64>())
            } else {
                true
            };
            if accept && cand_runs.count > 0 {
                current = cand;
                runs = cand_runs;
            }
        }
        (current, runs.count)
    }

    /// Uncached baseline: collect-and-retain per visited peer, with the
    /// buffer swap promoting the accepted candidate's list.
    fn advance_uncached(
        &mut self,
        mut current: PeerIdx,
        mut cur_deg: usize,
        arc: Option<&Arc>,
        steps: u32,
        rng: &mut SmallRng,
    ) -> (PeerIdx, usize) {
        for _ in 0..steps {
            self.steps += 1;
            if cur_deg == 0 {
                continue;
            }
            let k = logic::uniform_index(cur_deg, rng);
            let cand = self.buf_cur[k];
            let cand_deg = Self::collect_restricted(self.net, cand, arc, &mut self.buf_deg);
            let accept = if self.cfg.metropolis_hastings {
                logic::mh_accept(cur_deg, cand_deg, || rng.gen::<f64>())
            } else {
                true
            };
            if accept && cand_deg > 0 {
                // The candidate's restricted neighbours were just computed
                // for the MH ratio; the swap promotes them instead of
                // recomputing.
                current = cand;
                cur_deg = cand_deg;
                std::mem::swap(&mut self.buf_cur, &mut self.buf_deg);
            }
        }
        (current, cur_deg)
    }

    /// Validates the walk start and returns its restricted degree (on the
    /// uncached path, also primes `buf_cur` with its neighbours; the
    /// cached path resolves the start's runs itself in
    /// [`Walker::advance_cached`], so the returned degree is unused and
    /// not computed).
    fn start_walk(&mut self, start: PeerIdx, arc: Option<&Arc>) -> Result<usize> {
        if !self.net.is_alive(start) {
            return Err(Error::PeerDead(start.as_usize()));
        }
        if let Some(a) = arc {
            if !a.contains(self.net.peer(start).id) {
                return Err(Error::SamplingFailed {
                    reason: "walk start outside the restricted arc",
                });
            }
        }
        Ok(if self.cfg.cached {
            0 // unused: advance_cached re-derives the start's runs
        } else {
            Self::collect_restricted(self.net, start, arc, &mut self.buf_cur)
        })
    }

    /// One (near-)uniform sample from the peers of `arc` (or the whole
    /// live network when `arc` is `None`), starting the walk at `start`.
    ///
    /// `start` must be live and inside the arc — callers reach an entry
    /// point by ring routing first (counted separately).
    pub fn sample(
        &mut self,
        start: PeerIdx,
        arc: Option<&Arc>,
        rng: &mut SmallRng,
    ) -> Result<PeerIdx> {
        let cur_deg = self.start_walk(start, arc)?;
        let (current, _) = self.advance(start, cur_deg, arc, self.cfg.burn_in, rng);
        Ok(current)
    }

    /// `count` samples from one start. With `chain_thin == 0` each sample
    /// is an independent fresh `burn_in`-step walk from `start`; with
    /// `chain_thin = t > 0` the walk burns in once and then emits a sample
    /// every `t` steps, continuing from the previous sample (the classic
    /// MCMC thinning trade: correlated samples, `burn_in + (count-1)·t`
    /// steps instead of `count·burn_in`).
    pub fn sample_many(
        &mut self,
        start: PeerIdx,
        arc: Option<&Arc>,
        count: usize,
        rng: &mut SmallRng,
    ) -> Result<Vec<PeerIdx>> {
        let mut out = Vec::with_capacity(count);
        if self.cfg.chain_thin == 0 {
            for _ in 0..count {
                out.push(self.sample(start, arc, rng)?);
            }
            return Ok(out);
        }
        if count == 0 {
            // Still validate: callers treat an Ok return as "start usable".
            self.start_walk(start, arc)?;
            return Ok(out);
        }
        let mut cur_deg = self.start_walk(start, arc)?;
        let mut current = start;
        (current, cur_deg) = self.advance(current, cur_deg, arc, self.cfg.burn_in, rng);
        out.push(current);
        for _ in 1..count {
            (current, cur_deg) = self.advance(current, cur_deg, arc, self.cfg.chain_thin, rng);
            out.push(current);
        }
        Ok(out)
    }
}

/// Convenience wrapper that samples and credits the walk steps to the
/// network's metrics in one call (for callers holding `&mut Network`).
pub fn sample_peers(
    net: &mut Network,
    cfg: WalkConfig,
    start: PeerIdx,
    arc: Option<&Arc>,
    count: usize,
    rng: &mut SmallRng,
) -> Result<Vec<PeerIdx>> {
    let (result, steps) = {
        let mut walker = Walker::new(net, cfg);
        let r = walker.sample_many(start, arc, count, rng);
        let s = walker.take_steps();
        (r, s)
    };
    net.metrics.add(MsgKind::WalkStep, steps);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use oscar_degree::DegreeCaps;
    use oscar_types::{Id, SeedTree};

    /// Ring of n evenly spaced peers with `extra` random long links each.
    fn test_net(n: u64, extra: usize, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let step = u64::MAX / n;
        let idxs: Vec<PeerIdx> = (0..n)
            .map(|i| {
                net.add_peer(Id::new(i * step), DegreeCaps::symmetric(64))
                    .unwrap()
            })
            .collect();
        let mut rng = SeedTree::new(seed).rng();
        for &i in &idxs {
            for _ in 0..extra {
                let j = idxs[rng.gen_range(0..idxs.len())];
                let _ = net.try_link(i, j);
            }
        }
        net
    }

    #[test]
    fn unrestricted_sampling_is_roughly_uniform() {
        let net = test_net(64, 4, 1);
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 48,
                metropolis_hastings: true,
                ..WalkConfig::default()
            },
        );
        let mut rng = SeedTree::new(2).rng();
        let mut counts = vec![0u32; 64];
        let trials = 6400;
        for _ in 0..trials {
            let s = walker.sample(PeerIdx(0), None, &mut rng).unwrap();
            counts[s.as_usize()] += 1;
        }
        // Expect 100 per peer; demand every peer sampled and no peer > 4x.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 20, "peer {i} sampled {c} times (starved)");
            assert!(c < 400, "peer {i} sampled {c} times (hub bias)");
        }
    }

    #[test]
    fn mh_correction_reduces_hub_bias() {
        // Build a star-ish topology: peer 0 is a hub with many in-links.
        let mut net = test_net(32, 0, 3);
        let hub = PeerIdx(0);
        for i in 1..32u32 {
            let _ = net.try_link(PeerIdx(i), hub);
        }
        let trials = 4000;
        let count_hub = |mh: bool| {
            let mut walker = Walker::new(
                &net,
                WalkConfig {
                    burn_in: 16,
                    metropolis_hastings: mh,
                    ..WalkConfig::default()
                },
            );
            let mut rng = SeedTree::new(4).rng();
            (0..trials)
                .filter(|_| walker.sample(PeerIdx(7), None, &mut rng).unwrap() == hub)
                .count()
        };
        let with_mh = count_hub(true);
        let without_mh = count_hub(false);
        assert!(
            with_mh * 2 < without_mh,
            "MH should at least halve hub visits: with={with_mh}, without={without_mh}"
        );
    }

    #[test]
    fn restricted_walk_never_leaves_arc() {
        let net = test_net(64, 4, 5);
        // Arc covering roughly a quarter of the ring.
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 4));
        let start = net.idx_of(Id::new(0)).unwrap();
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(6).rng();
        for _ in 0..500 {
            let s = walker.sample(start, Some(&arc), &mut rng).unwrap();
            assert!(arc.contains(net.peer(s).id), "escaped the arc");
        }
    }

    #[test]
    fn restricted_walk_covers_arc_members() {
        let net = test_net(64, 4, 7);
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 2));
        let start = net.idx_of(Id::new(0)).unwrap();
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 48,
                metropolis_hastings: true,
                ..WalkConfig::default()
            },
        );
        let mut rng = SeedTree::new(8).rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(walker.sample(start, Some(&arc), &mut rng).unwrap());
        }
        // 32 members in the arc; a healthy walk reaches nearly all.
        assert!(seen.len() >= 28, "only {} members reached", seen.len());
    }

    #[test]
    fn single_member_arc_returns_start() {
        let net = test_net(16, 2, 9);
        let start = net.idx_of(Id::new(0)).unwrap();
        let tiny = Arc::between(Id::new(0), Id::new(1)); // only peer 0
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(10).rng();
        assert_eq!(walker.sample(start, Some(&tiny), &mut rng).unwrap(), start);
    }

    #[test]
    fn start_outside_arc_errors() {
        let net = test_net(16, 2, 11);
        let start = net.idx_of(Id::new(0)).unwrap();
        let far = Arc::between(Id::new(u64::MAX / 2), Id::new(u64::MAX / 2 + 1000));
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(12).rng();
        assert!(matches!(
            walker.sample(start, Some(&far), &mut rng),
            Err(Error::SamplingFailed { .. })
        ));
    }

    #[test]
    fn dead_start_errors() {
        let mut net = test_net(16, 2, 13);
        let start = net.idx_of(Id::new(0)).unwrap();
        net.kill(start).unwrap();
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(14).rng();
        assert!(matches!(
            walker.sample(start, None, &mut rng),
            Err(Error::PeerDead(_))
        ));
    }

    #[test]
    fn walks_avoid_dead_peers() {
        let mut net = test_net(32, 4, 15);
        // Kill a third of the network.
        let victims: Vec<PeerIdx> = (0..32).step_by(3).map(PeerIdx).collect();
        for v in &victims {
            if v.as_usize() != 1 {
                let _ = net.kill(*v);
            }
        }
        let start = PeerIdx(1);
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(16).rng();
        for _ in 0..300 {
            let s = walker.sample(start, None, &mut rng).unwrap();
            assert!(net.is_alive(s));
        }
    }

    #[test]
    fn steps_are_accounted() {
        let net = test_net(16, 2, 17);
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 10,
                metropolis_hastings: true,
                ..WalkConfig::default()
            },
        );
        let mut rng = SeedTree::new(18).rng();
        walker.sample_many(PeerIdx(0), None, 5, &mut rng).unwrap();
        assert_eq!(walker.take_steps(), 50, "5 walks x 10 steps");
        assert_eq!(walker.take_steps(), 0, "drained");
    }

    #[test]
    fn uncached_baseline_runs_the_same_chain() {
        // The bench-baseline path (collect-and-retain) runs the same
        // Metropolis–Hastings chain as the cached fast path: same step
        // accounting, and the same uniformity over the restricted
        // population, even though the two enumerate neighbours in
        // different orders.
        let mut net = test_net(64, 4, 21);
        for v in [3u32, 9, 27] {
            net.kill(PeerIdx(v)).unwrap();
        }
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 2));
        for cfg in [WalkConfig::default(), WalkConfig::default().without_cache()] {
            let mut walker = Walker::new(&net, cfg);
            let mut rng = SeedTree::new(22).rng();
            let mut counts = std::collections::HashMap::new();
            let trials = 3000;
            for _ in 0..trials {
                let s = walker.sample(PeerIdx(0), Some(&arc), &mut rng).unwrap();
                assert!(net.is_alive(s));
                assert!(arc.contains(net.peer(s).id));
                *counts.entry(s).or_insert(0u32) += 1;
            }
            assert_eq!(walker.take_steps(), trials * cfg.burn_in as u64);
            // ~29 live members in the half arc → ~100 samples each.
            assert!(counts.len() >= 26, "cached={}: starved", cfg.cached);
            assert!(
                counts.values().all(|&c| c < 400),
                "cached={}: hub bias",
                cfg.cached
            );
        }
    }

    #[test]
    fn cache_sees_membership_and_link_changes() {
        // Mutations between walks must invalidate the cache: after each
        // mutation kind, the cached degree/pick view must agree with a
        // fresh uncached collection for every live peer (walks in between
        // warm the cache so staleness would be visible).
        let mut net = test_net(32, 3, 23);
        let check = |net: &Network, seed: u64| {
            let mut walker = Walker::new(net, WalkConfig::default());
            let mut rng = SeedTree::new(seed).rng();
            for _ in 0..10 {
                let s = walker.sample(PeerIdx(1), None, &mut rng).unwrap();
                assert!(net.is_alive(s));
            }
            let mut plain = Vec::new();
            for p in net.all_peers().filter(|&p| net.is_alive(p)) {
                let deg = Walker::collect_restricted(net, p, None, &mut plain);
                assert_eq!(net.walk_degree(p, None), deg, "peer {p:?}");
                let mut picks: Vec<PeerIdx> = (0..deg).map(|k| net.walk_pick(p, None, k)).collect();
                picks.sort_unstable();
                plain.sort_unstable();
                assert_eq!(picks, plain, "peer {p:?}");
            }
        };
        check(&net, 31); // populate the cache
        net.kill(PeerIdx(5)).unwrap();
        check(&net, 32);
        net.try_link(PeerIdx(1), PeerIdx(9)).unwrap();
        check(&net, 33);
        net.unlink_long_out(PeerIdx(1));
        check(&net, 34);
        net.depart(PeerIdx(7)).unwrap();
        check(&net, 35);
        net.add_peer(Id::new(12345), DegreeCaps::symmetric(64))
            .unwrap();
        check(&net, 36);
        net.set_fault_model(FaultModel::UnstabilizedRing);
        check(&net, 37);
    }

    #[test]
    fn chained_steps_are_accounted() {
        let net = test_net(16, 2, 17);
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 10,
                metropolis_hastings: true,
                ..WalkConfig::default()
            }
            .with_chain_thin(3),
        );
        let mut rng = SeedTree::new(18).rng();
        let samples = walker.sample_many(PeerIdx(0), None, 5, &mut rng).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(walker.take_steps(), 10 + 4 * 3, "burn-in + 4 thins");
        assert_eq!(walker.take_steps(), 0, "drained");
        // Zero requested samples still validates the start and costs nothing.
        assert!(walker
            .sample_many(PeerIdx(0), None, 0, &mut rng)
            .unwrap()
            .is_empty());
        assert_eq!(walker.take_steps(), 0);
    }

    #[test]
    fn chained_walk_stays_in_arc_and_covers_it() {
        let net = test_net(64, 4, 7);
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 2));
        let start = net.idx_of(Id::new(0)).unwrap();
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 48,
                metropolis_hastings: true,
                ..WalkConfig::default()
            }
            .with_chain_thin(8),
        );
        let mut rng = SeedTree::new(8).rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            for s in walker.sample_many(start, Some(&arc), 50, &mut rng).unwrap() {
                assert!(arc.contains(net.peer(s).id), "escaped the arc");
                seen.insert(s);
            }
        }
        // 32 members in the arc; thinned chains still reach nearly all.
        assert!(seen.len() >= 28, "only {} members reached", seen.len());
    }

    #[test]
    fn chained_errors_match_fresh_walk_errors() {
        let mut net = test_net(16, 2, 13);
        let start = net.idx_of(Id::new(0)).unwrap();
        let cfg = WalkConfig::default().with_chain_thin(4);
        let far = Arc::between(Id::new(u64::MAX / 2), Id::new(u64::MAX / 2 + 1000));
        let mut walker = Walker::new(&net, cfg);
        let mut rng = SeedTree::new(14).rng();
        assert!(matches!(
            walker.sample_many(start, Some(&far), 3, &mut rng),
            Err(Error::SamplingFailed { .. })
        ));
        net.kill(start).unwrap();
        let mut walker = Walker::new(&net, cfg);
        assert!(matches!(
            walker.sample_many(start, None, 3, &mut rng),
            Err(Error::PeerDead(_))
        ));
    }

    #[test]
    fn sample_peers_wrapper_credits_metrics() {
        let mut net = test_net(16, 2, 19);
        let mut rng = SeedTree::new(20).rng();
        sample_peers(
            &mut net,
            WalkConfig::default(),
            PeerIdx(0),
            None,
            3,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            net.metrics.get(MsgKind::WalkStep),
            3 * WalkConfig::default().burn_in as u64
        );
    }
}
