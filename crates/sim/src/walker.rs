//! Random-walk peer sampling (the Mercury technique, plus Oscar's
//! sub-population restriction).
//!
//! Oscar's median estimation needs (near-)uniform samples from arbitrary
//! sub-populations of peers without any global knowledge. The mechanism is
//! a random walk over the overlay graph:
//!
//! * walks traverse the **undirected** link graph (ring + long-range links
//!   in either direction) — a link is a connection both endpoints can use;
//! * a **Metropolis–Hastings** correction (move `u → v` accepted with
//!   probability `min(1, deg(u)/deg(v))`) makes the stationary distribution
//!   uniform over peers despite degree heterogeneity — without it, spiky
//!   degree distributions would bias every estimate toward hubs;
//! * for sub-population sampling, the walk simply refuses to leave the
//!   identifier arc ("random walkers which do not visit nodes with
//!   identifiers that do not belong to the current population", §2 of the
//!   paper). The induced subgraph always contains the arc's ring path, so
//!   it is connected and the restricted walk converges on the arc.
//!
//! Every step is a simulated message ([`MsgKind::WalkStep`]); rejected MH
//! moves and forced stays still consume a step, because the probe that
//! discovered the rejection travelled the wire.

use crate::metrics::MsgKind;
use crate::network::Network;
use crate::peer::PeerIdx;
use oscar_types::{Arc, Error, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// Random-walk parameters.
#[derive(Copy, Clone, Debug)]
pub struct WalkConfig {
    /// Steps walked before emitting a sample. The graph is an expander
    /// once long links exist, so a few dozen steps suffice; this is the
    /// `O(log N)`-ish walk length Mercury uses.
    pub burn_in: u32,
    /// Apply the Metropolis–Hastings degree correction (on by default;
    /// turning it off is ablation material — hubs get oversampled).
    pub metropolis_hastings: bool,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            burn_in: 24,
            metropolis_hastings: true,
        }
    }
}

/// A reusable sampler bound to a network snapshot.
///
/// Holds workhorse buffers so repeated sampling does not allocate.
pub struct Walker<'a> {
    net: &'a Network,
    cfg: WalkConfig,
    buf_cur: Vec<PeerIdx>,
    buf_deg: Vec<PeerIdx>,
    /// Walk steps consumed since the last [`Walker::take_steps`] call.
    steps: u64,
}

impl<'a> Walker<'a> {
    /// New sampler over `net`.
    pub fn new(net: &'a Network, cfg: WalkConfig) -> Self {
        Walker {
            net,
            cfg,
            buf_cur: Vec::with_capacity(64),
            buf_deg: Vec::with_capacity(64),
            steps: 0,
        }
    }

    /// Steps consumed since last drained; the caller credits them to
    /// [`MsgKind::WalkStep`] (the walker holds `&Network`, so it cannot
    /// write metrics itself).
    pub fn take_steps(&mut self) -> u64 {
        std::mem::take(&mut self.steps)
    }

    /// Collects the live walk-neighbours of `p` that satisfy the arc
    /// restriction into `buf`, returning the restricted degree.
    fn restricted_neighbors(
        net: &Network,
        p: PeerIdx,
        arc: Option<&Arc>,
        buf: &mut Vec<PeerIdx>,
    ) -> usize {
        net.walk_neighbors_into(p, buf);
        buf.retain(|&c| {
            net.is_alive(c)
                && match arc {
                    Some(a) => a.contains(net.peer(c).id),
                    None => true,
                }
        });
        buf.len()
    }

    /// One (near-)uniform sample from the peers of `arc` (or the whole
    /// live network when `arc` is `None`), starting the walk at `start`.
    ///
    /// `start` must be live and inside the arc — callers reach an entry
    /// point by ring routing first (counted separately).
    pub fn sample(
        &mut self,
        start: PeerIdx,
        arc: Option<&Arc>,
        rng: &mut SmallRng,
    ) -> Result<PeerIdx> {
        if !self.net.is_alive(start) {
            return Err(Error::PeerDead(start.as_usize()));
        }
        if let Some(a) = arc {
            if !a.contains(self.net.peer(start).id) {
                return Err(Error::SamplingFailed {
                    reason: "walk start outside the restricted arc",
                });
            }
        }
        let mut current = start;
        let mut cur_deg = Self::restricted_neighbors(self.net, current, arc, &mut self.buf_cur);
        for _ in 0..self.cfg.burn_in {
            self.steps += 1;
            if cur_deg == 0 {
                // Isolated within the restriction (single-member arc):
                // the walk stays put; the sample is `current` itself.
                continue;
            }
            let cand = self.buf_cur[rng.gen_range(0..cur_deg)];
            let cand_deg = Self::restricted_neighbors(self.net, cand, arc, &mut self.buf_deg);
            let accept = if self.cfg.metropolis_hastings {
                // min(1, deg(u)/deg(v)) — uniform stationary distribution.
                cand_deg == 0 || rng.gen::<f64>() < cur_deg as f64 / cand_deg as f64
            } else {
                true
            };
            if accept && cand_deg > 0 {
                current = cand;
                cur_deg = cand_deg;
                std::mem::swap(&mut self.buf_cur, &mut self.buf_deg);
            }
        }
        Ok(current)
    }

    /// `count` independent samples (each a fresh walk from `start`).
    pub fn sample_many(
        &mut self,
        start: PeerIdx,
        arc: Option<&Arc>,
        count: usize,
        rng: &mut SmallRng,
    ) -> Result<Vec<PeerIdx>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.sample(start, arc, rng)?);
        }
        Ok(out)
    }
}

/// Convenience wrapper that samples and credits the walk steps to the
/// network's metrics in one call (for callers holding `&mut Network`).
pub fn sample_peers(
    net: &mut Network,
    cfg: WalkConfig,
    start: PeerIdx,
    arc: Option<&Arc>,
    count: usize,
    rng: &mut SmallRng,
) -> Result<Vec<PeerIdx>> {
    let (result, steps) = {
        let mut walker = Walker::new(net, cfg);
        let r = walker.sample_many(start, arc, count, rng);
        let s = walker.take_steps();
        (r, s)
    };
    net.metrics.add(MsgKind::WalkStep, steps);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FaultModel;
    use oscar_degree::DegreeCaps;
    use oscar_types::{Id, SeedTree};

    /// Ring of n evenly spaced peers with `extra` random long links each.
    fn test_net(n: u64, extra: usize, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let step = u64::MAX / n;
        let idxs: Vec<PeerIdx> = (0..n)
            .map(|i| {
                net.add_peer(Id::new(i * step), DegreeCaps::symmetric(64))
                    .unwrap()
            })
            .collect();
        let mut rng = SeedTree::new(seed).rng();
        for &i in &idxs {
            for _ in 0..extra {
                let j = idxs[rng.gen_range(0..idxs.len())];
                let _ = net.try_link(i, j);
            }
        }
        net
    }

    #[test]
    fn unrestricted_sampling_is_roughly_uniform() {
        let net = test_net(64, 4, 1);
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 48,
                metropolis_hastings: true,
            },
        );
        let mut rng = SeedTree::new(2).rng();
        let mut counts = vec![0u32; 64];
        let trials = 6400;
        for _ in 0..trials {
            let s = walker.sample(PeerIdx(0), None, &mut rng).unwrap();
            counts[s.as_usize()] += 1;
        }
        // Expect 100 per peer; demand every peer sampled and no peer > 4x.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 20, "peer {i} sampled {c} times (starved)");
            assert!(c < 400, "peer {i} sampled {c} times (hub bias)");
        }
    }

    #[test]
    fn mh_correction_reduces_hub_bias() {
        // Build a star-ish topology: peer 0 is a hub with many in-links.
        let mut net = test_net(32, 0, 3);
        let hub = PeerIdx(0);
        for i in 1..32u32 {
            let _ = net.try_link(PeerIdx(i), hub);
        }
        let trials = 4000;
        let count_hub = |mh: bool| {
            let mut walker = Walker::new(
                &net,
                WalkConfig {
                    burn_in: 16,
                    metropolis_hastings: mh,
                },
            );
            let mut rng = SeedTree::new(4).rng();
            (0..trials)
                .filter(|_| walker.sample(PeerIdx(7), None, &mut rng).unwrap() == hub)
                .count()
        };
        let with_mh = count_hub(true);
        let without_mh = count_hub(false);
        assert!(
            with_mh * 2 < without_mh,
            "MH should at least halve hub visits: with={with_mh}, without={without_mh}"
        );
    }

    #[test]
    fn restricted_walk_never_leaves_arc() {
        let net = test_net(64, 4, 5);
        // Arc covering roughly a quarter of the ring.
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 4));
        let start = net.idx_of(Id::new(0)).unwrap();
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(6).rng();
        for _ in 0..500 {
            let s = walker.sample(start, Some(&arc), &mut rng).unwrap();
            assert!(arc.contains(net.peer(s).id), "escaped the arc");
        }
    }

    #[test]
    fn restricted_walk_covers_arc_members() {
        let net = test_net(64, 4, 7);
        let arc = Arc::between(Id::new(0), Id::new(u64::MAX / 2));
        let start = net.idx_of(Id::new(0)).unwrap();
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 48,
                metropolis_hastings: true,
            },
        );
        let mut rng = SeedTree::new(8).rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(walker.sample(start, Some(&arc), &mut rng).unwrap());
        }
        // 32 members in the arc; a healthy walk reaches nearly all.
        assert!(seen.len() >= 28, "only {} members reached", seen.len());
    }

    #[test]
    fn single_member_arc_returns_start() {
        let net = test_net(16, 2, 9);
        let start = net.idx_of(Id::new(0)).unwrap();
        let tiny = Arc::between(Id::new(0), Id::new(1)); // only peer 0
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(10).rng();
        assert_eq!(walker.sample(start, Some(&tiny), &mut rng).unwrap(), start);
    }

    #[test]
    fn start_outside_arc_errors() {
        let net = test_net(16, 2, 11);
        let start = net.idx_of(Id::new(0)).unwrap();
        let far = Arc::between(Id::new(u64::MAX / 2), Id::new(u64::MAX / 2 + 1000));
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(12).rng();
        assert!(matches!(
            walker.sample(start, Some(&far), &mut rng),
            Err(Error::SamplingFailed { .. })
        ));
    }

    #[test]
    fn dead_start_errors() {
        let mut net = test_net(16, 2, 13);
        let start = net.idx_of(Id::new(0)).unwrap();
        net.kill(start).unwrap();
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(14).rng();
        assert!(matches!(
            walker.sample(start, None, &mut rng),
            Err(Error::PeerDead(_))
        ));
    }

    #[test]
    fn walks_avoid_dead_peers() {
        let mut net = test_net(32, 4, 15);
        // Kill a third of the network.
        let victims: Vec<PeerIdx> = (0..32).step_by(3).map(PeerIdx).collect();
        for v in &victims {
            if v.as_usize() != 1 {
                let _ = net.kill(*v);
            }
        }
        let start = PeerIdx(1);
        let mut walker = Walker::new(&net, WalkConfig::default());
        let mut rng = SeedTree::new(16).rng();
        for _ in 0..300 {
            let s = walker.sample(start, None, &mut rng).unwrap();
            assert!(net.is_alive(s));
        }
    }

    #[test]
    fn steps_are_accounted() {
        let net = test_net(16, 2, 17);
        let mut walker = Walker::new(
            &net,
            WalkConfig {
                burn_in: 10,
                metropolis_hastings: true,
            },
        );
        let mut rng = SeedTree::new(18).rng();
        walker.sample_many(PeerIdx(0), None, 5, &mut rng).unwrap();
        assert_eq!(walker.take_steps(), 50, "5 walks x 10 steps");
        assert_eq!(walker.take_steps(), 0, "drained");
    }

    #[test]
    fn sample_peers_wrapper_credits_metrics() {
        let mut net = test_net(16, 2, 19);
        let mut rng = SeedTree::new(20).rng();
        sample_peers(
            &mut net,
            WalkConfig::default(),
            PeerIdx(0),
            None,
            3,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            net.metrics.get(MsgKind::WalkStep),
            3 * WalkConfig::default().burn_in as u64
        );
    }
}
