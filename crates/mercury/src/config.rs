//! Mercury construction parameters.

use oscar_sim::WalkConfig;
use oscar_types::{Error, Result};

/// Tuning knobs of the Mercury construction.
#[derive(Copy, Clone, Debug)]
pub struct MercuryConfig {
    /// Uniform samples used to build the node-density CDF estimate.
    /// Mercury's papers use `k ≈ log N`-ish sample counts; 24 is generous
    /// at the simulated scales (log₂ 10⁴ ≈ 13).
    pub cdf_sample_size: usize,
    /// Additional attempts per link slot when targets refuse.
    pub link_retries: usize,
    /// Random-walk parameters for the uniform sampling.
    pub walk: WalkConfig,
    /// Probe two harmonic draws and link to the less-loaded owner
    /// (power-of-two). **Off** by default: Mercury as published does not
    /// balance in-degree; enabling it isolates how much of Oscar's
    /// utilisation advantage comes from power-of-two alone (ablation A1).
    pub use_power_of_two: bool,
}

impl Default for MercuryConfig {
    fn default() -> Self {
        MercuryConfig {
            cdf_sample_size: 24,
            link_retries: 3,
            walk: WalkConfig::default(),
            use_power_of_two: false,
        }
    }
}

impl MercuryConfig {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<()> {
        if self.cdf_sample_size < 2 {
            return Err(Error::InvalidConfig(
                "cdf_sample_size must be >= 2 (a CDF needs at least two points)".into(),
            ));
        }
        if self.walk.burn_in == 0 {
            return Err(Error::InvalidConfig("walk.burn_in must be >= 1".into()));
        }
        Ok(())
    }

    /// Convenience: power-of-two probing enabled.
    pub fn with_power_of_two(mut self) -> Self {
        self.use_power_of_two = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_faithful() {
        let c = MercuryConfig::default();
        c.validate().unwrap();
        assert!(
            !c.use_power_of_two,
            "published Mercury has no po2 balancing"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = MercuryConfig {
            cdf_sample_size: 1,
            ..MercuryConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = MercuryConfig::default();
        c.walk.burn_in = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn po2_toggle() {
        assert!(
            MercuryConfig::default()
                .with_power_of_two()
                .use_power_of_two
        );
    }
}
