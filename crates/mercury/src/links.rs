//! Mercury link placement: sampled CDF + harmonic rank distances.

use crate::config::MercuryConfig;
use oscar_keydist::EmpiricalCdf;
use oscar_sim::{route_to_owner, sample_peers, LinkError, MsgKind, Network, PeerIdx, RoutePolicy};
use oscar_types::{Id, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// Builds Mercury's density estimate for peer `p`: an empirical CDF over
/// `cdf_sample_size` (near-)uniform node-id samples, plus `p`'s own id.
pub fn estimate_cdf(
    net: &mut Network,
    p: PeerIdx,
    cfg: &MercuryConfig,
    rng: &mut SmallRng,
) -> Result<EmpiricalCdf> {
    let samples = sample_peers(net, cfg.walk, p, None, cfg.cdf_sample_size, rng)?;
    let mut ids: Vec<Id> = samples.iter().map(|&s| net.peer(s).id).collect();
    ids.push(net.peer(p).id);
    Ok(EmpiricalCdf::new(ids))
}

/// Draws a harmonic rank distance `r ∈ [1, n-1]`: `P(r) ∝ 1/r`.
///
/// Inverse transform on the continuous harmonic density, the standard
/// small-world long-link distance law Mercury adopts.
pub fn harmonic_rank<R: Rng + ?Sized>(n_live: usize, rng: &mut R) -> f64 {
    let max = (n_live.saturating_sub(1)).max(1) as f64;
    let u: f64 = rng.gen();
    max.powf(u).clamp(1.0, max)
}

/// One harmonic link-target draw: a *key* estimated to sit `r` node ranks
/// clockwise of `p`, per the sampled CDF.
pub fn draw_target_key(cdf: &EmpiricalCdf, own_id: Id, n_live: usize, rng: &mut SmallRng) -> Id {
    let r = harmonic_rank(n_live, rng);
    // The CDF was built from `len()` samples representing `n_live` peers:
    // convert the rank distance into sample-rank units.
    let sample_ranks = r * cdf.len() as f64 / n_live.max(1) as f64;
    cdf.advance_by_ranks(own_id, sample_ranks)
}

/// Outcome of one Mercury link-building pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MercuryLinkStats {
    /// Links successfully established.
    pub established: u32,
    /// Slots left unfilled after exhausting retries.
    pub unfilled: u32,
    /// Routing hops spent locating link targets.
    pub routing_hops: u64,
}

/// Fills `p`'s out-link budget with harmonic-distance links.
///
/// Each slot draws a target key, routes to its owner (hops are counted as
/// construction traffic — Mercury pays real messages for link discovery),
/// and requests the link; refusals retry with a fresh draw.
pub fn acquire_links(
    net: &mut Network,
    p: PeerIdx,
    cdf: &EmpiricalCdf,
    cfg: &MercuryConfig,
    rng: &mut SmallRng,
) -> Result<MercuryLinkStats> {
    let mut stats = MercuryLinkStats::default();
    let own_id = net.peer(p).id;
    let n_live = net.live_count();
    if n_live <= 1 {
        return Ok(stats);
    }
    let budget = {
        let peer = net.peer(p);
        peer.caps.rho_out.saturating_sub(peer.out_degree())
    };
    let policy = RoutePolicy::default();
    'slots: for _ in 0..budget {
        for _attempt in 0..=cfg.link_retries {
            let candidates = if cfg.use_power_of_two { 2 } else { 1 };
            let mut best: Option<(u32, PeerIdx)> = None;
            for _ in 0..candidates {
                let key = draw_target_key(cdf, own_id, n_live, rng);
                let outcome = route_to_owner(net, p, key, &policy);
                stats.routing_hops += outcome.cost() as u64;
                net.metrics
                    .add(MsgKind::ConstructionHop, outcome.cost() as u64);
                let Some(owner) = outcome.dest else {
                    continue;
                };
                if owner == p || net.peer(p).long_out.contains(&owner) {
                    continue;
                }
                net.metrics.inc(MsgKind::Probe);
                let load = net.peer(owner).in_degree();
                if best.is_none_or(|(b, _)| load < b) {
                    best = Some((load, owner));
                }
            }
            let Some((_, target)) = best else {
                continue;
            };
            match net.try_link(p, target) {
                Ok(()) => {
                    stats.established += 1;
                    continue 'slots;
                }
                Err(LinkError::TargetFull) => continue,
                Err(LinkError::Duplicate) | Err(LinkError::SelfLink) | Err(LinkError::Dead) => {
                    continue
                }
                Err(LinkError::SourceFull) => break 'slots,
            }
        }
        stats.unfilled += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_sim::FaultModel;
    use oscar_types::SeedTree;

    fn test_net(n: u64, caps: DegreeCaps, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let step = u64::MAX / n;
        let idxs: Vec<PeerIdx> = (0..n)
            .map(|i| net.add_peer(Id::new(i * step + 5), caps).unwrap())
            .collect();
        let mut rng = SeedTree::new(seed).rng();
        for &i in &idxs {
            for _ in 0..4 {
                let j = idxs[rng.gen_range(0..idxs.len())];
                let _ = net.try_link(i, j);
            }
        }
        net
    }

    #[test]
    fn harmonic_rank_is_heavy_on_short_distances() {
        let mut rng = SeedTree::new(1).rng();
        let n = 10_000;
        let short = (0..20_000)
            .filter(|_| harmonic_rank(n, &mut rng) < 100.0)
            .count();
        // P(r < 100) = ln(100)/ln(9999) ≈ 0.50
        let frac = short as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.05, "short-distance mass {frac}");
    }

    #[test]
    fn harmonic_rank_bounds() {
        let mut rng = SeedTree::new(2).rng();
        for _ in 0..1000 {
            let r = harmonic_rank(500, &mut rng);
            assert!((1.0..=499.0).contains(&r));
        }
        // degenerate sizes
        assert_eq!(harmonic_rank(1, &mut rng), 1.0);
        assert_eq!(harmonic_rank(0, &mut rng), 1.0);
    }

    #[test]
    fn cdf_estimate_covers_the_ring() {
        let mut net = test_net(256, DegreeCaps::symmetric(64), 3);
        let p = net.live_peer_by_rank(0);
        let mut rng = SeedTree::new(4).rng();
        let cdf = estimate_cdf(&mut net, p, &MercuryConfig::default(), &mut rng).unwrap();
        assert_eq!(cdf.len(), 25, "24 samples + own id");
        // Quantiles should span a decent portion of the (uniform) ring.
        let spread = cdf.quantile(0.95).to_unit() - cdf.quantile(0.05).to_unit();
        assert!(spread > 0.5, "sampled CDF too narrow: {spread}");
    }

    #[test]
    fn acquire_links_fills_budget_with_capacity() {
        let mut net = test_net(256, DegreeCaps::symmetric(64), 5);
        let p = net.live_peer_by_rank(0);
        let cfg = MercuryConfig::default();
        let mut rng = SeedTree::new(6).rng();
        let cdf = estimate_cdf(&mut net, p, &cfg, &mut rng).unwrap();
        let before = net.peer(p).out_degree();
        let stats = acquire_links(&mut net, p, &cdf, &cfg, &mut rng).unwrap();
        let budget = 64 - before;
        // Nearly the whole budget fills; a handful of slots may exhaust
        // retries on duplicate draws (64 links on 256 peers means the
        // harmonic short-distance mass keeps re-drawing the same owners).
        assert!(
            stats.established >= budget - 8,
            "only {}/{budget} established",
            stats.established
        );
        assert_eq!(stats.established + stats.unfilled, budget);
        assert!(stats.routing_hops > 0, "link discovery routes messages");
        assert_eq!(
            net.metrics.get(MsgKind::ConstructionHop),
            stats.routing_hops
        );
    }

    #[test]
    fn link_distances_skew_short() {
        // Mercury's harmonic law: many short links, few long ones. A
        // modest out-budget keeps duplicate re-draws (which flatten the
        // distance distribution) rare, and pooling several peers averages
        // out CDF sampling luck (a bad 24-point sample can leave large
        // holes — that sensitivity is Mercury's documented weakness).
        let mut net = test_net(
            512,
            DegreeCaps {
                rho_in: 64,
                rho_out: 12,
            },
            7,
        );
        let cfg = MercuryConfig::default();
        let n = net.live_count();
        let mut rank_dists: Vec<usize> = Vec::new();
        for (i, rank) in [0usize, 100, 200, 300, 400].into_iter().enumerate() {
            let p = net.live_peer_by_rank(rank);
            let own = net.peer(p).id;
            let mut rng = SeedTree::new(21 + i as u64).rng();
            let cdf = estimate_cdf(&mut net, p, &cfg, &mut rng).unwrap();
            net.unlink_long_out(p);
            acquire_links(&mut net, p, &cdf, &cfg, &mut rng).unwrap();
            let r_own = net.ring_live().rank_of(own).unwrap();
            rank_dists.extend(net.peer(p).long_out.iter().map(|&t| {
                let tid = net.peer(t).id;
                let r_t = net.ring_live().rank_of(tid).unwrap();
                (r_t + n - r_own) % n
            }));
        }
        rank_dists.sort_unstable();
        let median = rank_dists[rank_dists.len() / 2];
        // True harmonic median over [1,511] is √511 ≈ 23; leave generous
        // room for CDF estimation noise while excluding the uniform
        // alternative (median ≈ n/2 = 256).
        assert!(
            median < n / 3,
            "harmonic links should be mostly short: median rank distance {median} of {n}"
        );
    }

    #[test]
    fn budgets_respected_under_pressure() {
        let mut net = test_net(
            64,
            DegreeCaps {
                rho_in: 4,
                rho_out: 16,
            },
            9,
        );
        let cfg = MercuryConfig::default();
        let peers: Vec<PeerIdx> = net.live_peers().collect();
        for (i, &p) in peers.iter().enumerate() {
            let mut rng = SeedTree::new(100 + i as u64).rng();
            let cdf = estimate_cdf(&mut net, p, &cfg, &mut rng).unwrap();
            let _ = acquire_links(&mut net, p, &cdf, &cfg, &mut rng).unwrap();
        }
        for &p in &peers {
            assert!(net.peer(p).in_degree() <= net.peer(p).caps.rho_in);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut net = test_net(128, DegreeCaps::symmetric(16), 11);
            let p = net.live_peer_by_rank(3);
            let cfg = MercuryConfig::default();
            let mut rng = SeedTree::new(12).rng();
            let cdf = estimate_cdf(&mut net, p, &cfg, &mut rng).unwrap();
            acquire_links(&mut net, p, &cdf, &cfg, &mut rng).unwrap();
            net.peer(p).long_out.clone()
        };
        assert_eq!(run(), run());
    }
}
