//! Mercury's link-building strategy, packaged for the growth driver.

use crate::config::MercuryConfig;
use crate::links::{acquire_links, estimate_cdf};
use oscar_sim::{LinkError, Network, OverlayBuilder, PeerIdx};
use oscar_types::Result;
use rand::rngs::SmallRng;

/// Same bootstrap threshold as Oscar's builder, for a fair comparison.
const DIRECT_WIRING_THRESHOLD: usize = 8;

/// Mercury's [`OverlayBuilder`]: uniform sampling → empirical CDF →
/// harmonic rank-distance links.
#[derive(Clone, Debug)]
pub struct MercuryBuilder {
    config: MercuryConfig,
}

impl MercuryBuilder {
    /// Builder with the given configuration.
    ///
    /// # Panics
    /// On invalid configuration.
    pub fn new(config: MercuryConfig) -> Self {
        config.validate().expect("invalid MercuryConfig");
        MercuryBuilder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MercuryConfig {
        &self.config
    }

    fn wire_directly(&self, net: &mut Network, p: PeerIdx) {
        let targets: Vec<PeerIdx> = net.live_peers().filter(|&t| t != p).collect();
        for t in targets {
            if !net.peer(p).can_open_out() {
                break;
            }
            match net.try_link(p, t) {
                Ok(()) | Err(LinkError::TargetFull) | Err(LinkError::Duplicate) => {}
                Err(LinkError::SelfLink) | Err(LinkError::Dead) => {}
                Err(LinkError::SourceFull) => break,
            }
        }
    }
}

impl OverlayBuilder for MercuryBuilder {
    fn name(&self) -> &str {
        "mercury"
    }

    fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
        if !net.is_alive(p) || net.live_count() <= 1 {
            return Ok(());
        }
        if net.live_count() <= DIRECT_WIRING_THRESHOLD {
            self.wire_directly(net, p);
            return Ok(());
        }
        let cdf = estimate_cdf(net, p, &self.config, rng)?;
        acquire_links(net, p, &cdf, &self.config, rng)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_overlay;
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::{GnutellaKeys, QueryWorkload, UniformKeys};
    use oscar_sim::FaultModel;

    #[test]
    fn builder_reports_name() {
        assert_eq!(
            MercuryBuilder::new(MercuryConfig::default()).name(),
            "mercury"
        );
    }

    #[test]
    #[should_panic(expected = "invalid MercuryConfig")]
    fn bad_config_panics() {
        let cfg = MercuryConfig {
            cdf_sample_size: 0,
            ..MercuryConfig::default()
        };
        let _ = MercuryBuilder::new(cfg);
    }

    #[test]
    fn mercury_routes_fine_on_uniform_keys() {
        let mut ov = new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 1);
        ov.grow_to(500, &UniformKeys, &ConstantDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 500);
        assert_eq!(stats.success_rate, 1.0);
        assert!(
            stats.mean_cost < 10.0,
            "uniform keys are Mercury's home turf: {}",
            stats.mean_cost
        );
    }

    #[test]
    fn mercury_still_correct_on_skewed_keys() {
        // Correctness is never in question (the ring guarantees delivery);
        // the cost difference vs Oscar is measured in integration tests.
        let mut ov = new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 2);
        ov.grow_to(400, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 400);
        assert_eq!(stats.success_rate, 1.0);
    }

    #[test]
    fn budgets_hold_after_growth() {
        let mut ov = new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 3);
        ov.grow_to(300, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        for p in ov.network().all_peers() {
            let peer = ov.network().peer(p);
            assert!(peer.in_degree() <= peer.caps.rho_in);
            assert!(peer.out_degree() <= peer.caps.rho_out);
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut ov = new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 4);
            ov.grow_to(200, &GnutellaKeys::default(), &ConstantDegrees::paper())
                .unwrap();
            ov.run_queries(&QueryWorkload::UniformPeers, 200).mean_cost
        };
        assert_eq!(run(), run());
    }
}
