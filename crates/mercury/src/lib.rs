//! # oscar-mercury — the Mercury baseline
//!
//! Mercury (Bharambe, Agrawal, Seshan — SIGCOMM'04) is the overlay the
//! paper compares against: a ring of peers with long-range links whose
//! *distances* follow a harmonic distribution over estimated node ranks.
//! Mercury learns the node-density function by sampling the network
//! **uniformly** and building an empirical CDF, then places each link by
//! drawing a harmonic rank distance and inverting the CDF into a target
//! key, which it routes to.
//!
//! The reproduction keeps Mercury's documented structure and its documented
//! weakness: a fixed-size uniform sample has uniform *resolution* over the
//! key space, so spiky densities (Gnutella filenames) are misestimated —
//! links miss their intended rank distances and in-degree piles up on the
//! peers owning the deserts. Oscar's median chain spends its samples
//! adaptively and does not have this failure mode; that asymmetry is the
//! point of the comparison (experiments E3/E7).
//!
//! Deliberate generosity: our Mercury gets the *exact* live network size
//! for its harmonic draw (the real one estimates it from histograms).
//! Giving the baseline oracle information it would have to estimate makes
//! the measured gap a lower bound on the real one.

pub mod builder;
pub mod config;
pub mod links;

pub use builder::MercuryBuilder;
pub use config::MercuryConfig;

use oscar_sim::{FaultModel, Overlay};

/// The Mercury overlay: the generic facade specialised to Mercury's builder.
pub type MercuryOverlay = Overlay<MercuryBuilder>;

/// Creates a new (empty) Mercury overlay.
///
/// ```
/// use oscar_mercury::{new_overlay, MercuryConfig};
/// use oscar_sim::FaultModel;
/// use oscar_keydist::{UniformKeys, QueryWorkload};
/// use oscar_degree::ConstantDegrees;
///
/// let mut overlay = new_overlay(MercuryConfig::default(), FaultModel::StabilizedRing, 42);
/// overlay.grow_to(300, &UniformKeys, &ConstantDegrees::paper()).unwrap();
/// let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 200);
/// assert_eq!(stats.success_rate, 1.0);
/// ```
pub fn new_overlay(config: MercuryConfig, fault_model: FaultModel, seed: u64) -> MercuryOverlay {
    Overlay::new(MercuryBuilder::new(config), fault_model, seed)
}
