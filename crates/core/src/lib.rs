//! # oscar-core — the Oscar overlay construction
//!
//! The paper's contribution: a small-world, range-queriable overlay that
//! tolerates arbitrary key distributions *and* heterogeneous per-peer link
//! budgets simultaneously. The construction, per node `u`:
//!
//! 1. **Partition estimation** ([`partitions`]): split the identifier
//!    space clockwise from `u` into `k ≈ log₂N` partitions `A₁ … A_k`, the
//!    border between `A_i` and `A_{i+1}` being the median of the remaining
//!    sub-population. Medians are estimated from small random-walk samples
//!    restricted to the sub-population's arc — Oscar never needs a global
//!    view, and the adaptive halving chain discovers `log₂N` by itself.
//! 2. **Link acquisition** ([`links`]): for each of the peer's `ρ_out_max`
//!    long-range slots, pick a partition uniformly at random, then a peer
//!    uniformly at random inside it. That realises Kleinberg's harmonic
//!    distribution over population *rank* distance, the density-aware
//!    generalisation that keeps greedy routing `O(log²N)` no matter how
//!    skewed the key space is. In-degree budgets are respected via refusal
//!    plus the **power-of-two-choices** probe (sample two candidates, link
//!    to the less loaded), which is what lets Oscar exploit ~85% of the
//!    heterogeneous in-degree "volume" (Figure 1(b)).
//! 3. **Routing** is plain greedy clockwise (in `oscar-sim::routing`) —
//!    Oscar changes where the links go, not how queries travel.
//!
//! [`OscarBuilder`] packages the construction as an
//! [`oscar_sim::OverlayBuilder`]; [`OscarOverlay`] is the ready-to-use
//! facade.

pub mod builder;
pub mod config;
pub mod links;
pub mod partitions;
pub mod range;
pub mod theory;

pub use builder::OscarBuilder;
pub use config::{MedianSource, OscarConfig};
pub use links::LinkStats;
pub use partitions::{estimate_partitions, Partitions};
pub use range::{range_scan, RangeScanOutcome};

use oscar_sim::{FaultModel, Overlay};

/// The Oscar overlay: the generic facade specialised to Oscar's builder.
pub type OscarOverlay = Overlay<OscarBuilder>;

/// Creates a new (empty) Oscar overlay.
///
/// ```
/// use oscar_core::{new_overlay, OscarConfig};
/// use oscar_sim::FaultModel;
/// use oscar_keydist::UniformKeys;
/// use oscar_degree::ConstantDegrees;
/// use oscar_keydist::QueryWorkload;
///
/// let mut overlay = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 42);
/// overlay.grow_to(300, &UniformKeys, &ConstantDegrees::paper()).unwrap();
/// let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 200);
/// assert_eq!(stats.success_rate, 1.0);
/// assert!(stats.mean_cost < 20.0);
/// ```
pub fn new_overlay(config: OscarConfig, fault_model: FaultModel, seed: u64) -> OscarOverlay {
    Overlay::new(OscarBuilder::new(config), fault_model, seed)
}
