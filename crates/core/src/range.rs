//! Range queries — the application feature order preservation buys.
//!
//! Because Oscar never hashes keys, the owners of a key range
//! `[lo, hi)` are a *contiguous* arc of the ring: a range query routes to
//! the owner of `lo` (greedy, `O(log²N)`) and then walks live successors
//! until it leaves the range. This module implements that scan and
//! accounts its cost the way the paper accounts search cost.

use oscar_sim::{route_to_owner, Network, PeerIdx, RouteOutcome, RoutePolicy};
use oscar_types::{Arc, Id};

/// Result of a range scan.
#[derive(Clone, Debug)]
pub struct RangeScanOutcome {
    /// Routing outcome of reaching the range entry (owner of `lo`).
    pub entry: RouteOutcome,
    /// The peers owning parts of `[lo, hi)`, in clockwise order. Contains
    /// at least the owner of `lo` when routing succeeded (the owner of a
    /// range's first key may itself sit just past `hi` on the ring — it
    /// still owns keys inside the range).
    pub owners: Vec<PeerIdx>,
    /// Successor hops taken during the scan phase.
    pub scan_hops: u32,
}

impl RangeScanOutcome {
    /// Total message cost: entry routing + scan hops.
    pub fn cost(&self) -> u32 {
        self.entry.cost() + self.scan_hops
    }
}

/// Scans the key range `[lo, hi)` starting from `src`.
///
/// Returns the contiguous owners of the range. An empty range (`lo == hi`)
/// scans nothing but still routes to the entry (cheap way to probe a
/// position). Under churn the entry routing may fail (unstabilised ring);
/// the scan itself walks only live ring successors.
pub fn range_scan(
    net: &Network,
    src: PeerIdx,
    lo: Id,
    hi: Id,
    policy: &RoutePolicy,
) -> RangeScanOutcome {
    let entry = route_to_owner(net, src, lo, policy);
    let mut outcome = RangeScanOutcome {
        owners: Vec::new(),
        scan_hops: 0,
        entry,
    };
    let Some(first) = outcome.entry.dest else {
        return outcome;
    };
    let range = Arc::between(lo, hi);
    if range.is_empty() {
        return outcome;
    }
    // The owner of `lo` always owns the range's first keys.
    outcome.owners.push(first);
    let mut cursor = first;
    // Walk successors while they still own something inside [lo, hi):
    // a peer owns (pred, self], so successor `s` of `cursor` intersects
    // the range iff its *predecessor side* boundary (cursor) is before hi,
    // i.e. iff s's owned arc starts inside the range.
    while let Some(next) = net.ring_successor(cursor) {
        if next == cursor || next == first {
            break; // wrapped: the whole ring is covered
        }
        // `next` owns (cursor, next]; it holds range keys iff some key in
        // (cursor, next] lies in [lo, hi). Since we walk in order, that is
        // exactly: cursor's id is still strictly before hi within range.
        if !range.contains(net.peer(cursor).id) {
            break;
        }
        outcome.scan_hops += 1;
        outcome.owners.push(next);
        cursor = next;
    }
    // The last pushed peer owns up to its own id; if the previous owner
    // already covered hi, the last hop was still necessary to *know* the
    // range ended (its predecessor link confirms the boundary).
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{new_overlay, OscarConfig};
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::UniformKeys;
    use oscar_sim::FaultModel;
    use oscar_types::SeedTree;

    fn grown(n: usize, seed: u64) -> crate::OscarOverlay {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, seed);
        ov.grow_to(n, &UniformKeys, &ConstantDegrees::paper())
            .unwrap();
        ov
    }

    #[test]
    fn scan_covers_exactly_the_range_owners() {
        let ov = grown(300, 1);
        let net = ov.network();
        let lo = Id::from_unit(0.30);
        let hi = Id::from_unit(0.45);
        let mut rng = SeedTree::new(2).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let out = range_scan(net, src, lo, hi, &RoutePolicy::default());
        assert!(out.entry.success);

        // Oracle: owners of [lo, hi) = peers with id in [lo, hi) plus the
        // owner of the range end boundary (owns the tail of the range).
        let in_range: Vec<PeerIdx> = net
            .live_peers()
            .filter(|&p| {
                let id = net.peer(p).id;
                Arc::between(lo, hi).contains(id)
            })
            .collect();
        for p in &in_range {
            assert!(out.owners.contains(p), "missing owner {p:?}");
        }
        // At most one extra peer: the boundary owner.
        assert!(out.owners.len() <= in_range.len() + 1);
        assert_eq!(out.scan_hops as usize, out.owners.len() - 1);
    }

    #[test]
    fn owners_are_ring_contiguous() {
        let ov = grown(200, 3);
        let net = ov.network();
        let mut rng = SeedTree::new(4).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let out = range_scan(
            net,
            src,
            Id::from_unit(0.7),
            Id::from_unit(0.9),
            &RoutePolicy::default(),
        );
        for w in out.owners.windows(2) {
            assert_eq!(
                net.ring_successor(w[0]),
                Some(w[1]),
                "scan must follow the ring"
            );
        }
    }

    #[test]
    fn wrapping_range_scans_through_zero() {
        let ov = grown(200, 5);
        let net = ov.network();
        let mut rng = SeedTree::new(6).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let lo = Id::from_unit(0.95);
        let hi = Id::from_unit(0.05);
        let out = range_scan(net, src, lo, hi, &RoutePolicy::default());
        assert!(out.entry.success);
        // ~10% of 200 uniform peers
        assert!(
            (10..=35).contains(&out.owners.len()),
            "wrapped scan found {} owners",
            out.owners.len()
        );
    }

    #[test]
    fn empty_range_only_routes() {
        let ov = grown(100, 7);
        let net = ov.network();
        let mut rng = SeedTree::new(8).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let p = Id::from_unit(0.5);
        let out = range_scan(net, src, p, p, &RoutePolicy::default());
        assert!(out.entry.success);
        assert_eq!(out.scan_hops, 0);
        assert!(out.owners.is_empty());
    }

    #[test]
    fn full_ring_range_visits_everyone_once() {
        let ov = grown(60, 9);
        let net = ov.network();
        let mut rng = SeedTree::new(10).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let lo = Id::from_unit(0.1);
        let hi = lo.sub(1); // everything except one position
        let out = range_scan(net, src, lo, hi, &RoutePolicy::default());
        assert_eq!(out.owners.len(), 60, "every peer owns part of the ring");
        let mut dedup = out.owners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 60, "no owner visited twice");
    }

    #[test]
    fn scan_cost_scales_with_selectivity() {
        let ov = grown(400, 11);
        let net = ov.network();
        let mut rng = SeedTree::new(12).rng();
        let src = net.random_live_peer(&mut rng).unwrap();
        let narrow = range_scan(
            net,
            src,
            Id::from_unit(0.2),
            Id::from_unit(0.21),
            &RoutePolicy::default(),
        );
        let wide = range_scan(
            net,
            src,
            Id::from_unit(0.2),
            Id::from_unit(0.6),
            &RoutePolicy::default(),
        );
        assert!(wide.scan_hops > narrow.scan_hops * 5);
        // entry cost is range-size independent (both routed to 0.2)
        assert_eq!(narrow.entry.hops, wide.entry.hops);
    }
}
