//! Analytic reference curves.
//!
//! The paper proves the worst-case search cost of an Oscar network is
//! `O(log²N)` (with at least one long-range link per peer) and observes
//! far better constants with ~27 links. These helpers provide the
//! reference curves tests and EXPERIMENTS.md compare measurements against.

/// `log₂(n)` (0 for n ≤ 1).
pub fn log2(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2()
    }
}

/// Worst-case greedy search cost bound `log₂²(N)` — the paper's guarantee
/// with a *single* long-range link per peer.
pub fn worst_case_search_bound(n: usize) -> f64 {
    let l = log2(n);
    l * l
}

/// Expected greedy search cost `Θ(log²N / k)` for `k` long-range links per
/// peer (Kleinberg-style analysis); the constant is 1, so treat this as a
/// scaling shape, not a prediction.
pub fn expected_search_shape(n: usize, links_per_peer: usize) -> f64 {
    worst_case_search_bound(n) / links_per_peer.max(1) as f64
}

/// Number of partitions the median chain should discover: `⌈log₂N⌉`.
pub fn expected_partition_count(n: usize) -> usize {
    log2(n).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_edge_cases() {
        assert_eq!(log2(0), 0.0);
        assert_eq!(log2(1), 0.0);
        assert_eq!(log2(2), 1.0);
        assert_eq!(log2(1024), 10.0);
    }

    #[test]
    fn worst_case_grows_polylog() {
        assert_eq!(worst_case_search_bound(1024), 100.0);
        assert!(worst_case_search_bound(10_000) < 178.0);
        // doubling N adds ~2 log N + 1, far from doubling the bound
        let r = worst_case_search_bound(20_000) / worst_case_search_bound(10_000);
        assert!(r < 1.2);
    }

    #[test]
    fn more_links_cut_the_shape() {
        assert!(expected_search_shape(10_000, 27) < expected_search_shape(10_000, 1));
        assert_eq!(
            expected_search_shape(10_000, 0),
            worst_case_search_bound(10_000),
            "zero links clamps to one"
        );
    }

    #[test]
    fn partition_counts() {
        assert_eq!(expected_partition_count(1024), 10);
        assert_eq!(expected_partition_count(10_000), 14);
        assert_eq!(expected_partition_count(1), 0);
    }
}
