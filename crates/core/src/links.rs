//! Long-range link acquisition (§2 of the paper).
//!
//! Given its partitions, a peer fills each of its `ρ_out_max` long-range
//! slots by:
//!
//! 1. choosing a partition **uniformly at random** — every `A_i` is equally
//!    likely, which weights rank-distance scales harmonically;
//! 2. sampling peers **uniformly within** the chosen partition (restricted
//!    random walks);
//! 3. with the **power-of-two-choices** technique, sampling two candidates
//!    and probing their current in-degree, linking to the less loaded —
//!    this is what spreads in-degree across heterogeneous budgets;
//! 4. requesting the link; the target *refuses* if its `ρ_in_max` budget is
//!    exhausted (its local decision, the paper's contribution-control
//!    mechanism), in which case the slot retries with a fresh partition
//!    draw, and is left unfilled after `link_retries` failures.

use crate::config::OscarConfig;
use crate::partitions::Partitions;
use oscar_protocol::logic;
use oscar_sim::{sample_peers, LinkError, MsgKind, Network, PeerIdx};
use oscar_types::{Id, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// Outcome of one link-building pass for one peer.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Links successfully established.
    pub established: u32,
    /// Slots left unfilled after exhausting retries.
    pub unfilled: u32,
    /// Candidates whose in-degree was probed.
    pub probed: u64,
}

/// Fills `u`'s remaining out-link budget using its partitions.
pub fn acquire_links(
    net: &mut Network,
    u: PeerIdx,
    parts: &Partitions,
    cfg: &OscarConfig,
    rng: &mut SmallRng,
) -> Result<LinkStats> {
    let mut stats = LinkStats::default();
    if parts.is_empty() {
        return Ok(stats);
    }
    let budget = {
        let p = net.peer(u);
        p.caps.rho_out.saturating_sub(p.out_degree())
    };
    let mut candidates: Vec<PeerIdx> = Vec::with_capacity(cfg.link_candidates);
    'slots: for _ in 0..budget {
        for _attempt in 0..=cfg.link_retries {
            let (arc, entry) = parts.get(rng.gen_range(0..parts.len()));
            if !net.is_alive(entry) {
                continue; // stale partition info under churn; try another
            }
            candidates.clear();
            candidates.extend(sample_peers(
                net,
                cfg.walk,
                entry,
                Some(&arc),
                cfg.link_candidates,
                rng,
            )?);
            candidates.sort_unstable();
            candidates.dedup();
            // Admission and least-loaded selection both go through the
            // shared protocol kernels (one implementation for the oracle
            // simulator and the distributed machine). Peer indices enter
            // the kernels' Id space verbatim — the checks are pure
            // equality, so the bridge changes nothing.
            let as_id = |p: PeerIdx| Id::new(p.0 as u64);
            let mut existing: Vec<Id> = net.peer(u).long_out.iter().map(|&t| as_id(t)).collect();
            existing.sort_unstable();
            // Probe in-degrees; pick the least-loaded candidate
            // (power-of-two choices when link_candidates == 2).
            let mut best: Option<(usize, Id)> = None;
            for &c in &candidates {
                if !net.is_alive(c) || !logic::admits_link(as_id(u), as_id(c), &[], &existing) {
                    continue;
                }
                net.metrics.inc(MsgKind::Probe);
                stats.probed += 1;
                let load = net.peer(c).in_degree() as usize;
                best = logic::pick_least_loaded(best, load, as_id(c));
            }
            let Some((_, target)) = best else {
                continue; // all candidates unusable; retry
            };
            let target = PeerIdx(target.raw() as u32);
            match net.try_link(u, target) {
                Ok(()) => {
                    stats.established += 1;
                    continue 'slots;
                }
                Err(LinkError::TargetFull) => continue, // refused: retry
                Err(LinkError::Duplicate) | Err(LinkError::SelfLink) | Err(LinkError::Dead) => {
                    continue
                }
                Err(LinkError::SourceFull) => break 'slots, // budget gone
            }
        }
        stats.unfilled += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitions::estimate_partitions;
    use oscar_degree::DegreeCaps;
    use oscar_sim::FaultModel;
    use oscar_types::{Id, SeedTree};

    /// Evenly spaced ring with bootstrap links for walk mixing.
    fn test_net(n: u64, caps: DegreeCaps, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let step = u64::MAX / n;
        let idxs: Vec<PeerIdx> = (0..n)
            .map(|i| net.add_peer(Id::new(i * step + 3), caps).unwrap())
            .collect();
        let mut rng = SeedTree::new(seed).rng();
        for &i in &idxs {
            for _ in 0..4 {
                let j = idxs[rng.gen_range(0..idxs.len())];
                let _ = net.try_link(i, j);
            }
        }
        // Clear bootstrap links' in/out budgets by rewiring from scratch:
        // keep them — they only make walks mix; budgets are large enough.
        net
    }

    fn parts_for(net: &mut Network, u: PeerIdx, cfg: &OscarConfig, seed: u64) -> Partitions {
        let mut rng = SeedTree::new(seed).rng();
        estimate_partitions(net, u, cfg, &mut rng).unwrap()
    }

    #[test]
    fn fills_the_out_budget_when_capacity_abounds() {
        let mut net = test_net(256, DegreeCaps::symmetric(64), 1);
        let u = net.live_peer_by_rank(0);
        let cfg = OscarConfig::default();
        let parts = parts_for(&mut net, u, &cfg, 2);
        let before = net.peer(u).out_degree();
        let mut rng = SeedTree::new(3).rng();
        let stats = acquire_links(&mut net, u, &parts, &cfg, &mut rng).unwrap();
        let budget = 64 - before;
        // Nearly the whole budget fills; a few slots may exhaust their
        // retries on duplicate candidates (64 links on 256 peers means the
        // near partitions keep re-sampling already-linked peers).
        assert!(
            stats.established >= budget - 8,
            "only {}/{budget} established",
            stats.established
        );
        assert_eq!(stats.established + stats.unfilled, budget);
        assert!(net.peer(u).out_degree() >= 64 - 8);
    }

    #[test]
    fn links_land_in_many_partitions() {
        let mut net = test_net(512, DegreeCaps::symmetric(64), 4);
        let u = net.live_peer_by_rank(0);
        let cfg = OscarConfig::default();
        let parts = parts_for(&mut net, u, &cfg, 5);
        net.unlink_long_out(u); // drop bootstrap links; rebuild via Oscar
        let mut rng = SeedTree::new(6).rng();
        acquire_links(&mut net, u, &parts, &cfg, &mut rng).unwrap();
        // Count how many distinct partitions received a link.
        let hit = parts
            .arcs()
            .filter(|a| {
                net.peer(u)
                    .long_out
                    .iter()
                    .any(|&t| a.contains(net.peer(t).id))
            })
            .count();
        assert!(
            hit >= parts.len() / 2,
            "links concentrated: {hit}/{} partitions hit",
            parts.len()
        );
    }

    #[test]
    fn respects_target_budgets_strictly() {
        // Tight in-budgets: nobody may exceed ρ_in no matter the pressure.
        let mut net = test_net(
            64,
            DegreeCaps {
                rho_in: 6,
                rho_out: 24,
            },
            7,
        );
        let cfg = OscarConfig::default();
        for rank in 0..64 {
            let u = net.live_peer_by_rank(rank);
            let parts = parts_for(&mut net, u, &cfg, 100 + rank as u64);
            let mut rng = SeedTree::new(200 + rank as u64).rng();
            let _ = acquire_links(&mut net, u, &parts, &cfg, &mut rng).unwrap();
        }
        for p in net.all_peers() {
            assert!(
                net.peer(p).in_degree() <= net.peer(p).caps.rho_in,
                "peer {p:?} over budget"
            );
        }
    }

    #[test]
    fn power_of_two_balances_in_degree() {
        // Same network, same demand; compare in-degree spread with 1 vs 2
        // candidates. Power-of-two should shrink the spread (variance).
        let spread = |candidates: usize, seed: u64| -> f64 {
            // Generous in-budget (uncapped regime), 8 out-links demanded.
            let mut net = test_net(
                256,
                DegreeCaps {
                    rho_in: 200,
                    rho_out: 12,
                },
                seed,
            );
            // Remove bootstrap links so only Oscar links count.
            let peers: Vec<PeerIdx> = net.live_peers().collect();
            let cfg = OscarConfig {
                link_candidates: candidates,
                ..OscarConfig::default()
            };
            // Partitions estimated while bootstrap links still exist (for
            // walk mixing), then links rebuilt from scratch.
            let parts: Vec<Partitions> = peers
                .iter()
                .enumerate()
                .map(|(i, &u)| parts_for(&mut net, u, &cfg, seed + 1000 + i as u64))
                .collect();
            for &p in &peers {
                net.unlink_long_out(p);
            }
            for (i, &u) in peers.iter().enumerate() {
                let mut rng = SeedTree::new(seed + 5000 + i as u64).rng();
                acquire_links(&mut net, u, &parts[i], &cfg, &mut rng).unwrap();
            }
            let degs: Vec<f64> = net
                .live_peers()
                .map(|p| net.peer(p).in_degree() as f64)
                .collect();
            let mean = degs.iter().sum::<f64>() / degs.len() as f64;
            degs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / degs.len() as f64
        };
        let var1 = spread(1, 11);
        let var2 = spread(2, 11);
        assert!(
            var2 < var1,
            "power-of-two should reduce in-degree variance: {var2:.2} !< {var1:.2}"
        );
    }

    #[test]
    fn refusals_leave_slots_unfilled_not_overfilled() {
        // Tiny in-budgets force refusals; total in-links == total capacity.
        let mut net = test_net(
            32,
            DegreeCaps {
                rho_in: 2,
                rho_out: 16,
            },
            13,
        );
        let peers: Vec<PeerIdx> = net.live_peers().collect();
        for &p in &peers {
            net.unlink_long_out(p);
        }
        let cfg = OscarConfig::default();
        let mut total_unfilled = 0;
        for (i, &u) in peers.iter().enumerate() {
            let parts = parts_for(&mut net, u, &cfg, 300 + i as u64);
            let mut rng = SeedTree::new(400 + i as u64).rng();
            let stats = acquire_links(&mut net, u, &parts, &cfg, &mut rng).unwrap();
            total_unfilled += stats.unfilled;
        }
        let total_in: u32 = peers.iter().map(|&p| net.peer(p).in_degree()).sum();
        assert!(total_in <= 32 * 2, "capacity violated");
        assert!(
            total_unfilled > 0,
            "demand (16/peer) far exceeds supply (2/peer)"
        );
    }

    #[test]
    fn empty_partitions_are_a_noop() {
        let mut net = test_net(4, DegreeCaps::symmetric(4), 15);
        let u = net.live_peer_by_rank(0);
        let empty = Partitions::empty(net.peer(u).id);
        let mut rng = SeedTree::new(16).rng();
        let stats = acquire_links(&mut net, u, &empty, &OscarConfig::default(), &mut rng).unwrap();
        assert_eq!(stats, LinkStats::default());
    }

    #[test]
    fn probes_are_counted() {
        let mut net = test_net(128, DegreeCaps::symmetric(32), 17);
        let u = net.live_peer_by_rank(0);
        let cfg = OscarConfig::default();
        let parts = parts_for(&mut net, u, &cfg, 18);
        let before = net.metrics.get(MsgKind::Probe);
        let mut rng = SeedTree::new(19).rng();
        let stats = acquire_links(&mut net, u, &parts, &cfg, &mut rng).unwrap();
        assert_eq!(net.metrics.get(MsgKind::Probe) - before, stats.probed);
        assert!(stats.probed > 0);
    }
}
