//! Median-chain partition estimation (§2 of the paper).
//!
//! Node `u` partitions the identifier space clockwise into `A₁ … A_k`:
//! `A₁` is the far half of the *population*, `A₂` the next quarter, and so
//! on, the border between consecutive partitions being the median of the
//! peers not yet cut away. Ideally `|A_i| = N/2^i` — a logarithmic number
//! of partitions whose borders adapt to the key density instead of the key
//! metric, which is the whole trick: a uniform choice of partition followed
//! by a uniform choice within realises the harmonic rank-distance
//! distribution regardless of how skewed the identifiers are.
//!
//! Medians are estimated from small samples gathered by random walks that
//! never leave the current sub-population's arc (`oscar-sim::walker`). The
//! chain *discovers* `k ≈ log₂N` adaptively: it keeps halving until the
//! sample collapses onto ≤ 2 distinct peers, so no network-size estimate is
//! needed anywhere.

use crate::config::{MedianSource, OscarConfig};
use oscar_sim::{sample_peers, Network, PeerIdx};
use oscar_types::{Arc, Id, Result};
use rand::rngs::SmallRng;

/// The logarithmic partitions of one node, far → near.
///
/// Each partition carries a known live member (the border peer for interior
/// partitions, the ring successor for the innermost) used as the entry
/// point for subsequent sampling walks.
#[derive(Clone, Debug)]
pub struct Partitions {
    origin: Id,
    parts: Vec<(Arc, PeerIdx)>,
}

impl Partitions {
    /// An empty partition set (what a singleton network gets).
    pub fn empty(origin: Id) -> Self {
        Partitions {
            origin,
            parts: Vec::new(),
        }
    }

    /// The partitioning node's identifier.
    pub fn origin(&self) -> Id {
        self.origin
    }

    /// Number of partitions (`k ≈ log₂N`).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True iff no partitions could be built (singleton network).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Partition `i` (0 = farthest) and its entry peer.
    pub fn get(&self, i: usize) -> (Arc, PeerIdx) {
        self.parts[i]
    }

    /// All partition arcs, far → near.
    pub fn arcs(&self) -> impl Iterator<Item = Arc> + '_ {
        self.parts.iter().map(|&(a, _)| a)
    }
}

/// Estimates the partitions of node `u` on the current network.
///
/// Returns an empty set when `u` is the only live peer. Walk steps are
/// credited to the network's metrics.
pub fn estimate_partitions(
    net: &mut Network,
    u: PeerIdx,
    cfg: &OscarConfig,
    rng: &mut SmallRng,
) -> Result<Partitions> {
    let uid = net.peer(u).id;
    let mut parts = Partitions {
        origin: uid,
        parts: Vec::with_capacity(24),
    };
    // Nearest clockwise live peer: entry point for near-region walks.
    let Some(succ_id) = net.ring_live().successor_of(uid) else {
        return Ok(parts);
    };
    if succ_id == uid {
        return Ok(parts); // singleton network
    }
    let succ = net.idx_of(succ_id).expect("ring ids are registered");

    // The population clockwise of u: everything except u itself.
    let mut current = Arc::between(uid.add(1), uid);

    for _ in 0..cfg.max_partitions {
        if !current.contains(succ_id) {
            // Not even the nearest peer is left: the previous border was
            // the innermost peer; nothing more to partition.
            return Ok(parts);
        }
        let median = match cfg.median_source {
            MedianSource::Sampled => {
                let samples = sample_peers(
                    net,
                    cfg.walk,
                    succ,
                    Some(&current),
                    cfg.median_sample_size,
                    rng,
                )?;
                let mut by_dist: Vec<(u64, PeerIdx)> = samples
                    .iter()
                    .map(|&s| (uid.cw_dist(net.peer(s).id), s))
                    .collect();
                by_dist.sort_unstable();
                by_dist.dedup();
                if by_dist.len() <= 2 {
                    // Sub-population (as far as sampling can tell) has
                    // collapsed: `current` is the innermost partition.
                    break;
                }
                let (_, m) = by_dist[by_dist.len().div_ceil(2) - 1];
                m
            }
            MedianSource::Oracle => {
                if net.ring_live().count_in_arc(&current) <= 2 {
                    break;
                }
                let m_id = net
                    .ring_live()
                    .median_in_arc(&current)
                    .expect("non-empty arc");
                net.idx_of(m_id).expect("ring ids are registered")
            }
        };
        let m_id = net.peer(median).id;
        // Far partition: [median, end of current arc).
        let far = current.truncate_from(m_id);
        parts.parts.push((far, median));
        // Remaining sub-population: strictly closer than the median.
        current = current.truncate_at(m_id);
        if current.is_empty() {
            return Ok(parts);
        }
    }
    // Innermost partition: whatever remains (contains at least succ).
    if current.contains(succ_id) {
        parts.parts.push((current, succ));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_keydist::{sample_n, ClusteredKeys, KeyDistribution, UniformKeys};
    use oscar_sim::FaultModel;
    use oscar_types::{SeedTree, RING_SIZE};
    use rand::Rng;

    /// Network with given ids, ring + `extra` random long links per peer
    /// (so sampling walks can mix).
    fn test_net(ids: Vec<Id>, extra: usize, seed: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        let idxs: Vec<PeerIdx> = ids
            .into_iter()
            .map(|id| net.add_peer(id, DegreeCaps::symmetric(64)).unwrap())
            .collect();
        let mut rng = SeedTree::new(seed).rng();
        for &i in &idxs {
            for _ in 0..extra {
                let j = idxs[rng.gen_range(0..idxs.len())];
                let _ = net.try_link(i, j);
            }
        }
        net
    }

    fn uniform_ids(n: u64) -> Vec<Id> {
        let step = u64::MAX / n;
        (0..n).map(|i| Id::new(i * step + 7)).collect()
    }

    #[test]
    fn singleton_network_has_no_partitions() {
        let mut net = test_net(vec![Id::new(42)], 0, 1);
        let u = net.idx_of(Id::new(42)).unwrap();
        let mut rng = SeedTree::new(2).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn two_peer_network_gets_one_partition() {
        let mut net = test_net(vec![Id::new(10), Id::new(u64::MAX / 2)], 0, 3);
        let u = net.idx_of(Id::new(10)).unwrap();
        let mut rng = SeedTree::new(4).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        assert_eq!(p.len(), 1);
        let (arc, entry) = p.get(0);
        assert!(arc.contains(Id::new(u64::MAX / 2)));
        assert_eq!(net.peer(entry).id, Id::new(u64::MAX / 2));
    }

    #[test]
    fn partitions_tile_the_ring_minus_origin() {
        let mut net = test_net(uniform_ids(256), 5, 5);
        let u = net.idx_of(Id::new(7)).unwrap();
        let mut rng = SeedTree::new(6).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        assert!(!p.is_empty());
        // Total coverage: everything except the origin position.
        let total: u128 = p.arcs().map(|a| a.len()).sum();
        assert_eq!(total, RING_SIZE - 1);
        // Pairwise disjoint (probe a few hundred random points).
        let mut probe_rng = SeedTree::new(7).rng();
        for _ in 0..300 {
            let x = Id::new(probe_rng.gen());
            let hits = p.arcs().filter(|a| a.contains(x)).count();
            assert!(hits <= 1, "point {x:?} in {hits} partitions");
        }
    }

    #[test]
    fn partition_count_is_logarithmic() {
        for (n, seed) in [(64u64, 8u64), (256, 9), (1024, 10)] {
            let mut net = test_net(uniform_ids(n), 5, seed);
            let u = net.idx_of(Id::new(7)).unwrap();
            let mut rng = SeedTree::new(seed + 100).rng();
            let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
            let expect = (n as f64).log2();
            assert!(
                (p.len() as f64) > expect * 0.5 && (p.len() as f64) < expect * 1.8,
                "n={n}: {} partitions vs log2={expect:.1}",
                p.len()
            );
        }
    }

    #[test]
    fn oracle_partitions_halve_population_exactly() {
        let mut net = test_net(uniform_ids(512), 5, 11);
        let u = net.idx_of(Id::new(7)).unwrap();
        let mut rng = SeedTree::new(12).rng();
        let cfg = OscarConfig::default().with_oracle_medians();
        let p = estimate_partitions(&mut net, u, &cfg, &mut rng).unwrap();
        // |A_1| must be exactly ⌈(N-1)/2⌉ + (0 or 1): the far half of the
        // 511 other peers under the lower-median convention.
        let far_count = net.ring_live().count_in_arc(&p.get(0).0);
        assert!(
            (250..=260).contains(&far_count),
            "far partition holds {far_count}/511"
        );
        // Each subsequent partition roughly halves.
        for i in 1..p.len().min(5) {
            let prev = net.ring_live().count_in_arc(&p.get(i - 1).0);
            let cur = net.ring_live().count_in_arc(&p.get(i).0);
            assert!(
                cur * 2 >= prev.saturating_sub(2) / 2 && cur <= prev,
                "partition {i}: {cur} vs prev {prev}"
            );
        }
    }

    #[test]
    fn sampled_partitions_approximate_halving() {
        let mut net = test_net(uniform_ids(512), 5, 13);
        let u = net.idx_of(Id::new(7)).unwrap();
        let mut rng = SeedTree::new(14).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        let n = net.ring_live().len() - 1;
        let far = net.ring_live().count_in_arc(&p.get(0).0);
        let frac = far as f64 / n as f64;
        // Sampled median of 12 points: the far half should hold 30-70%.
        assert!(
            (0.30..=0.70).contains(&frac),
            "far partition fraction {frac:.2}"
        );
    }

    #[test]
    fn chained_sampling_preserves_halving() {
        // Ablation for the thinned-chain walk mode: correlated samples must
        // not degrade the partition chain. Check the same halving and
        // partition-count properties the fresh-walk tests demand, across
        // several seeds so one lucky chain cannot mask a bias.
        for seed in [13u64, 14, 15] {
            let mut net = test_net(uniform_ids(512), 5, seed);
            let u = net.idx_of(Id::new(7)).unwrap();
            let mut rng = SeedTree::new(seed + 50).rng();
            let cfg = OscarConfig::default().with_chained_sampling(12);
            let p = estimate_partitions(&mut net, u, &cfg, &mut rng).unwrap();
            let n = net.ring_live().len() - 1;
            let far = net.ring_live().count_in_arc(&p.get(0).0);
            let frac = far as f64 / n as f64;
            assert!(
                (0.30..=0.70).contains(&frac),
                "seed {seed}: far partition fraction {frac:.2} under chaining"
            );
            let expect = (n as f64).log2();
            assert!(
                (p.len() as f64) > expect * 0.5 && (p.len() as f64) < expect * 1.8,
                "seed {seed}: {} partitions vs log2={expect:.1}",
                p.len()
            );
        }
    }

    #[test]
    fn chained_sampling_walks_fewer_steps() {
        let fresh_cfg = OscarConfig::default();
        let chained_cfg = OscarConfig::default().with_chained_sampling(6);
        let steps_with = |cfg: &OscarConfig| {
            let mut net = test_net(uniform_ids(256), 5, 16);
            let u = net.idx_of(Id::new(7)).unwrap();
            let mut rng = SeedTree::new(17).rng();
            estimate_partitions(&mut net, u, cfg, &mut rng).unwrap();
            net.metrics.get(oscar_sim::MsgKind::WalkStep)
        };
        let fresh = steps_with(&fresh_cfg);
        let chained = steps_with(&chained_cfg);
        // 12 samples/median: fresh pays 12·24 steps, chained 24 + 11·6.
        assert!(
            chained * 2 < fresh,
            "chaining should at least halve walk steps: {chained} vs {fresh}"
        );
    }

    #[test]
    fn skewed_keys_get_density_adapted_partitions() {
        // With a spiky key distribution, partitions must track population,
        // not key-space width: the far partition can be a tiny arc if the
        // mass sits just clockwise of the origin.
        let keys = ClusteredKeys::new(6, 1e-3, 1.0, 15);
        let mut id_rng = SeedTree::new(16).rng();
        let mut ids = sample_n(&keys, 512, &mut id_rng);
        ids.sort_unstable();
        ids.dedup();
        let mut net = test_net(ids, 5, 17);
        let u = net.live_peer_by_rank(3);
        let mut rng = SeedTree::new(18).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        let n = net.ring_live().len() - 1;
        let far = net.ring_live().count_in_arc(&p.get(0).0);
        let frac = far as f64 / n as f64;
        assert!(
            (0.25..=0.75).contains(&frac),
            "population-median split should hold under skew, got {frac:.2}"
        );
        // And the innermost partitions must hold *few* peers even though
        // the key space near a cluster is dense.
        let last = net.ring_live().count_in_arc(&p.get(p.len() - 1).0);
        assert!(last <= n / 4, "innermost partition holds {last}/{n}");
    }

    #[test]
    fn entry_points_are_members_of_their_partitions() {
        let mut net = test_net(uniform_ids(128), 4, 19);
        let u = net.live_peer_by_rank(0);
        let mut rng = SeedTree::new(20).rng();
        let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
        for i in 0..p.len() {
            let (arc, entry) = p.get(i);
            assert!(
                arc.contains(net.peer(entry).id),
                "partition {i} entry outside its arc"
            );
            assert!(net.is_alive(entry));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut net = test_net(uniform_ids(128), 4, 21);
            let u = net.live_peer_by_rank(5);
            let mut rng = SeedTree::new(22).rng();
            let p = estimate_partitions(&mut net, u, &OscarConfig::default(), &mut rng).unwrap();
            p.arcs()
                .map(|a| (a.start().raw(), a.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn uniform_keys_sanity_for_keydist_integration() {
        // Smoke-check the helper distributions wired into these tests.
        let mut rng = SeedTree::new(23).rng();
        let k = UniformKeys.sample(&mut rng);
        let _ = k.to_unit();
    }
}
