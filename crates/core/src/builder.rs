//! The Oscar link-building strategy, packaged for the growth driver.

use crate::config::OscarConfig;
use crate::links::acquire_links;
use crate::partitions::estimate_partitions;
use oscar_sim::{LinkError, Network, OverlayBuilder, PeerIdx};
use oscar_types::Result;
use rand::rngs::SmallRng;

/// Networks at or below this size are wired directly (everyone links to
/// everyone, budget permitting): sampling walks need a graph to walk on,
/// and at this scale "everyone" *is* the logarithmic partition set.
const DIRECT_WIRING_THRESHOLD: usize = 8;

/// Oscar's [`OverlayBuilder`]: partition estimation + harmonic-by-rank
/// link acquisition with power-of-two in-degree balancing.
#[derive(Clone, Debug)]
pub struct OscarBuilder {
    config: OscarConfig,
}

impl OscarBuilder {
    /// Builder with the given configuration.
    ///
    /// # Panics
    /// On invalid configuration (zero sample size etc.) — configs are
    /// experiment constants, so failing fast beats threading errors.
    pub fn new(config: OscarConfig) -> Self {
        config.validate().expect("invalid OscarConfig");
        OscarBuilder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &OscarConfig {
        &self.config
    }

    /// Direct wiring for bootstrap-scale networks.
    fn wire_directly(&self, net: &mut Network, p: PeerIdx) {
        let targets: Vec<PeerIdx> = net.live_peers().filter(|&t| t != p).collect();
        for t in targets {
            if !net.peer(p).can_open_out() {
                break;
            }
            match net.try_link(p, t) {
                Ok(()) | Err(LinkError::TargetFull) | Err(LinkError::Duplicate) => {}
                Err(LinkError::SelfLink) | Err(LinkError::Dead) => {}
                Err(LinkError::SourceFull) => break,
            }
        }
    }
}

impl OverlayBuilder for OscarBuilder {
    fn name(&self) -> &str {
        "oscar"
    }

    fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
        if !net.is_alive(p) || net.live_count() <= 1 {
            return Ok(());
        }
        if net.live_count() <= DIRECT_WIRING_THRESHOLD {
            self.wire_directly(net, p);
            return Ok(());
        }
        let parts = estimate_partitions(net, p, &self.config, rng)?;
        acquire_links(net, p, &parts, &self.config, rng)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_overlay;
    use oscar_degree::{ConstantDegrees, SpikyDegrees, SteppedDegrees};
    use oscar_keydist::{GnutellaKeys, QueryWorkload, UniformKeys};
    use oscar_sim::FaultModel;

    #[test]
    #[should_panic(expected = "invalid OscarConfig")]
    fn bad_config_panics_at_construction() {
        let cfg = OscarConfig {
            median_sample_size: 0,
            ..OscarConfig::default()
        };
        let _ = OscarBuilder::new(cfg);
    }

    #[test]
    fn builder_reports_name() {
        assert_eq!(OscarBuilder::new(OscarConfig::default()).name(), "oscar");
    }

    #[test]
    fn tiny_networks_are_wired_directly() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 1);
        ov.grow_to(4, &UniformKeys, &ConstantDegrees::new(8))
            .unwrap();
        // each of the 4 peers links to the 3 others
        for p in ov.network().all_peers() {
            assert_eq!(ov.network().peer(p).out_degree(), 3);
        }
    }

    #[test]
    fn oscar_overlay_routes_efficiently_uniform() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 2);
        ov.grow_to(500, &UniformKeys, &ConstantDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 500);
        assert_eq!(stats.success_rate, 1.0);
        // log2(500)^2 ≈ 80; Oscar with 27 links/peer lands way below.
        assert!(stats.mean_cost < 10.0, "mean cost {}", stats.mean_cost);
    }

    #[test]
    fn oscar_overlay_routes_efficiently_gnutella_keys() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 3);
        ov.grow_to(500, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 500);
        assert_eq!(stats.success_rate, 1.0);
        assert!(
            stats.mean_cost < 12.0,
            "skewed keys should not break routing: {}",
            stats.mean_cost
        );
    }

    #[test]
    fn heterogeneous_degrees_respect_budgets() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 4);
        ov.grow_to(400, &GnutellaKeys::default(), &SpikyDegrees::paper())
            .unwrap();
        for p in ov.network().all_peers() {
            let peer = ov.network().peer(p);
            assert!(peer.in_degree() <= peer.caps.rho_in, "in budget violated");
            assert!(
                peer.out_degree() <= peer.caps.rho_out,
                "out budget violated"
            );
        }
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 400);
        assert_eq!(stats.success_rate, 1.0);
    }

    #[test]
    fn stepped_degrees_work_too() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 5);
        ov.grow_to(300, &GnutellaKeys::default(), &SteppedDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 300);
        assert_eq!(stats.success_rate, 1.0);
        assert!(stats.mean_cost < 12.0);
    }

    #[test]
    fn overlay_survives_churn() {
        let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 6);
        ov.grow_to(400, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        let baseline = ov.run_queries(&QueryWorkload::UniformPeers, 300);
        ov.kill_fraction(0.33).unwrap();
        let after = ov.run_queries(&QueryWorkload::UniformPeers, 300);
        assert_eq!(after.success_rate, 1.0, "stabilised ring always delivers");
        assert!(
            after.mean_cost > baseline.mean_cost,
            "dead links must cost something: {} vs {}",
            after.mean_cost,
            baseline.mean_cost
        );
        assert!(after.mean_wasted > 0.0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut ov = new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 7);
            ov.grow_to(200, &GnutellaKeys::default(), &ConstantDegrees::paper())
                .unwrap();
            ov.run_queries(&QueryWorkload::UniformPeers, 200).mean_cost
        };
        assert_eq!(run(), run());
    }
}
