//! Oscar construction parameters.

use oscar_sim::WalkConfig;
use oscar_types::{Error, Result};

/// Where partition medians come from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MedianSource {
    /// Estimate medians from restricted random-walk samples — the paper's
    /// algorithm and the default.
    Sampled,
    /// Read exact medians off the live ring (global knowledge). Not
    /// implementable in a real deployment; exists to isolate how much
    /// search-cost the sampling error contributes (ablation A3).
    Oracle,
}

/// Tuning knobs of the Oscar construction.
#[derive(Copy, Clone, Debug)]
pub struct OscarConfig {
    /// Peers sampled per median estimate. The paper stresses that "very
    /// low sample sizes" already work; 12 is our default, swept in
    /// ablation A2.
    pub median_sample_size: usize,
    /// Hard cap on the partition chain length (safety bound well above
    /// `log₂` of any simulated size).
    pub max_partitions: usize,
    /// Link candidates sampled per slot: 2 = the power-of-two-choices
    /// technique the paper cites; 1 disables it (ablation A1).
    pub link_candidates: usize,
    /// Additional attempts per link slot when targets refuse (their
    /// in-degree budget is exhausted).
    pub link_retries: usize,
    /// Random-walk parameters for all sampling.
    pub walk: WalkConfig,
    /// Median source (sampled vs oracle).
    pub median_source: MedianSource,
}

impl Default for OscarConfig {
    fn default() -> Self {
        OscarConfig {
            median_sample_size: 12,
            max_partitions: 48,
            link_candidates: 2,
            link_retries: 3,
            walk: WalkConfig::default(),
            median_source: MedianSource::Sampled,
        }
    }
}

impl OscarConfig {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<()> {
        if self.median_sample_size == 0 {
            return Err(Error::InvalidConfig(
                "median_sample_size must be >= 1".into(),
            ));
        }
        if self.max_partitions == 0 {
            return Err(Error::InvalidConfig("max_partitions must be >= 1".into()));
        }
        if self.link_candidates == 0 {
            return Err(Error::InvalidConfig("link_candidates must be >= 1".into()));
        }
        if self.walk.burn_in == 0 {
            return Err(Error::InvalidConfig("walk.burn_in must be >= 1".into()));
        }
        Ok(())
    }

    /// Convenience: same config with power-of-two choices disabled.
    pub fn without_power_of_two(mut self) -> Self {
        self.link_candidates = 1;
        self
    }

    /// Convenience: same config with oracle medians.
    pub fn with_oracle_medians(mut self) -> Self {
        self.median_source = MedianSource::Oracle;
        self
    }

    /// Convenience: same config with chained (thinned) median sampling —
    /// one burn-in per median estimate instead of one per sample. Cuts the
    /// join-time walk volume by roughly `burn_in / thin` at the cost of
    /// correlated samples; partition-halving quality is ablation-tested to
    /// hold (see `partitions::tests::chained_sampling_preserves_halving`).
    pub fn with_chained_sampling(mut self, thin: u32) -> Self {
        self.walk = self.walk.with_chain_thin(thin);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = OscarConfig::default();
        c.validate().unwrap();
        assert_eq!(c.link_candidates, 2, "power of two by default");
        assert_eq!(c.median_source, MedianSource::Sampled);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            OscarConfig {
                median_sample_size: 0,
                ..OscarConfig::default()
            },
            OscarConfig {
                link_candidates: 0,
                ..OscarConfig::default()
            },
            OscarConfig {
                max_partitions: 0,
                ..OscarConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        let mut c = OscarConfig::default();
        c.walk.burn_in = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_toggle_features() {
        let c = OscarConfig::default().without_power_of_two();
        assert_eq!(c.link_candidates, 1);
        let c = OscarConfig::default().with_oracle_medians();
        assert_eq!(c.median_source, MedianSource::Oracle);
        let c = OscarConfig::default().with_chained_sampling(6);
        assert_eq!(c.walk.chain_thin, 6);
        c.validate().unwrap();
    }
}
