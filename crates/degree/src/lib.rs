//! # oscar-degree — node degree-cap distributions
//!
//! Oscar models peer heterogeneity through per-peer link budgets: each peer
//! `p` locally fixes `ρ_in_max(p)` and `ρ_out_max(p)`, the maximum number of
//! incoming and outgoing **long-range** links it is willing to carry (ring
//! links are mandatory for correctness and not counted against the budget —
//! a peer cannot opt out of being reachable).
//!
//! The paper's three experimental distributions, all with mean 27:
//!
//! * [`ConstantDegrees`] — everyone gets 27/27 (the homogeneous control);
//! * [`SteppedDegrees`] — uniform over `{19, 23, 27, 39}`;
//! * [`SpikyDegrees`] — the "realistic" synthetic spiky distribution of
//!   Figure 1(a), modelled after measured unstructured-overlay degree
//!   distributions: probability spikes at popular client default settings
//!   on top of a power-law bulk, calibrated to mean 27 exactly.
//!
//! [`DiscretePmf`] is the shared engine: an explicit probability mass
//!   function over degrees with exact-mean calibration, inverse-CDF
//!   sampling, and pmf export (which is how Figure 1(a) is regenerated).

pub mod pmf;
pub mod spiky;

pub use pmf::DiscretePmf;
pub use spiky::SpikyDegrees;

use rand::{Rng, RngCore};

/// Per-peer link budget: maximum in/out **long-range** degree.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct DegreeCaps {
    /// Maximum number of incoming long-range links the peer accepts.
    pub rho_in: u32,
    /// Maximum number of outgoing long-range links the peer establishes.
    pub rho_out: u32,
}

impl DegreeCaps {
    /// Symmetric caps (the paper draws one willingness value per peer).
    pub fn symmetric(rho: u32) -> Self {
        DegreeCaps {
            rho_in: rho,
            rho_out: rho,
        }
    }
}

/// A distribution over per-peer degree caps.
pub trait DegreeDistribution: Send + Sync {
    /// Draws the caps for one peer.
    fn sample(&self, rng: &mut dyn RngCore) -> DegreeCaps;

    /// Exact mean of the per-peer degree value.
    fn mean_degree(&self) -> f64;

    /// Short name for experiment reports ("constant", "realistic", …).
    fn name(&self) -> &str;
}

impl<T: DegreeDistribution + ?Sized> DegreeDistribution for Box<T> {
    fn sample(&self, rng: &mut dyn RngCore) -> DegreeCaps {
        (**self).sample(rng)
    }
    fn mean_degree(&self) -> f64 {
        (**self).mean_degree()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Every peer gets the same symmetric budget (paper: 27).
#[derive(Copy, Clone, Debug)]
pub struct ConstantDegrees {
    degree: u32,
}

impl ConstantDegrees {
    /// Constant caps of `degree` in and out.
    pub fn new(degree: u32) -> Self {
        assert!(degree >= 1, "peers need at least one long-range link");
        ConstantDegrees { degree }
    }

    /// The paper's setting: 27 links.
    pub fn paper() -> Self {
        ConstantDegrees::new(27)
    }
}

impl DegreeDistribution for ConstantDegrees {
    fn sample(&self, _rng: &mut dyn RngCore) -> DegreeCaps {
        DegreeCaps::symmetric(self.degree)
    }

    fn mean_degree(&self) -> f64 {
        self.degree as f64
    }

    fn name(&self) -> &str {
        "constant"
    }
}

/// Uniform over a small set of steps (paper: `{19, 23, 27, 39}`, mean 27).
#[derive(Clone, Debug)]
pub struct SteppedDegrees {
    steps: Vec<u32>,
}

impl SteppedDegrees {
    /// Uniform over the given steps.
    ///
    /// # Panics
    /// If `steps` is empty or contains zero.
    pub fn new(steps: Vec<u32>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(steps.iter().all(|&s| s >= 1), "degrees must be >= 1");
        SteppedDegrees { steps }
    }

    /// The paper's setting: `{19, 23, 27, 39}` (mean 27).
    pub fn paper() -> Self {
        SteppedDegrees::new(vec![19, 23, 27, 39])
    }

    /// The steps.
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }
}

impl DegreeDistribution for SteppedDegrees {
    fn sample(&self, rng: &mut dyn RngCore) -> DegreeCaps {
        let idx = rng.gen_range(0..self.steps.len());
        DegreeCaps::symmetric(self.steps[idx])
    }

    fn mean_degree(&self) -> f64 {
        self.steps.iter().map(|&s| s as f64).sum::<f64>() / self.steps.len() as f64
    }

    fn name(&self) -> &str {
        "stepped"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn constant_always_27() {
        let d = ConstantDegrees::paper();
        let mut rng = SeedTree::new(1).rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), DegreeCaps::symmetric(27));
        }
        assert_eq!(d.mean_degree(), 27.0);
        assert_eq!(d.name(), "constant");
    }

    #[test]
    #[should_panic(expected = "at least one long-range link")]
    fn constant_zero_panics() {
        ConstantDegrees::new(0);
    }

    #[test]
    fn stepped_paper_mean_is_27() {
        let d = SteppedDegrees::paper();
        assert_eq!(d.mean_degree(), 27.0);
        assert_eq!(d.steps(), &[19, 23, 27, 39]);
    }

    #[test]
    fn stepped_samples_only_steps() {
        let d = SteppedDegrees::paper();
        let mut rng = SeedTree::new(2).rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let caps = d.sample(&mut rng);
            assert_eq!(caps.rho_in, caps.rho_out, "caps drawn jointly");
            assert!(d.steps().contains(&caps.rho_in));
            seen.insert(caps.rho_in);
        }
        assert_eq!(seen.len(), 4, "all four steps should appear");
    }

    #[test]
    fn stepped_empirical_mean_close() {
        let d = SteppedDegrees::paper();
        let mut rng = SeedTree::new(3).rng();
        let mean: f64 = (0..20_000)
            .map(|_| d.sample(&mut rng).rho_in as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 27.0).abs() < 0.3, "empirical mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_steps_panic() {
        SteppedDegrees::new(vec![]);
    }

    #[test]
    fn boxed_distribution_dispatches() {
        let d: Box<dyn DegreeDistribution> = Box::new(ConstantDegrees::paper());
        assert_eq!(d.mean_degree(), 27.0);
        let mut rng = SeedTree::new(4).rng();
        assert_eq!(d.sample(&mut rng).rho_out, 27);
    }
}
