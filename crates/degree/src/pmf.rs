//! Explicit discrete probability mass functions over node degrees.
//!
//! The "realistic" spiky distribution of Figure 1(a) is defined as a pmf;
//! this module provides the generic machinery: construction from weighted
//! support points, exact-mean calibration (the paper fixes the mean at 27
//! so the three experimental distributions are comparable), inverse-CDF
//! sampling, and pmf export for plotting.

use rand::{Rng, RngCore};

/// A discrete pmf over `u32` degrees with cached inverse-CDF table.
#[derive(Clone, Debug)]
pub struct DiscretePmf {
    /// Ascending, de-duplicated support.
    support: Vec<u32>,
    /// Probability of each support point (sums to 1).
    probs: Vec<f64>,
    /// Cumulative probabilities (last element exactly 1.0).
    cdf: Vec<f64>,
}

impl DiscretePmf {
    /// Builds a pmf from `(degree, weight)` pairs; weights are normalised,
    /// duplicate degrees are merged.
    ///
    /// # Panics
    /// If empty, any weight is negative, or all weights are zero.
    pub fn new(points: &[(u32, f64)]) -> Self {
        assert!(!points.is_empty(), "pmf needs support points");
        assert!(
            points.iter().all(|&(_, w)| w >= 0.0),
            "weights must be non-negative"
        );
        let mut merged: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for &(d, w) in points {
            *merged.entry(d).or_insert(0.0) += w;
        }
        merged.retain(|_, w| *w > 0.0);
        let total: f64 = merged.values().sum();
        assert!(total > 0.0, "total weight must be positive");
        let support: Vec<u32> = merged.keys().copied().collect();
        let probs: Vec<f64> = merged.values().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut cum = 0.0;
        for &p in &probs {
            cum += p;
            cdf.push(cum);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        DiscretePmf {
            support,
            probs,
            cdf,
        }
    }

    /// Exact mean of the pmf.
    pub fn mean(&self) -> f64 {
        self.support
            .iter()
            .zip(&self.probs)
            .map(|(&d, &p)| d as f64 * p)
            .sum()
    }

    /// The `(degree, probability)` pairs, ascending by degree.
    pub fn points(&self) -> Vec<(u32, f64)> {
        self.support
            .iter()
            .copied()
            .zip(self.probs.iter().copied())
            .collect()
    }

    /// Probability of an exact degree (0 if outside the support).
    pub fn prob(&self, degree: u32) -> f64 {
        match self.support.binary_search(&degree) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }

    /// Draws a degree by inverse-CDF.
    pub fn sample(&self, rng: &mut dyn RngCore) -> u32 {
        let u: f64 = rng.gen();
        let idx = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.support.len() - 1),
        };
        self.support[idx]
    }

    /// Exponentially tilts the pmf (`p'_d ∝ p_d · e^{θd}`) so the mean
    /// becomes exactly `target`, solving for `θ` by bisection.
    ///
    /// Tilting is the canonical shape-preserving way to adjust the mean of
    /// a discrete distribution: relative spike prominence survives, and any
    /// mean strictly inside `(min support, max support)` is reachable.
    ///
    /// Returns an error if `target` lies outside the open support range.
    pub fn calibrate_mean(mut self, target: f64) -> Result<Self, String> {
        let lo = *self.support.first().expect("non-empty") as f64;
        let hi = *self.support.last().expect("non-empty") as f64;
        if self.support.len() < 2 {
            return if (self.mean() - target).abs() < 1e-12 {
                Ok(self)
            } else {
                Err(format!("single-point pmf cannot reach mean {target}"))
            };
        }
        if target <= lo || target >= hi {
            return Err(format!(
                "cannot calibrate mean to {target}: outside open support range ({lo}, {hi})"
            ));
        }
        let tilted_mean = |theta: f64, support: &[u32], probs: &[f64]| -> f64 {
            // Subtract a reference degree inside exp() for numeric range.
            let d0 = support[0] as f64;
            let mut z = 0.0;
            let mut m = 0.0;
            for (&d, &p) in support.iter().zip(probs) {
                let w = p * ((d as f64 - d0) * theta).exp();
                z += w;
                m += w * d as f64;
            }
            m / z
        };
        // Bracket θ: mean(θ) is strictly increasing in θ.
        let (mut a, mut b) = (-1.0f64, 1.0f64);
        while tilted_mean(a, &self.support, &self.probs) > target {
            a *= 2.0;
            if a < -1e3 {
                return Err(format!("tilt bracket failed for target {target}"));
            }
        }
        while tilted_mean(b, &self.support, &self.probs) < target {
            b *= 2.0;
            if b > 1e3 {
                return Err(format!("tilt bracket failed for target {target}"));
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            if tilted_mean(mid, &self.support, &self.probs) < target {
                a = mid;
            } else {
                b = mid;
            }
        }
        let theta = 0.5 * (a + b);
        let d0 = self.support[0] as f64;
        let mut z = 0.0;
        for (&d, p) in self.support.iter().zip(self.probs.iter_mut()) {
            *p *= ((d as f64 - d0) * theta).exp();
            z += *p;
        }
        for p in self.probs.iter_mut() {
            *p /= z;
        }
        // Rebuild the CDF.
        let mut cum = 0.0;
        for (c, &p) in self.cdf.iter_mut().zip(&self.probs) {
            cum += p;
            *c = cum;
        }
        *self.cdf.last_mut().expect("non-empty") = 1.0;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn normalises_and_merges() {
        let pmf = DiscretePmf::new(&[(5, 2.0), (10, 1.0), (5, 1.0)]);
        assert_eq!(pmf.points(), vec![(5, 0.75), (10, 0.25)]);
        assert!((pmf.mean() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn prob_lookup() {
        let pmf = DiscretePmf::new(&[(3, 1.0), (7, 3.0)]);
        assert!((pmf.prob(3) - 0.25).abs() < 1e-12);
        assert!((pmf.prob(7) - 0.75).abs() < 1e-12);
        assert_eq!(pmf.prob(5), 0.0);
    }

    #[test]
    fn zero_weight_points_dropped() {
        let pmf = DiscretePmf::new(&[(1, 0.0), (2, 1.0)]);
        assert_eq!(pmf.points(), vec![(2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "needs support points")]
    fn empty_panics() {
        DiscretePmf::new(&[]);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn all_zero_weights_panic() {
        DiscretePmf::new(&[(1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn sampling_matches_pmf() {
        let pmf = DiscretePmf::new(&[(2, 0.5), (20, 0.5)]);
        let mut rng = SeedTree::new(1).rng();
        let n = 20_000;
        let hi = (0..n).filter(|_| pmf.sample(&mut rng) == 20).count();
        let frac = hi as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction at 20: {frac}");
    }

    #[test]
    fn calibrate_raises_mean_exactly() {
        let pmf = DiscretePmf::new(&[(10, 0.5), (20, 0.3), (40, 0.2)])
            .calibrate_mean(27.0)
            .expect("reachable");
        assert!((pmf.mean() - 27.0).abs() < 1e-9);
        // tilting keeps every support point alive and the pmf valid
        assert!(pmf.prob(20) > 0.0);
        let total: f64 = pmf.points().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibrate_lowers_mean_exactly() {
        let pmf = DiscretePmf::new(&[(10, 0.2), (50, 0.8)])
            .calibrate_mean(27.0)
            .expect("reachable");
        assert!((pmf.mean() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn calibrate_unreachable_errors() {
        let pmf = DiscretePmf::new(&[(10, 0.01), (12, 0.99)]);
        // target 100 is beyond the support maximum
        assert!(pmf.calibrate_mean(100.0).is_err());
    }

    #[test]
    fn calibrated_sampling_keeps_mean() {
        let pmf = DiscretePmf::new(&[(5, 0.3), (25, 0.4), (60, 0.3)])
            .calibrate_mean(27.0)
            .expect("reachable");
        let mut rng = SeedTree::new(2).rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| pmf.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 27.0).abs() < 0.3, "empirical mean {mean}");
    }
}
