//! The "realistic" synthetic spiky degree distribution (Figure 1(a)).
//!
//! Measurement studies of unstructured overlays (Stutzbach et al., IMC'05 —
//! the paper's reference \[12\]) show node-degree distributions that are
//! *not* smooth power laws: they carry sharp probability spikes at the
//! default neighbour-count settings of popular client builds, sitting on a
//! heavy-tailed bulk from user customisation and capacity differences.
//!
//! The ICDE paper uses a synthetic distribution of exactly this shape with
//! mean 27. We reconstruct it as:
//!
//! * **spikes** at typical client defaults (10, 16, 20, 27, 30, 32, 40, 50,
//!   64, 100), dominated by the modal default 27;
//! * a **power-law bulk** `p(d) ∝ d^-1.8` over `2..=150` modelling
//!   customised/constrained peers;
//! * exact-mean **calibration to 27.0** via [`DiscretePmf::calibrate_mean`]
//!   so the three experimental distributions are directly comparable.
//!
//! The pmf itself is exported ([`SpikyDegrees::pmf_points`]) — that is what
//! the `repro_fig1a` harness plots.

use crate::{DegreeCaps, DegreeDistribution, DiscretePmf};
use rand::RngCore;

/// Spike positions and weights: `(degree, weight)`.
///
/// Chosen to mimic default-configuration pile-ups with the mode at the
/// paper's mean of 27; the exact values are calibrated afterwards anyway.
const SPIKES: &[(u32, f64)] = &[
    (10, 0.05),
    (16, 0.07),
    (20, 0.10),
    (27, 0.24),
    (30, 0.12),
    (32, 0.10),
    (40, 0.06),
    (50, 0.05),
    (64, 0.04),
    (100, 0.02),
];

/// Total probability mass assigned to the spikes (the rest is bulk).
const SPIKE_MASS: f64 = 0.85;

/// Power-law exponent of the bulk.
const BULK_EXPONENT: f64 = 1.8;

/// Bulk support range.
const BULK_RANGE: std::ops::RangeInclusive<u32> = 2..=150;

/// The synthetic spiky ("realistic") degree distribution, mean exactly 27.
#[derive(Clone, Debug)]
pub struct SpikyDegrees {
    pmf: DiscretePmf,
}

impl SpikyDegrees {
    /// The paper's distribution: spiky, heavy-tailed, mean 27.
    pub fn paper() -> Self {
        Self::with_mean(27.0)
    }

    /// Same shape calibrated to a different mean (ablation support).
    pub fn with_mean(target_mean: f64) -> Self {
        let mut points: Vec<(u32, f64)> = Vec::new();
        // Bulk: power law, scaled to (1 - SPIKE_MASS) total mass.
        let bulk_norm: f64 = BULK_RANGE
            .clone()
            .map(|d| (d as f64).powf(-BULK_EXPONENT))
            .sum();
        for d in BULK_RANGE {
            let w = (1.0 - SPIKE_MASS) * (d as f64).powf(-BULK_EXPONENT) / bulk_norm;
            points.push((d, w));
        }
        // Spikes: sum of SPIKES weights is 0.85 by construction.
        let spike_total: f64 = SPIKES.iter().map(|&(_, w)| w).sum();
        for &(d, w) in SPIKES {
            points.push((d, SPIKE_MASS * w / spike_total));
        }
        let pmf = DiscretePmf::new(&points)
            .calibrate_mean(target_mean)
            .expect("spiky support spans the target mean");
        SpikyDegrees { pmf }
    }

    /// `(degree, probability)` pairs for plotting Figure 1(a).
    pub fn pmf_points(&self) -> Vec<(u32, f64)> {
        self.pmf.points()
    }

    /// Probability of an exact degree.
    pub fn prob(&self, degree: u32) -> f64 {
        self.pmf.prob(degree)
    }
}

impl DegreeDistribution for SpikyDegrees {
    fn sample(&self, rng: &mut dyn RngCore) -> DegreeCaps {
        DegreeCaps::symmetric(self.pmf.sample(rng).max(1))
    }

    fn mean_degree(&self) -> f64 {
        self.pmf.mean()
    }

    fn name(&self) -> &str {
        "realistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn mean_is_exactly_27() {
        let d = SpikyDegrees::paper();
        assert!((d.mean_degree() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn is_spiky_modal_at_27() {
        let d = SpikyDegrees::paper();
        // The spike at 27 dominates its smooth neighbours by an order of
        // magnitude — the defining feature of Figure 1(a).
        assert!(d.prob(27) > 10.0 * d.prob(26).max(d.prob(28)).max(1e-9));
        assert!(d.prob(27) > 0.1);
    }

    #[test]
    fn has_heavy_tail() {
        let d = SpikyDegrees::paper();
        // Bulk support reaches 150 with small but non-zero mass.
        assert!(d.prob(150) > 0.0);
        assert!(d.prob(150) < 1e-3);
    }

    #[test]
    fn spikes_all_present() {
        let d = SpikyDegrees::paper();
        for &(deg, _) in SPIKES {
            assert!(d.prob(deg) > 0.0, "spike at {deg} missing");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = SpikyDegrees::paper();
        let total: f64 = d.pmf_points().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_mean_matches() {
        let d = SpikyDegrees::paper();
        let mut rng = SeedTree::new(1).rng();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| d.sample(&mut rng).rho_in as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 27.0).abs() < 0.3, "empirical mean {mean}");
    }

    #[test]
    fn caps_are_symmetric_and_positive() {
        let d = SpikyDegrees::paper();
        let mut rng = SeedTree::new(2).rng();
        for _ in 0..1_000 {
            let caps = d.sample(&mut rng);
            assert_eq!(caps.rho_in, caps.rho_out);
            assert!(caps.rho_in >= 1);
        }
    }

    #[test]
    fn with_mean_supports_other_targets() {
        let d = SpikyDegrees::with_mean(35.0);
        assert!((d.mean_degree() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_span_two_orders_of_magnitude() {
        // Figure 1(a)'s x-axis runs 10^0..10^2.
        let d = SpikyDegrees::paper();
        let pts = d.pmf_points();
        let min = pts.first().unwrap().0;
        let max = pts.last().unwrap().0;
        assert!(min <= 2, "min degree {min}");
        assert!(max >= 100, "max degree {max}");
    }
}
