//! # oscar-chord — the Chord finger-table baseline
//!
//! Chord places long links ("fingers") at exponentially growing **key
//! space** distances: finger `i` of node `n` is the owner of
//! `n + 2^i`. That metric is blind to where peers actually are: under a
//! skewed identifier distribution most fingers land in deserts and
//! collapse onto the handful of peers owning them, so
//!
//! * the *effective* out-degree shrinks (duplicate fingers are useless),
//! * desert-owners absorb enormous in-degree (and, with budgets, refuse —
//!   losing fingers outright), and
//! * greedy routing loses its halving guarantee in *population* distance.
//!
//! This is exactly the failure Oscar's population-median partitions fix,
//! which makes Chord the clean "skew-oblivious" control for the
//! comparison benches. With uniform keys the two coincide in spirit and
//! Chord performs fine — the gap opens exactly when the key space skews.
//!
//! The implementation reuses the whole simulator substrate: fingers are
//! discovered by actual greedy routing (construction hops are counted)
//! and in-degree budgets are enforced by refusal like everywhere else.

pub mod builder;

pub use builder::{ChordBuilder, ChordConfig};

use oscar_sim::{FaultModel, Overlay};

/// The Chord overlay: the generic facade specialised to Chord's builder.
pub type ChordOverlay = Overlay<ChordBuilder>;

/// Creates a new (empty) Chord overlay.
///
/// ```
/// use oscar_chord::{new_overlay, ChordConfig};
/// use oscar_sim::FaultModel;
/// use oscar_keydist::{UniformKeys, QueryWorkload};
/// use oscar_degree::ConstantDegrees;
///
/// let mut overlay = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, 42);
/// overlay.grow_to(300, &UniformKeys, &ConstantDegrees::paper()).unwrap();
/// let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 200);
/// assert_eq!(stats.success_rate, 1.0);
/// ```
pub fn new_overlay(config: ChordConfig, fault_model: FaultModel, seed: u64) -> ChordOverlay {
    Overlay::new(ChordBuilder::new(config), fault_model, seed)
}
