//! Chord finger construction.

use oscar_sim::{
    route_to_owner, LinkError, MsgKind, Network, OverlayBuilder, PeerIdx, RoutePolicy,
};
use oscar_types::Result;
use rand::rngs::SmallRng;

/// Same bootstrap threshold as the other builders, for fair comparison.
const DIRECT_WIRING_THRESHOLD: usize = 8;

/// Chord construction parameters.
#[derive(Copy, Clone, Debug)]
pub struct ChordConfig {
    /// Number of finger targets probed, from the largest span (`2^63`)
    /// downwards. 64 probes covers every span of the 64-bit ring; the
    /// peer's `ρ_out_max` budget caps how many *distinct, accepting*
    /// owners actually become links.
    pub finger_probes: u32,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig { finger_probes: 64 }
    }
}

/// Chord's [`OverlayBuilder`]: deterministic fingers at `n + 2^i`.
#[derive(Clone, Debug)]
pub struct ChordBuilder {
    config: ChordConfig,
}

impl ChordBuilder {
    /// Builder with the given configuration.
    pub fn new(config: ChordConfig) -> Self {
        assert!(
            (1..=64).contains(&config.finger_probes),
            "finger_probes must be in 1..=64"
        );
        ChordBuilder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    fn wire_directly(&self, net: &mut Network, p: PeerIdx) {
        let targets: Vec<PeerIdx> = net.live_peers().filter(|&t| t != p).collect();
        for t in targets {
            if !net.peer(p).can_open_out() {
                break;
            }
            match net.try_link(p, t) {
                Ok(()) | Err(LinkError::TargetFull) | Err(LinkError::Duplicate) => {}
                Err(LinkError::SelfLink) | Err(LinkError::Dead) => {}
                Err(LinkError::SourceFull) => break,
            }
        }
    }
}

impl OverlayBuilder for ChordBuilder {
    fn name(&self) -> &str {
        "chord-fingers"
    }

    fn build_links(&self, net: &mut Network, p: PeerIdx, rng: &mut SmallRng) -> Result<()> {
        let _ = rng; // Chord's construction is deterministic
        if !net.is_alive(p) || net.live_count() <= 1 {
            return Ok(());
        }
        if net.live_count() <= DIRECT_WIRING_THRESHOLD {
            self.wire_directly(net, p);
            return Ok(());
        }
        let own = net.peer(p).id;
        let policy = RoutePolicy::default();
        // Largest spans first: when the budget runs out, the long fingers
        // (the valuable ones) are already in place.
        for i in (64 - self.config.finger_probes..64).rev() {
            if !net.peer(p).can_open_out() {
                break;
            }
            let target = own.add(1u64 << i);
            let outcome = route_to_owner(net, p, target, &policy);
            net.metrics
                .add(MsgKind::ConstructionHop, outcome.cost() as u64);
            let Some(owner) = outcome.dest else {
                continue;
            };
            match net.try_link(p, owner) {
                // Duplicate: the finger collapsed onto an owner we already
                // have — the skew signature. TargetFull: the owner refused
                // (no alternative exists for a deterministic finger).
                Ok(()) | Err(LinkError::Duplicate) | Err(LinkError::TargetFull) => {}
                Err(LinkError::SelfLink) | Err(LinkError::Dead) => {}
                Err(LinkError::SourceFull) => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_overlay;
    use oscar_degree::ConstantDegrees;
    use oscar_keydist::{GnutellaKeys, QueryWorkload, UniformKeys};
    use oscar_sim::FaultModel;

    #[test]
    fn builder_reports_name() {
        assert_eq!(
            ChordBuilder::new(ChordConfig::default()).name(),
            "chord-fingers"
        );
    }

    #[test]
    #[should_panic(expected = "finger_probes")]
    fn zero_probes_rejected() {
        let _ = ChordBuilder::new(ChordConfig { finger_probes: 0 });
    }

    #[test]
    fn chord_routes_well_on_uniform_keys() {
        // Home turf: uniform keys make key-space spans proportional to
        // population spans, so fingers work as designed.
        let mut ov = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, 1);
        ov.grow_to(500, &UniformKeys, &ConstantDegrees::paper())
            .unwrap();
        let stats = ov.run_queries(&QueryWorkload::UniformPeers, 500);
        assert_eq!(stats.success_rate, 1.0);
        assert!(
            stats.mean_cost < 8.0,
            "uniform-key chord cost {}",
            stats.mean_cost
        );
    }

    #[test]
    fn fingers_collapse_under_skew() {
        // The skew signature: far fewer distinct fingers than probes.
        let mut ov = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, 2);
        ov.grow_to(500, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        let net = ov.network();
        let mean_out: f64 = net
            .live_peers()
            .map(|p| net.peer(p).out_degree() as f64)
            .sum::<f64>()
            / net.live_count() as f64;
        // 64 probes, budget 27 — but collapses leave far fewer links.
        assert!(
            mean_out < 20.0,
            "skew should collapse fingers, mean out-degree {mean_out}"
        );
    }

    #[test]
    fn skew_degrades_chord_routing() {
        let cost = |keys: &dyn oscar_keydist::KeyDistribution, seed| {
            let mut ov = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, seed);
            ov.grow_to(600, keys, &ConstantDegrees::paper()).unwrap();
            let stats = ov.run_queries(&QueryWorkload::UniformPeers, 600);
            assert_eq!(stats.success_rate, 1.0, "ring still guarantees delivery");
            stats.mean_cost
        };
        let uniform = cost(&UniformKeys, 3);
        let skewed = cost(&GnutellaKeys::default(), 3);
        // At 600 peers the gap is ~1.4x and it widens with N (the full
        // comparison lives in the repro harness at 10k).
        assert!(
            skewed > uniform * 1.25,
            "skew should hurt chord clearly: uniform {uniform:.2} vs skewed {skewed:.2}"
        );
    }

    #[test]
    fn budgets_respected() {
        let mut ov = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, 4);
        ov.grow_to(300, &GnutellaKeys::default(), &ConstantDegrees::paper())
            .unwrap();
        for p in ov.network().all_peers() {
            let peer = ov.network().peer(p);
            assert!(peer.in_degree() <= peer.caps.rho_in);
            assert!(peer.out_degree() <= peer.caps.rho_out);
        }
    }

    #[test]
    fn deterministic_construction() {
        let run = || {
            let mut ov = new_overlay(ChordConfig::default(), FaultModel::StabilizedRing, 5);
            ov.grow_to(200, &GnutellaKeys::default(), &ConstantDegrees::paper())
                .unwrap();
            ov.run_queries(&QueryWorkload::UniformPeers, 200).mean_cost
        };
        assert_eq!(run(), run());
    }
}
