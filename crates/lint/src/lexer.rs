//! A lightweight Rust tokenizer — strings, comments, idents, punctuation.
//!
//! Deliberately **not** a parser: the lint rules only need to know which
//! identifiers appear where, with string literals and comments taken out
//! of play so `"SeedTree::new"` inside a message can never fire a rule.
//! Same hand-rolled philosophy as `oscar_bench::baseline`'s JSON reader —
//! the workspace builds offline with zero external dependencies.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`SeedTree`, `for`, `const`, …).
    Ident,
    /// A single punctuation character (`:`, `(`, `#`, …).
    Punct(char),
    /// String, raw-string, byte-string or char literal (content dropped).
    Literal,
    /// Numeric literal (text kept — label values are parsed from it).
    Num,
    /// A lifetime (`'a`); distinct from char literals.
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text for idents and numbers; empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True iff this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment, kept out of the token stream but retained for
/// `lint:allow` annotation parsing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its line
    /// (such a comment annotates the next code line, not its own).
    pub own_line: bool,
}

/// Lexer output: tokens plus the comment side-channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs are tolerated (the lexer is
/// a lint aid, not a compiler front-end): they consume to end of input.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_code = false;
    let mut out = Lexed::default();

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                    own_line: !line_has_code,
                });
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let cline = line;
                let own = !line_has_code;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1usize;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    if j + 1 < b.len() && b[j] == '/' && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < b.len() && b[j] == '*' && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: cline,
                    text: b[start..end].iter().collect(),
                    own_line: own,
                });
                i = j;
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.toks.push(tok_lit(line));
                line_has_code = true;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.toks.push(tok_lit(line));
                line_has_code = true;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let is_char = i + 1 < b.len()
                    && (b[i + 1] == '\\'
                        || (i + 2 < b.len() && b[i + 2] == '\'' && b[i + 1] != '\'')
                        || !(b[i + 1].is_alphanumeric() || b[i + 1] == '_'));
                if is_char {
                    i = skip_char_literal(&b, i);
                    out.toks.push(tok_lit(line));
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
                line_has_code = true;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
                line_has_code = true;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
                line_has_code = true;
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: String::new(),
                    line,
                });
                i += 1;
                line_has_code = true;
            }
        }
    }
    out
}

fn tok_lit(line: u32) -> Tok {
    Tok {
        kind: TokKind::Literal,
        text: String::new(),
        line,
    }
}

/// Skips a `"…"` string starting at `i`; returns the index past it.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// True iff `r"`, `r#`, `b"`, `br"`, `b'`, or `br#` starts at `i` —
/// i.e. the `r`/`b` opens a literal rather than an identifier.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // Not a literal prefix when glued to a preceding ident char (`for`,
    // `attr`): callers only reach here on ident-start boundaries, so a
    // lookahead on the next chars is sufficient.
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == '\'' {
            return true; // byte char b'x'
        }
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == '"'
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'` from `i`.
fn skip_raw_or_byte_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
        if i < b.len() && b[i] == '\'' {
            return skip_char_literal(b, i);
        }
    }
    let mut hashes = 0usize;
    if i < b.len() && b[i] == 'r' {
        i += 1;
        while i < b.len() && b[i] == '#' {
            hashes += 1;
            i += 1;
        }
    }
    if i < b.len() && b[i] == '"' {
        if hashes == 0 && b[i.saturating_sub(1)] != 'r' {
            // plain b"…": normal escape rules
            return skip_string(b, i, line);
        }
        i += 1;
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
            }
            if b[i] == '"' {
                let mut k = 0usize;
                while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
    }
    i
}

/// Skips `'x'` / `'\n'` / `b'x'`-tail starting at the `'`.
fn skip_char_literal(b: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    if i < b.len() && b[i] == '\\' {
        i += 2;
    } else {
        i += 1;
    }
    // hex/unicode escapes are longer; scan to the closing quote.
    while i < b.len() && b[i] != '\'' {
        i += 1;
    }
    i + 1
}

/// Spans of `#[cfg(test)]` items and `#[test]` functions, as inclusive
/// line ranges. Rules skip findings inside these: test harnesses are
/// exactly where ad-hoc seeding and unwraps are fine.
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attr_at(toks, i) {
            let start_line = toks[i].line;
            // Skip this attribute and any stacked ones.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            // The annotated item runs to the matching `}` of its first
            // top-level `{`, or to a `;` if none opens first.
            let mut depth = 0i32;
            let mut end_line = start_line;
            while j < toks.len() {
                let t = &toks[j];
                end_line = t.line;
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// True iff `#[cfg(test)]` or `#[test]` starts at token `i`.
fn is_test_attr_at(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_punct('#') || i + 1 >= toks.len() || !toks[i + 1].is_punct('[') {
        return false;
    }
    if toks.len() > i + 3 && toks[i + 2].is_ident("test") && toks[i + 3].is_punct(']') {
        return true;
    }
    toks.len() > i + 6
        && toks[i + 2].is_ident("cfg")
        && toks[i + 3].is_punct('(')
        && toks[i + 4].is_ident("test")
        && toks[i + 5].is_punct(')')
        && toks[i + 6].is_punct(']')
}

/// Returns the index past the `#[…]` attribute starting at `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            // SeedTree::new in a comment
            /* HashMap::iter in a block */
            let s = "SeedTree::new(7)";
            let r = r#"Instant::now"#;
            let real = SeedTree::new(7);
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "SeedTree").count(), 1);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn comments_are_captured_with_ownership() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(!lx.comments[0].own_line);
        assert!(lx.comments[1].own_line);
        assert_eq!(lx.comments[1].text.trim(), "own line");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lx = lex("a\nb\n\nc");
        let lines: Vec<u32> = lx.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_regions_span_the_module() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x = 1; }
}
fn prod2() {}
";
        let lx = lex(src);
        let regions = test_regions(&lx.toks);
        assert_eq!(regions[0], (2, 6));
    }

    #[test]
    fn test_fn_region_is_bounded() {
        let src = "\
#[test]
fn t() {
    body();
}
fn prod() {}
";
        let lx = lex(src);
        let regions = test_regions(&lx.toks);
        assert_eq!(regions[0], (1, 4));
    }

    #[test]
    fn numbers_keep_their_text() {
        let lx = lex("const LBL_X: u64 = 0xDE5;");
        let num = lx.toks.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert_eq!(num.text, "0xDE5");
    }
}
