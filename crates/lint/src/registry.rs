//! The seed-label registry: parse, check, regenerate.
//!
//! `crates/types/src/labels.rs` is the single home of every `LBL_*`
//! seed-derivation label in the workspace, grouped into **derivation
//! scopes** (one module per deriving file). Within a scope, label
//! values address children of one `SeedTree` node, so a duplicated
//! value silently correlates two "independent" random streams — the
//! exact bug class the registry exists to make structurally impossible.
//! Across scopes, equal values are fine: the parent seeds differ.
//!
//! The file is generated: `oscar-lint --write-registry` collects any
//! stray `const LBL_*` declarations left in the workspace, merges them
//! into the registry under their file's scope, and rewrites the file
//! canonically (scopes sorted by name, labels by value, literals kept
//! as written).

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{Finding, REGISTRY_PATH};

/// One label: name, parsed value, and the literal as written.
#[derive(Clone, Debug)]
pub struct Label {
    /// Constant name (`LBL_REWIRE`).
    pub name: String,
    /// Parsed numeric value.
    pub value: u64,
    /// Source literal (`0xDE5`, `11`), preserved on rewrite.
    pub literal: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One derivation scope (a `pub mod` in the registry).
#[derive(Clone, Debug)]
pub struct Scope {
    /// Module name (`sim_overlay`, `protocol_machine`, …).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<Label>,
    /// 1-based line of the `mod` item.
    pub line: u32,
}

/// The parsed registry.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Scopes in source order.
    pub scopes: Vec<Scope>,
}

/// Parses the registry source. Structural surprises (a label outside a
/// scope, an unparsable value) come back as findings, not panics.
pub fn parse_registry(src: &str) -> (Registry, Vec<Finding>) {
    let toks = lex(src).toks;
    let mut reg = Registry::default();
    let mut findings = Vec::new();
    let mut i = 0usize;
    let mut current: Option<Scope> = None;
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if let Some(s) = current.take() {
                    reg.scopes.push(s);
                }
            }
        } else if t.is_ident("mod") && depth == 0 {
            if let Some(name) = toks.get(i + 1) {
                current = Some(Scope {
                    name: name.text.clone(),
                    labels: Vec::new(),
                    line: t.line,
                });
                i += 2;
                continue;
            }
        } else if t.is_ident("const") {
            let name = toks.get(i + 1);
            let val = find_value(&toks, i);
            match (name, val, current.as_mut()) {
                (Some(n), Some((value, literal)), Some(scope)) => {
                    scope.labels.push(Label {
                        name: n.text.clone(),
                        value,
                        literal,
                        line: t.line,
                    });
                }
                (Some(n), _, None) => findings.push(reg_finding(
                    t.line,
                    format!("label `{}` declared outside any scope module", n.text),
                )),
                (Some(n), None, Some(_)) => findings.push(reg_finding(
                    t.line,
                    format!("label `{}` has no parsable integer value", n.text),
                )),
                _ => findings.push(reg_finding(t.line, "malformed const item".to_string())),
            }
        }
        i += 1;
    }
    (reg, findings)
}

/// The `= <int literal>` of a const starting at token `i`.
fn find_value(toks: &[Tok], i: usize) -> Option<(u64, String)> {
    let mut j = i;
    while j < toks.len() && !toks[j].is_punct(';') {
        if toks[j].is_punct('=') && j + 1 < toks.len() && toks[j + 1].kind == TokKind::Num {
            let lit = toks[j + 1].text.clone();
            return parse_int(&lit).map(|v| (v, lit));
        }
        j += 1;
    }
    None
}

/// Parses `42`, `0xDE5`, `0b101`, with `_` separators and type suffixes.
pub fn parse_int(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    let s = s
        .strip_suffix("u64")
        .or_else(|| s.strip_suffix("u32"))
        .unwrap_or(&s);
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        s.parse().ok()
    }
}

fn reg_finding(line: u32, message: String) -> Finding {
    Finding {
        rule: "label-registry",
        file: REGISTRY_PATH.to_string(),
        line,
        snippet: String::new(),
        message,
    }
}

/// Registry self-consistency: no duplicate value and no duplicate name
/// within one derivation scope, no duplicate scope names.
pub fn check_registry(src: &str) -> Vec<Finding> {
    let (reg, mut findings) = parse_registry(src);
    let mut scope_names: Vec<&str> = Vec::new();
    for scope in &reg.scopes {
        if scope_names.contains(&scope.name.as_str()) {
            findings.push(reg_finding(
                scope.line,
                format!("duplicate derivation scope `{}`", scope.name),
            ));
        }
        scope_names.push(&scope.name);
        for (k, a) in scope.labels.iter().enumerate() {
            for b in &scope.labels[k + 1..] {
                if a.value == b.value {
                    findings.push(reg_finding(
                        b.line,
                        format!(
                            "scope `{}`: labels `{}` and `{}` share value {} — their derived \
                             streams would be identical",
                            scope.name, a.name, b.name, a.value
                        ),
                    ));
                }
                if a.name == b.name {
                    findings.push(reg_finding(
                        b.line,
                        format!("scope `{}`: label `{}` declared twice", scope.name, a.name),
                    ));
                }
            }
        }
    }
    findings
}

/// Renders the canonical registry source for `reg` (stray labels already
/// merged by the caller). Deterministic: scopes sorted by name, labels
/// by value; literals preserved.
pub fn render_registry(reg: &Registry) -> String {
    let mut scopes = reg.scopes.clone();
    scopes.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    out.push_str(
        "//! GENERATED — the workspace seed-label registry.\n\
         //!\n\
         //! Regenerate with `cargo run -p oscar-lint -- --write-registry`; the\n\
         //! lint gate (`oscar-lint`) rejects `const LBL_*` declarations anywhere\n\
         //! else and duplicate values within a scope. One module = one\n\
         //! **derivation scope** (the labels address children of a single\n\
         //! `SeedTree` node, so equal values within a module would correlate\n\
         //! streams; across modules the parents differ and reuse is harmless).\n\
         //!\n\
         //! Values are part of the reproduction contract: changing one changes\n\
         //! every committed seeded artifact downstream of its stream.\n",
    );
    for scope in &scopes {
        let mut labels = scope.labels.clone();
        labels.sort_by_key(|l| l.value);
        out.push_str(&format!(
            "\n/// Seed-tree labels of derivation scope `{}`.\npub mod {} {{\n",
            scope.name, scope.name
        ));
        for l in &labels {
            out.push_str(&format!(
                "    /// Label `{}` (= {}).\n    pub const {}: u64 = {};\n",
                l.name, l.value, l.name, l.literal
            ));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
//! docs
pub mod alpha {
    /// one
    pub const LBL_A: u64 = 1;
    pub const LBL_B: u64 = 0x2;
}
pub mod beta {
    pub const LBL_A: u64 = 1;
}
";

    #[test]
    fn parses_scopes_and_values() {
        let (reg, errs) = parse_registry(GOOD);
        assert!(errs.is_empty());
        assert_eq!(reg.scopes.len(), 2);
        assert_eq!(reg.scopes[0].name, "alpha");
        assert_eq!(reg.scopes[0].labels[1].value, 2);
        assert_eq!(reg.scopes[0].labels[1].literal, "0x2");
    }

    #[test]
    fn cross_scope_value_reuse_is_fine() {
        assert!(check_registry(GOOD).is_empty());
    }

    #[test]
    fn duplicate_value_in_scope_is_an_error() {
        let bad = "pub mod s { pub const LBL_A: u64 = 7; pub const LBL_B: u64 = 0x7; }";
        let errs = check_registry(bad);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("share value 7"));
    }

    #[test]
    fn duplicate_name_in_scope_is_an_error() {
        let bad = "pub mod s { pub const LBL_A: u64 = 1; pub const LBL_A: u64 = 2; }";
        let errs = check_registry(bad);
        assert!(errs.iter().any(|f| f.message.contains("declared twice")));
    }

    #[test]
    fn label_outside_scope_is_an_error() {
        let bad = "pub const LBL_LOOSE: u64 = 3;";
        let (_, errs) = parse_registry(bad);
        assert!(errs[0].message.contains("outside any scope"));
    }

    #[test]
    fn render_is_canonical_and_reparsable() {
        let (reg, _) = parse_registry(GOOD);
        let rendered = render_registry(&reg);
        let (reg2, errs) = parse_registry(&rendered);
        assert!(errs.is_empty());
        assert_eq!(reg2.scopes.len(), 2);
        // Idempotent: rendering the reparse reproduces the bytes.
        assert_eq!(render_registry(&reg2), rendered);
    }

    #[test]
    fn int_literals_parse() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("0xDE5"), Some(0xDE5));
        assert_eq!(parse_int("1_000"), Some(1000));
        assert_eq!(parse_int("0x4E_45"), Some(0x4E45));
        assert_eq!(parse_int("7u64"), Some(7));
        assert_eq!(parse_int("abc"), None);
    }
}
