//! CLI front-end: `oscar-lint [--root DIR] [--json] [--write-registry]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/environment error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-registry" => write_registry = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "oscar-lint [--root DIR] [--json] [--write-registry]\n\n\
                     Walks the workspace and enforces the determinism rule set\n\
                     (rng-discipline, label-registry, iter-order, wall-clock,\n\
                     panic-policy). --write-registry regenerates\n\
                     crates/types/src/labels.rs from stray const LBL_* decls."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("oscar-lint: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root.or_else(|| oscar_lint::workspace::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "oscar-lint: no workspace Cargo.toml above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };
    if write_registry {
        match oscar_lint::write_registry(&root) {
            Ok(n) => eprintln!("oscar-lint: registry rewritten, {n} label(s) migrated in"),
            Err(e) => {
                eprintln!("oscar-lint: cannot write registry: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let findings = oscar_lint::run_workspace(&root);
    if json {
        print!("{}", oscar_lint::render_json(&findings));
    } else {
        print!("{}", oscar_lint::render_table(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("oscar-lint: {msg} (see --help)");
    ExitCode::from(2)
}
