//! The project rule set.
//!
//! Five rules guard the workspace's core invariant — every seeded
//! artifact is byte-identical across thread counts, drivers and
//! refactors — plus one meta-rule for the annotation syntax itself:
//!
//! * **rng-discipline** — `SeedTree::new(` (ad-hoc seeding) is forbidden
//!   in library code outside the harness crates; in `oscar-protocol`,
//!   draws from the driver-supplied RNG are forbidden too (protocol
//!   randomness must flow through token streams).
//! * **label-registry** — `const LBL_*` declarations must live in the
//!   generated registry `crates/types/src/labels.rs`; the registry
//!   itself must not repeat a value within one derivation scope.
//! * **iter-order** — `HashMap`/`HashSet` iteration in the deterministic
//!   crates (`oscar-protocol`, `oscar-sim`, `oscar-store`) is
//!   non-deterministic and forbidden.
//! * **wall-clock** — `Instant::now`/`SystemTime::now` are forbidden
//!   outside `oscar-runtime` stats and bench timing.
//! * **panic-policy** — `unwrap`/`expect`/`panic!` in `oscar-protocol`
//!   library paths are forbidden: state machines must surface faults as
//!   events, not kill a worker thread.
//!
//! Any finding can be waived in place with a `// lint:allow` comment —
//! arguments `rule-name, reason` — on the offending line or alone on
//! the line above; the reason string is mandatory (**allow-syntax**
//! errors otherwise), and an allow that suppresses nothing is stale and
//! reported too.

use crate::lexer::{lex, test_regions, Comment, Tok, TokKind};
use std::cell::Cell;
use std::fmt;

/// Crates whose library code must stay deterministic (iter-order scope).
pub const DETERMINISTIC_CRATES: &[&str] = &["oscar-protocol", "oscar-sim", "oscar-store"];

/// Harness crates exempt from rng-discipline (experiment drivers own
/// their root seeds) and wall-clock (they time things by design).
pub const HARNESS_CRATES: &[&str] = &["oscar-bench", "oscar-lint"];

/// Crates allowed to read the wall clock in library code.
pub const WALL_CLOCK_CRATES: &[&str] = &["oscar-runtime", "oscar-bench", "oscar-lint"];

/// Repo-relative path of the generated seed-label registry.
pub const REGISTRY_PATH: &str = "crates/types/src/labels.rs";

/// All rule names, for allow-annotation validation.
pub const RULE_NAMES: &[&str] = &[
    "rng-discipline",
    "label-registry",
    "iter-order",
    "wall-clock",
    "panic-policy",
];

/// What kind of source file this is, by path convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Crate library code — the full rule set applies.
    Lib,
    /// `src/bin/` entry point: owns a root seed, may time itself.
    Bin,
    /// `tests/` integration harness.
    TestHarness,
    /// `benches/` bench.
    Bench,
    /// `examples/` demo.
    Example,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Package name (`oscar-sim`, …; `oscar` for the root facade).
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Path-convention class.
    pub kind: FileKind,
}

/// One rule violation (or annotation error).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (`rng-discipline`, …, or `allow-syntax`).
    pub rule: &'static str,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `lint:allow` annotation and the lines it covers.
struct Allow {
    rule: String,
    has_reason: bool,
    /// Lines this allow waives (its own line, plus the next code line
    /// when the comment stands alone).
    covers: Vec<u32>,
    line: u32,
    used: Cell<bool>,
}

/// Everything the rules need about one file.
struct FileScan<'a> {
    ctx: &'a FileCtx,
    lines: Vec<&'a str>,
    toks: Vec<Tok>,
    regions: Vec<(u32, u32)>,
    allows: Vec<Allow>,
}

impl FileScan<'_> {
    fn in_test_region(&self, line: u32) -> bool {
        self.regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True (and marks the allow used) iff `rule` is waived on `line`.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        for a in &self.allows {
            if a.rule == rule && a.has_reason && a.covers.contains(&line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        if self.allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            file: self.ctx.rel_path.clone(),
            line,
            snippet: self.snippet(line),
            message,
        });
    }
}

/// Lints one file's source against every in-scope rule.
pub fn lint_file(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let regions = test_regions(&lexed.toks);
    let scan = FileScan {
        ctx,
        lines: src.lines().collect(),
        toks: lexed.toks,
        regions,
        allows: collect_allows(&lexed.comments, src),
    };
    let mut out = Vec::new();
    allow_syntax(&scan, &mut out);
    rng_discipline(&scan, &mut out);
    label_registry(&scan, &mut out);
    iter_order(&scan, &mut out);
    wall_clock(&scan, &mut out);
    panic_policy(&scan, &mut out);
    stale_allows(&scan, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Parses `lint:allow` annotations — `rule, reason` — out of the comments.
fn collect_allows(comments: &[Comment], src: &str) -> Vec<Allow> {
    let code_lines: Vec<u32> = {
        // Lines carrying any non-comment code, for own-line targeting.
        let lexed = lex(src);
        let mut ls: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        ls.dedup();
        ls
    };
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let body = &c.text[pos + "lint:allow(".len()..];
        let end = body.rfind(')').unwrap_or(body.len());
        let inner = &body[..end];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), !why.trim().is_empty()),
            None => (inner.trim().to_string(), false),
        };
        let mut covers = vec![c.line];
        if c.own_line {
            if let Some(&next) = code_lines.iter().find(|&&l| l > c.line) {
                covers.push(next);
            }
        }
        out.push(Allow {
            rule,
            has_reason: reason,
            covers,
            line: c.line,
            used: Cell::new(false),
        });
    }
    out
}

/// allow-syntax: malformed annotations are themselves findings.
fn allow_syntax(scan: &FileScan, out: &mut Vec<Finding>) {
    for a in &scan.allows {
        if scan.in_test_region(a.line) {
            continue;
        }
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Finding {
                rule: "allow-syntax",
                file: scan.ctx.rel_path.clone(),
                line: a.line,
                snippet: scan.snippet(a.line),
                message: format!(
                    "unknown rule `{}` in lint:allow (rules: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !a.has_reason {
            out.push(Finding {
                rule: "allow-syntax",
                file: scan.ctx.rel_path.clone(),
                line: a.line,
                snippet: scan.snippet(a.line),
                message: format!(
                    "lint:allow({}) needs a reason: lint:allow({}, why this is sound)",
                    a.rule, a.rule
                ),
            });
        }
    }
}

/// Reports allows that waived nothing (stale after a refactor).
fn stale_allows(scan: &FileScan, out: &mut Vec<Finding>) {
    for a in &scan.allows {
        if scan.in_test_region(a.line) || !RULE_NAMES.contains(&a.rule.as_str()) || !a.has_reason {
            continue;
        }
        if !a.used.get() {
            out.push(Finding {
                rule: "allow-syntax",
                file: scan.ctx.rel_path.clone(),
                line: a.line,
                snippet: scan.snippet(a.line),
                message: format!("stale lint:allow({}): it suppresses nothing", a.rule),
            });
        }
    }
}

/// rng-discipline (see module docs).
fn rng_discipline(scan: &FileScan, out: &mut Vec<Finding>) {
    if scan.ctx.kind != FileKind::Lib || HARNESS_CRATES.contains(&scan.ctx.crate_name.as_str()) {
        return;
    }
    let toks = &scan.toks;
    for i in 0..toks.len() {
        if scan.in_test_region(toks[i].line) {
            continue;
        }
        if toks[i].is_ident("SeedTree")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
        {
            scan.push(
                out,
                "rng-discipline",
                toks[i].line,
                "SeedTree::new outside an allowlisted entry point: derive from the caller's \
                 seed tree instead of rooting a new one"
                    .to_string(),
            );
        }
        // Protocol-crate randomness must be token-carried: calls on the
        // driver-supplied RngCore are flagged.
        if scan.ctx.crate_name == "oscar-protocol"
            && toks[i].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && matches!(
                toks[i + 1].text.as_str(),
                "gen" | "gen_range" | "gen_bool" | "next_u32" | "next_u64" | "fill_bytes"
            )
        {
            scan.push(
                out,
                "rng-discipline",
                toks[i + 1].line,
                format!(
                    "driver-RNG draw `.{}` in protocol code: deterministic decisions must \
                     draw from the token-carried TokenRng",
                    toks[i + 1].text
                ),
            );
        }
    }
}

/// label-registry stray-declaration half; the registry's own
/// self-consistency is checked by [`crate::registry::check_registry`].
fn label_registry(scan: &FileScan, out: &mut Vec<Finding>) {
    if scan.ctx.rel_path == REGISTRY_PATH {
        return;
    }
    if matches!(scan.ctx.kind, FileKind::TestHarness | FileKind::Example) {
        return;
    }
    let toks = &scan.toks;
    for i in 0..toks.len().saturating_sub(1) {
        if scan.in_test_region(toks[i].line) {
            continue;
        }
        if toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 1].text.starts_with("LBL_")
        {
            scan.push(
                out,
                "label-registry",
                toks[i].line,
                format!(
                    "seed label `{}` declared outside the registry: add it to {} \
                     (oscar-lint --write-registry) and import it",
                    toks[i + 1].text,
                    REGISTRY_PATH
                ),
            );
        }
    }
}

/// iter-order (see module docs).
fn iter_order(scan: &FileScan, out: &mut Vec<Finding>) {
    if scan.ctx.kind != FileKind::Lib
        || !DETERMINISTIC_CRATES.contains(&scan.ctx.crate_name.as_str())
    {
        return;
    }
    let toks = &scan.toks;
    // Pass 1: names bound to hash containers — `name: HashMap<…>` fields
    // and params, `name = HashMap::new()` / `with_capacity` bindings.
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix, then over
        // wrapper generics (`Mutex<HashMap<…>`) and reference sigils so
        // `actors: RwLock<HashMap<…>>` still binds `actors`.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            j -= 3; // `ident ::` before the current path segment
        }
        loop {
            if j >= 2 && toks[j - 1].is_punct('<') && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            } else if j >= 1 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
            // `name : [path::]HashMap`
            hash_names.push(toks[j - 2].text.clone());
        } else if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
            // `name = [path::]HashMap::new()`
            hash_names.push(toks[j - 2].text.clone());
        }
    }
    hash_names.sort();
    hash_names.dedup();
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
    ];
    // Pass 2: iteration over those names.
    for i in 0..toks.len() {
        if scan.in_test_region(toks[i].line) {
            continue;
        }
        if toks[i].kind != TokKind::Ident || !hash_names.contains(&toks[i].text) {
            continue;
        }
        let name = &toks[i].text;
        // `name.iter()` family.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
        {
            scan.push(
                out,
                "iter-order",
                toks[i].line,
                format!(
                    "iteration over hash container `{name}.{}()`: order is nondeterministic — \
                     use BTreeMap/BTreeSet or collect-and-sort",
                    toks[i + 2].text
                ),
            );
        }
        // `for pat in [&][mut] name {` — direct hash iteration.
        let mut k = i;
        while k > 0 && (toks[k - 1].is_punct('&') || toks[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k > 0 && toks[k - 1].is_ident("in") && i + 1 < toks.len() && toks[i + 1].is_punct('{') {
            scan.push(
                out,
                "iter-order",
                toks[i].line,
                format!(
                    "for-loop over hash container `{name}`: order is nondeterministic — \
                     use BTreeMap/BTreeSet or collect-and-sort"
                ),
            );
        }
    }
}

/// wall-clock (see module docs).
fn wall_clock(scan: &FileScan, out: &mut Vec<Finding>) {
    if scan.ctx.kind != FileKind::Lib || WALL_CLOCK_CRATES.contains(&scan.ctx.crate_name.as_str()) {
        return;
    }
    let toks = &scan.toks;
    for i in 0..toks.len().saturating_sub(3) {
        if scan.in_test_region(toks[i].line) {
            continue;
        }
        if (toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime"))
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("now")
        {
            scan.push(
                out,
                "wall-clock",
                toks[i].line,
                format!(
                    "{}::now in deterministic code: wall-clock reads belong in oscar-runtime \
                     stats or bench timing; simulations advance VirtualTime",
                    toks[i].text
                ),
            );
        }
    }
}

/// panic-policy (see module docs).
fn panic_policy(scan: &FileScan, out: &mut Vec<Finding>) {
    if scan.ctx.crate_name != "oscar-protocol" || scan.ctx.kind != FileKind::Lib {
        return;
    }
    let toks = &scan.toks;
    for i in 0..toks.len() {
        if scan.in_test_region(toks[i].line) {
            continue;
        }
        if toks[i].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && matches!(
                toks[i + 1].text.as_str(),
                "unwrap" | "unwrap_err" | "expect" | "expect_err"
            )
        {
            scan.push(
                out,
                "panic-policy",
                toks[i + 1].line,
                format!(
                    "`.{}` in a protocol path: a poisoned machine kills its worker thread — \
                     recover and emit ProtocolEvent::Fault instead",
                    toks[i + 1].text
                ),
            );
        }
        if toks[i].kind == TokKind::Ident
            && matches!(
                toks[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
        {
            scan.push(
                out,
                "panic-policy",
                toks[i].line,
                format!(
                    "`{}!` in a protocol path: state machines must return errors or emit \
                     ProtocolEvent::Fault, not panic",
                    toks[i].text
                ),
            );
        }
    }
}
