//! Workspace walking: find the repo root, enumerate lintable `.rs`
//! files, and classify each into a [`FileCtx`].
//!
//! The layout is fixed by convention, not read from Cargo metadata:
//! `crates/<dir>/{src,tests,benches}` plus the root facade's
//! `src`/`tests`/`examples`. `vendor/` (dependency stubs), `target/`,
//! and the lint fixture corpus are never linted.

use crate::rules::{FileCtx, FileKind};
use std::fs;
use std::path::{Path, PathBuf};

/// Finds the workspace root: the nearest ancestor of `start` holding a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable files under `root`, each with its scoping context,
/// sorted by path so output and JSON are stable.
pub fn workspace_files(root: &Path) -> Vec<(FileCtx, PathBuf)> {
    let mut out = Vec::new();
    // Crate members.
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let dir_name = match dir.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            let crate_name = format!("oscar-{dir_name}");
            collect_tree(root, &dir.join("src"), &crate_name, &mut out);
            collect_tree(root, &dir.join("tests"), &crate_name, &mut out);
            collect_tree(root, &dir.join("benches"), &crate_name, &mut out);
        }
    }
    // Root facade package.
    collect_tree(root, &root.join("src"), "oscar", &mut out);
    collect_tree(root, &root.join("tests"), "oscar", &mut out);
    collect_tree(root, &root.join("examples"), "oscar", &mut out);
    out.sort_by(|a, b| a.0.rel_path.cmp(&b.0.rel_path));
    out
}

/// Recursively collects `.rs` files under `base` (a src/tests/benches
/// dir) into `out`, skipping the fixture corpus.
fn collect_tree(root: &Path, base: &Path, crate_name: &str, out: &mut Vec<(FileCtx, PathBuf)>) {
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                let rel = rel_path(root, &path);
                if rel.contains("/fixtures/") {
                    continue;
                }
                let ctx = FileCtx {
                    crate_name: crate_name.to_string(),
                    rel_path: rel.clone(),
                    kind: classify(&rel),
                };
                out.push((ctx, path));
            }
        }
    }
}

/// Repo-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Path-convention classification (see [`FileKind`]).
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/src/bin/") {
        FileKind::Bin
    } else if rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::TestHarness
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/sim/src/overlay.rs"), FileKind::Lib);
        assert_eq!(
            classify("crates/bench/src/bin/repro_fig1a.rs"),
            FileKind::Bin
        );
        assert_eq!(
            classify("crates/runtime/tests/shutdown_stress.rs"),
            FileKind::TestHarness
        );
        assert_eq!(classify("tests/determinism.rs"), FileKind::TestHarness);
        assert_eq!(classify("crates/bench/benches/figures.rs"), FileKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        let files = workspace_files(&root);
        let rels: Vec<&str> = files.iter().map(|(c, _)| c.rel_path.as_str()).collect();
        assert!(rels.contains(&"crates/sim/src/overlay.rs"));
        assert!(rels.contains(&"crates/lint/src/lexer.rs"));
        // Fixtures and vendor stubs are never linted.
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")));
        assert!(rels.iter().all(|r| !r.starts_with("vendor/")));
        // Sorted for stable output.
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }
}
