//! `oscar-lint` — the workspace determinism & concurrency gate.
//!
//! Companion to the hand-rolled `bench_check` regression gate: where
//! that one guards committed *artifacts*, this one guards the *source*
//! invariants those artifacts depend on. Zero external dependencies; a
//! lightweight tokenizer ([`lexer`]) feeds a small rule set ([`rules`]),
//! a registry checker ([`registry`]) and a workspace walker
//! ([`workspace`]). The binary front-end lives in `src/main.rs` and is
//! wired into CI next to clippy.

pub mod lexer;
pub mod registry;
pub mod rules;
pub mod workspace;

use registry::{parse_int, Label, Registry, Scope};
use rules::{FileCtx, FileKind, Finding, REGISTRY_PATH};
use std::fs;
use std::path::Path;

/// Lints the whole workspace under `root`. Findings are sorted by
/// (file, line, rule); an unreadable file is itself a finding.
pub fn run_workspace(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for (ctx, path) in workspace::workspace_files(root) {
        match fs::read_to_string(&path) {
            Ok(src) => out.extend(rules::lint_file(&ctx, &src)),
            Err(e) => out.push(Finding {
                rule: "allow-syntax",
                file: ctx.rel_path.clone(),
                line: 0,
                snippet: String::new(),
                message: format!("unreadable file: {e}"),
            }),
        }
    }
    match fs::read_to_string(root.join(REGISTRY_PATH)) {
        Ok(src) => out.extend(registry::check_registry(&src)),
        Err(e) => out.push(Finding {
            rule: "label-registry",
            file: REGISTRY_PATH.to_string(),
            line: 0,
            snippet: String::new(),
            message: format!("missing seed-label registry: {e}"),
        }),
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .partial_cmp(&(&b.file, b.line, b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Human-readable findings table (aligned `file:line  rule  message`).
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "oscar-lint: clean (0 findings)\n".to_string();
    }
    let locs: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}", f.file, f.line))
        .collect();
    let loc_w = locs.iter().map(|l| l.len()).max().unwrap_or(0);
    let rule_w = findings.iter().map(|f| f.rule.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (f, loc) in findings.iter().zip(&locs) {
        out.push_str(&format!(
            "{loc:<loc_w$}  {:<rule_w$}  {}\n",
            f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("{:loc_w$}  {:rule_w$}  | {}\n", "", "", f.snippet));
        }
    }
    out.push_str(&format!(
        "\noscar-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Machine-readable findings, one JSON object with a `findings` array.
/// Hand-rolled like `oscar_bench`'s baseline writer — no serde.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.snippet),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Regenerates the seed-label registry: parses the existing one (if
/// any), merges in stray `const LBL_*` declarations found in library
/// and binary code, and rewrites `crates/types/src/labels.rs`
/// canonically. Returns the number of labels migrated in.
pub fn write_registry(root: &Path) -> std::io::Result<usize> {
    let reg_path = root.join(REGISTRY_PATH);
    let mut reg = match fs::read_to_string(&reg_path) {
        Ok(src) => registry::parse_registry(&src).0,
        Err(_) => Registry::default(),
    };
    let mut migrated = 0usize;
    for (ctx, path) in workspace::workspace_files(root) {
        if ctx.rel_path == REGISTRY_PATH
            || matches!(ctx.kind, FileKind::TestHarness | FileKind::Example)
        {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        for label in stray_labels(&src) {
            let scope_name = scope_for(&ctx);
            let scope = match reg.scopes.iter_mut().find(|s| s.name == scope_name) {
                Some(s) => s,
                None => {
                    reg.scopes.push(Scope {
                        name: scope_name.clone(),
                        labels: Vec::new(),
                        line: 0,
                    });
                    reg.scopes.last_mut().expect("just pushed")
                }
            };
            if !scope.labels.iter().any(|l| l.name == label.name) {
                scope.labels.push(label);
                migrated += 1;
            }
        }
    }
    fs::write(&reg_path, registry::render_registry(&reg))?;
    Ok(migrated)
}

/// Non-test `const LBL_* = <int>;` declarations in one file.
fn stray_labels(src: &str) -> Vec<Label> {
    let lexed = lexer::lex(src);
    let regions = lexer::test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if regions
            .iter()
            .any(|&(a, b)| toks[i].line >= a && toks[i].line <= b)
        {
            continue;
        }
        if !toks[i].is_ident("const") || !toks[i + 1].text.starts_with("LBL_") {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct(';') && !toks[j].is_punct('=') {
            j += 1;
        }
        if j + 1 < toks.len() && toks[j].is_punct('=') {
            let lit = toks[j + 1].text.clone();
            if let Some(value) = parse_int(&lit) {
                out.push(Label {
                    name: toks[i + 1].text.clone(),
                    value,
                    literal: lit,
                    line: toks[i].line,
                });
            }
        }
    }
    out
}

/// Mechanical derivation-scope name for a file:
/// `crates/sim/src/overlay.rs` → `sim_overlay`,
/// `crates/bench/src/bin/repro_saturation.rs` → `bench_repro_saturation`,
/// `src/lib.rs` → `oscar`.
pub fn scope_for(ctx: &FileCtx) -> String {
    let rel = ctx
        .rel_path
        .strip_prefix("crates/")
        .unwrap_or(&ctx.rel_path);
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let parts: Vec<&str> = rel
        .split('/')
        .filter(|p| !matches!(*p, "src" | "bin" | "benches"))
        .collect();
    match parts.as_slice() {
        [] | ["lib"] => "oscar".to_string(),
        [krate, "lib"] => krate.to_string(),
        other => other.join("_"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_names_are_mechanical() {
        let ctx = |rel: &str, kind| FileCtx {
            crate_name: "x".into(),
            rel_path: rel.into(),
            kind,
        };
        assert_eq!(
            scope_for(&ctx("crates/sim/src/overlay.rs", FileKind::Lib)),
            "sim_overlay"
        );
        assert_eq!(
            scope_for(&ctx("crates/runtime/src/lib.rs", FileKind::Lib)),
            "runtime"
        );
        assert_eq!(
            scope_for(&ctx(
                "crates/bench/src/bin/repro_saturation.rs",
                FileKind::Bin
            )),
            "bench_repro_saturation"
        );
        assert_eq!(scope_for(&ctx("src/lib.rs", FileKind::Lib)), "oscar");
    }

    #[test]
    fn stray_label_extraction_skips_tests() {
        let src = "const LBL_A: u64 = 0x2A;\n#[cfg(test)]\nmod t { const LBL_B: u64 = 3; }\n";
        let labels = stray_labels(src);
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].name, "LBL_A");
        assert_eq!(labels[0].value, 0x2A);
        assert_eq!(labels[0].literal, "0x2A");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let f = Finding {
            rule: "iter-order",
            file: "f.rs".into(),
            line: 3,
            snippet: "for k in map.keys() {".into(),
            message: "m".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"rule\": \"iter-order\""));
    }

    #[test]
    fn table_is_aligned_and_counts() {
        let f = |file: &str, line, rule: &'static str| Finding {
            rule,
            file: file.into(),
            line,
            snippet: "x".into(),
            message: "msg".into(),
        };
        let t = render_table(&[
            f("a.rs", 1, "iter-order"),
            f("longer/path.rs", 22, "wall-clock"),
        ]);
        assert!(t.contains("2 findings"));
        assert!(render_table(&[]).contains("clean"));
    }
}
