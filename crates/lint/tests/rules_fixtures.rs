//! Fixture corpus: every rule has a positive (bad) and negative (good)
//! fixture, plus annotation-syntax cases, and the real workspace must
//! lint clean.

use oscar_lint::registry::check_registry;
use oscar_lint::rules::{lint_file, FileCtx, FileKind, Finding};
use oscar_lint::workspace::find_root;
use std::path::Path;

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn lint_fixture(name: &str, crate_name: &str) -> Vec<Finding> {
    let ctx = FileCtx {
        crate_name: crate_name.to_string(),
        rel_path: format!("crates/x/src/{name}"),
        kind: FileKind::Lib,
    };
    lint_file(&ctx, &fixture(name))
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn rng_discipline_fixtures() {
    let bad = lint_fixture("rng_discipline_bad.rs", "oscar-protocol");
    assert!(
        rules_of(&bad).contains(&"rng-discipline"),
        "bad fixture must trip rng-discipline: {bad:?}"
    );
    // Both halves: the ad-hoc root and the driver draw.
    assert_eq!(
        rules_of(&bad)
            .iter()
            .filter(|r| **r == "rng-discipline")
            .count(),
        2
    );
    let good = lint_fixture("rng_discipline_good.rs", "oscar-protocol");
    assert!(good.is_empty(), "good fixture must be clean: {good:?}");
}

#[test]
fn rng_repair_path_fixtures() {
    // The repair path is the easiest place to smuggle in driver-order
    // dependence: a crash fires a walk, and the tempting bug is to pick
    // its target from whatever RNG the delivery handed you. The bad
    // fixture does exactly that (one driver draw, one ad-hoc root);
    // the good one carries the walk's entropy in the peer's own tree.
    let bad = lint_fixture("rng_repair_bad.rs", "oscar-protocol");
    assert_eq!(
        rules_of(&bad)
            .iter()
            .filter(|r| **r == "rng-discipline")
            .count(),
        2,
        "repair-path bad fixture must trip both halves: {bad:?}"
    );
    let good = lint_fixture("rng_repair_good.rs", "oscar-protocol");
    assert!(
        good.is_empty(),
        "token-carried repair walk is clean: {good:?}"
    );
}

#[test]
fn label_registry_fixtures() {
    let bad = lint_fixture("label_registry_bad.rs", "oscar-sim");
    assert_eq!(rules_of(&bad), vec!["label-registry"]);
    let good = lint_fixture("label_registry_good.rs", "oscar-sim");
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn iter_order_fixtures() {
    let bad = lint_fixture("iter_order_bad.rs", "oscar-sim");
    let rules = rules_of(&bad);
    assert!(rules.iter().all(|r| *r == "iter-order"), "{bad:?}");
    // The for-loop over the map, the for-loop over the set, and `.keys()`.
    assert!(rules.len() >= 3, "{bad:?}");
    let good = lint_fixture("iter_order_good.rs", "oscar-sim");
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn iter_order_is_scoped_to_deterministic_crates() {
    // The same bad source is fine in a crate whose iteration order is
    // not observable in artifacts.
    let elsewhere = lint_fixture("iter_order_bad.rs", "oscar-analytics");
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn wall_clock_fixtures() {
    let bad = lint_fixture("wall_clock_bad.rs", "oscar-sim");
    assert_eq!(rules_of(&bad), vec!["wall-clock", "wall-clock"]);
    let good = lint_fixture("wall_clock_good.rs", "oscar-sim");
    assert!(good.is_empty(), "{good:?}");
    // oscar-runtime owns its stats clock.
    let runtime = lint_fixture("wall_clock_bad.rs", "oscar-runtime");
    assert!(runtime.is_empty(), "{runtime:?}");
}

#[test]
fn panic_policy_fixtures() {
    let bad = lint_fixture("panic_policy_bad.rs", "oscar-protocol");
    assert_eq!(rules_of(&bad), vec!["panic-policy"; 3]);
    let good = lint_fixture("panic_policy_good.rs", "oscar-protocol");
    assert!(good.is_empty(), "{good:?}");
    // The policy is protocol-only: a driver crate may unwrap.
    let sim = lint_fixture("panic_policy_bad.rs", "oscar-sim");
    assert!(sim.is_empty(), "{sim:?}");
}

#[test]
fn allow_without_reason_fails() {
    let findings = lint_fixture("allow_missing_reason.rs", "oscar-sim");
    let rules = rules_of(&findings);
    // The annotation itself errors AND the violation it failed to waive
    // still stands.
    assert!(rules.contains(&"allow-syntax"), "{findings:?}");
    assert!(rules.contains(&"iter-order"), "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("needs a reason")));
}

#[test]
fn stale_allow_is_reported() {
    let findings = lint_fixture("allow_stale.rs", "oscar-sim");
    assert_eq!(rules_of(&findings), vec!["allow-syntax"]);
    assert!(findings[0].message.contains("stale"), "{findings:?}");
}

#[test]
fn registry_duplicate_value_fixture() {
    let findings = check_registry(&fixture("registry_dup_value.rs"));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("share value 5"));
}

/// The gate itself: the real workspace lints clean, so CI can fail on
/// any finding.
#[test]
fn workspace_is_clean() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let findings = oscar_lint::run_workspace(&root);
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        oscar_lint::render_table(&findings)
    );
}
