//! BAD: the allow annotation has no reason string.
use std::collections::HashMap;

pub struct Table {
    routes: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        // lint:allow(iter-order)
        self.routes.values().sum()
    }
}
