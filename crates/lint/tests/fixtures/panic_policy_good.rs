//! GOOD: impossible states degrade into fault events, not panics.
pub enum Event {
    Fault { context: &'static str },
}

pub fn handle(slot: Option<u64>, events: &mut Vec<Event>) -> u64 {
    let Some(v) = slot else {
        events.push(Event::Fault {
            context: "slot vanished",
        });
        return 0;
    };
    v
}
