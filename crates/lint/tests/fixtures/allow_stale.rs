//! BAD: a reasoned allow that suppresses nothing (stale after refactor).
use std::collections::BTreeMap;

pub struct Table {
    routes: BTreeMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        // lint:allow(iter-order, BTreeMap iterates in key order)
        self.routes.values().sum()
    }
}
