//! BAD: roots a fresh SeedTree in library code and draws from the
//! driver RNG inside protocol logic.
use oscar_types::SeedTree;

pub fn ad_hoc_stream(seed: u64) -> u64 {
    let tree = SeedTree::new(seed);
    tree.child(1).seed()
}

pub fn driver_draw(rng: &mut dyn rand::RngCore) -> u64 {
    rng.next_u64()
}
