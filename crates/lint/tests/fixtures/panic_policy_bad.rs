//! BAD: protocol paths that can kill a worker thread.
pub fn handle(slot: Option<u64>, table: &[u64]) -> u64 {
    let v = slot.unwrap();
    let w = table.first().expect("non-empty table");
    if v > *w {
        panic!("inconsistent state");
    }
    v
}
