//! GOOD: ordered containers iterate deterministically; lookup-only hash
//! maps are fine; one justified hash walk carries an allow.
use std::collections::{BTreeMap, HashMap};

pub struct Table {
    routes: BTreeMap<u64, u64>,
    cache: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        self.routes.values().sum()
    }

    pub fn hit(&self, k: u64) -> Option<u64> {
        self.cache.get(&k).copied()
    }

    pub fn cache_load(&self) -> usize {
        // lint:allow(iter-order, count is order-independent — no artifact consumes the walk order)
        self.cache.iter().count()
    }
}
