//! GOOD: derives from a caller-supplied tree; the one sanctioned root
//! carries a reasoned allow.
use oscar_types::SeedTree;

pub fn derived_stream(tree: &SeedTree) -> u64 {
    tree.child(7).seed()
}

pub fn deployment_root(seed: u64) -> SeedTree {
    // lint:allow(rng-discipline, this fixture models the canonical deployment entry point)
    SeedTree::new(seed)
}
