//! GOOD: simulations advance virtual time; the clock type itself is
//! mentioned only in a string and in tests.
pub fn tick(now_virtual: u64) -> u64 {
    let label = "Instant::now is banned here";
    now_virtual + label.len() as u64
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
