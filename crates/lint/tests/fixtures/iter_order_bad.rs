//! BAD: iterates hash containers in a deterministic crate.
use std::collections::{HashMap, HashSet};

pub struct Table {
    routes: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        let mut acc = 0;
        for (_, v) in self.routes.iter() {
            acc += v;
        }
        acc
    }

    pub fn first_key(&self) -> Option<u64> {
        let seen: HashSet<u64> = HashSet::new();
        for k in &seen {
            return Some(*k);
        }
        self.routes.keys().next().copied()
    }
}
