//! GOOD: the repair walk's randomness is token-carried — seeded from
//! the peer's own seed tree and a monotonic walk id, so the same crash
//! repairs identically regardless of which driver delivers the
//! messages or in what order.
use oscar_types::SeedTree;

pub struct RepairCtx {
    pub walk_counter: u64,
}

pub fn fire_repair(tree: &SeedTree, ctx: &mut RepairCtx) -> u64 {
    // (peer seed, walk id) is the whole entropy budget of a repair
    // walk: deterministic, driver-independent, and collision-free
    // because the counter never repeats.
    ctx.walk_counter += 1;
    tree.child2(9, ctx.walk_counter).seed()
}
