//! BAD: a repair handler that decides where the repair walk goes by
//! drawing from the driver-supplied RNG — the walk outcome would then
//! depend on delivery order, and the same crash would repair
//! differently on the DES and the threaded runtime. A second sin roots
//! a fresh SeedTree for the walk instead of deriving from the peer's
//! own stream.
use oscar_types::SeedTree;

pub struct RepairCtx {
    pub peer_seed: u64,
    pub walks: u32,
}

pub fn fire_repair(ctx: &RepairCtx, neighbors: &[u64], rng: &mut dyn rand::RngCore) -> u64 {
    // Order-dependent: which neighbor seeds the walk now varies with
    // the delivery schedule that handed us this RNG.
    let pick = (rng.next_u64() as usize) % neighbors.len();
    let tree = SeedTree::new(ctx.peer_seed ^ neighbors[pick]);
    tree.child(u64::from(ctx.walks)).seed()
}
