//! BAD registry: two labels in one derivation scope share a value.
pub mod demo_scope {
    pub const LBL_ONE: u64 = 5;
    pub const LBL_TWO: u64 = 0x5;
}
