//! GOOD: labels come from the registry; test-only labels are exempt.
use oscar_types::labels::sim_overlay::LBL_GROW;

pub fn stream(tree: &oscar_types::SeedTree) -> u64 {
    tree.child(LBL_GROW).seed()
}

#[cfg(test)]
mod tests {
    const LBL_SCRATCH: u64 = 1;

    #[test]
    fn scratch() {
        assert_eq!(LBL_SCRATCH, 1);
    }
}
