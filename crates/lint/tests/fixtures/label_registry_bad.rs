//! BAD: declares a seed label outside the generated registry.
const LBL_ROGUE: u64 = 99;

pub fn stream(tree: &oscar_types::SeedTree) -> u64 {
    tree.child(LBL_ROGUE).seed()
}
