//! Binary contract: exit 0 on a clean workspace, 1 on findings, and
//! `--json` emits the findings artifact CI uploads.
//!
//! Each case materialises a miniature workspace under
//! `CARGO_TARGET_TMPDIR`, drops one fixture into a crate whose name
//! puts it in scope, and runs the real `oscar-lint` binary against it.

use std::path::{Path, PathBuf};
use std::process::Command;

const CLEAN_REGISTRY: &str = "pub mod demo {\n    pub const LBL_DEMO: u64 = 1;\n}\n";

/// Builds `tmp/<name>` as `[workspace]` + `crates/<krate>/src/lib.rs`
/// holding `fixture`, plus a valid seed-label registry.
fn mini_workspace(name: &str, krate: &str, fixture: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&root);
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(root.join(format!("crates/{krate}/src"))).unwrap();
    std::fs::create_dir_all(root.join("crates/types/src")).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    std::fs::write(root.join("crates/types/src/labels.rs"), CLEAN_REGISTRY).unwrap();
    std::fs::copy(
        src.join(fixture),
        root.join(format!("crates/{krate}/src/lib.rs")),
    )
    .unwrap();
    root
}

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_oscar-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn oscar-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn clean_workspace_exits_zero() {
    let root = mini_workspace("lint_clean", "sim", "iter_order_good.rs");
    let (code, out) = run_lint(&root, &[]);
    assert_eq!(code, 0, "stdout:\n{out}");
    assert!(out.contains("clean"));
}

#[test]
fn each_bad_fixture_exits_nonzero() {
    // (fixture, crate dir that puts the rule in scope, expected rule)
    let cases = [
        ("rng_discipline_bad.rs", "protocol", "rng-discipline"),
        ("label_registry_bad.rs", "sim", "label-registry"),
        ("iter_order_bad.rs", "sim", "iter-order"),
        ("wall_clock_bad.rs", "sim", "wall-clock"),
        ("panic_policy_bad.rs", "protocol", "panic-policy"),
        ("allow_missing_reason.rs", "sim", "allow-syntax"),
        ("allow_stale.rs", "sim", "allow-syntax"),
    ];
    for (fixture, krate, rule) in cases {
        let name = format!("lint_{}", fixture.trim_end_matches(".rs"));
        let root = mini_workspace(&name, krate, fixture);
        let (code, out) = run_lint(&root, &[]);
        assert_eq!(code, 1, "{fixture} must fail the gate; stdout:\n{out}");
        assert!(out.contains(rule), "{fixture} must report {rule}:\n{out}");
    }
}

#[test]
fn json_output_is_machine_readable() {
    let root = mini_workspace("lint_json", "sim", "iter_order_bad.rs");
    let (code, out) = run_lint(&root, &["--json"]);
    assert_eq!(code, 1);
    assert!(out.trim_start().starts_with('{'), "JSON object:\n{out}");
    assert!(out.contains("\"rule\": \"iter-order\""));
    assert!(out.contains("\"findings\""));
    assert!(out.contains("\"count\""));
}

#[test]
fn missing_registry_is_a_finding() {
    let root = mini_workspace("lint_no_registry", "sim", "iter_order_good.rs");
    std::fs::remove_file(root.join("crates/types/src/labels.rs")).unwrap();
    let (code, out) = run_lint(&root, &[]);
    assert_eq!(code, 1, "stdout:\n{out}");
    assert!(out.contains("missing seed-label registry"), "{out}");
}

#[test]
fn write_registry_adopts_stray_labels_and_cleans_the_gate() {
    let root = mini_workspace("lint_adopt", "sim", "label_registry_bad.rs");
    let (code, _) = run_lint(&root, &[]);
    assert_eq!(code, 1, "stray label must fail first");
    let (code, out) = run_lint(&root, &["--write-registry"]);
    assert_eq!(code, 1, "stray decl still present after adoption:\n{out}");
    let registry = std::fs::read_to_string(root.join("crates/types/src/labels.rs")).unwrap();
    assert!(registry.contains("LBL_ROGUE"), "{registry}");
    assert!(registry.contains("mod sim "), "{registry}");
}
