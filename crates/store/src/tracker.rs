//! Incremental per-peer storage-load maintenance.
//!
//! [`ItemStore::load_per_peer`] recomputes the full item placement from
//! scratch — O(items + peers) — which is the right tool for a one-shot
//! snapshot but wasteful inside a churn loop where each membership event
//! moves exactly one arc of the ring. [`LoadTracker`] keeps the per-peer
//! loads live across joins and leaves by touching only the affected arc:
//!
//! * **join** — the newcomer takes over the clockwise slice
//!   `(predecessor, newcomer]` of its successor's arc; two binary searches
//!   over the sorted item keys count the slice, the successor's load drops
//!   by that much, nothing else changes;
//! * **leave** — the leaver's whole load folds into its successor.
//!
//! Both updates are O(log items + peers) (the `peers` term is the sorted
//! insert/remove memmove) instead of a full placement merge, and the
//! property tests in this module pin the tracker against the full
//! recompute over arbitrary join/leave interleavings.

use crate::items::{ItemStore, LoadBalance};
use oscar_sim::Network;
use oscar_types::Id;

/// Live per-peer storage loads, maintained incrementally under churn.
///
/// The tracker mirrors the membership the caller drives through
/// [`on_join`](LoadTracker::on_join) / [`on_leave`](LoadTracker::on_leave);
/// ownership follows the same rule as the store (owner = first live peer
/// at-or-after the key, wrapping), so at every step the tracked loads
/// equal what [`ItemStore::load_per_peer`] would recompute.
///
/// Feeding it an event the membership cannot have produced (a duplicate
/// join, a leave of an untracked peer) is a caller bug and panics.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    /// Sorted item keys — a snapshot of the corpus (items are immutable
    /// for the lifetime of a storage experiment).
    items: Vec<Id>,
    /// Sorted live peer identifiers.
    peers: Vec<Id>,
    /// `loads[i]` = items owned by `peers[i]`; same order as `peers`.
    loads: Vec<usize>,
}

impl LoadTracker {
    /// Tracker over `store`'s corpus with no live peers yet.
    pub fn new(store: &ItemStore) -> Self {
        LoadTracker {
            items: store.keys().to_vec(),
            peers: Vec::new(),
            loads: Vec::new(),
        }
    }

    /// Tracker seeded from the live ring of an existing network — each
    /// peer's load is counted with the two-binary-search arc rule, not a
    /// full placement pass.
    pub fn of_network(store: &ItemStore, net: &Network) -> Self {
        let mut tracker = Self::new(store);
        let peers: Vec<Id> = net.ring_live().ids().collect();
        tracker.loads = (0..peers.len())
            .map(|i| {
                let pred = peers[if i == 0 { peers.len() - 1 } else { i - 1 }];
                tracker.count_in(pred, peers[i])
            })
            .collect();
        tracker.peers = peers;
        tracker
    }

    /// Items in the clockwise arc `(pred, peer]` — the slice `peer` owns.
    /// `pred == peer` means a sole live peer, which owns the full ring.
    fn count_in(&self, pred: Id, peer: Id) -> usize {
        let le = |x: Id| self.items.partition_point(|&k| k <= x);
        if pred == peer {
            self.items.len()
        } else if pred < peer {
            le(peer) - le(pred)
        } else {
            // wrapping arc: (pred, MAX] ∪ [0, peer]
            self.items.len() - le(pred) + le(peer)
        }
    }

    /// A peer joined at `id`: it takes the slice `(predecessor, id]` out
    /// of its successor's arc. Panics on a duplicate identifier.
    pub fn on_join(&mut self, id: Id) {
        let pos = self.peers.partition_point(|&p| p < id);
        assert!(
            pos == self.peers.len() || self.peers[pos] != id,
            "duplicate join of {id:?}"
        );
        if self.peers.is_empty() {
            self.peers.push(id);
            self.loads.push(self.items.len());
            return;
        }
        let pred = if pos == 0 {
            *self.peers.last().expect("non-empty")
        } else {
            self.peers[pos - 1]
        };
        let taken = self.count_in(pred, id);
        // Successor before insertion: the peer at `pos` (wrapping to 0).
        self.loads[pos % self.peers.len()] -= taken;
        self.peers.insert(pos, id);
        self.loads.insert(pos, taken);
    }

    /// The peer at `id` left: its load folds into its ring successor.
    /// Panics if `id` is not currently tracked.
    pub fn on_leave(&mut self, id: Id) {
        let pos = self.peers.partition_point(|&p| p < id);
        assert!(
            pos < self.peers.len() && self.peers[pos] == id,
            "leave of untracked peer {id:?}"
        );
        self.peers.remove(pos);
        let freed = self.loads.remove(pos);
        if self.peers.is_empty() {
            return;
        }
        let succ = if pos == self.peers.len() { 0 } else { pos };
        self.loads[succ] += freed;
    }

    /// Current load of the peer at `id`, or `None` if it is not tracked.
    pub fn load_of(&self, id: Id) -> Option<usize> {
        let pos = self.peers.partition_point(|&p| p < id);
        (pos < self.peers.len() && self.peers[pos] == id).then(|| self.loads[pos])
    }

    /// `(peer id, load)` pairs in ascending id order.
    pub fn loads(&self) -> impl Iterator<Item = (Id, usize)> + '_ {
        self.peers.iter().copied().zip(self.loads.iter().copied())
    }

    /// Number of tracked peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Sum of all tracked loads (equals the corpus size whenever at least
    /// one peer is live — an invariant the tests lean on).
    pub fn total(&self) -> usize {
        self.loads.iter().sum()
    }

    /// Balance statistics over the tracked loads; bit-identical to
    /// [`ItemStore::balance`] on the same membership.
    pub fn balance(&self) -> LoadBalance {
        LoadBalance::from_loads(self.loads.clone(), self.items.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_sim::FaultModel;
    use oscar_types::{mix64, SeedTree};
    use proptest::prelude::*;

    fn oracle(store: &ItemStore, net: &Network) -> Vec<(Id, usize)> {
        store
            .load_per_peer(net)
            .into_iter()
            .map(|(p, l)| (net.peer(p).id, l))
            .collect()
    }

    #[test]
    fn join_and_leave_move_only_the_affected_arc() {
        let store = ItemStore::from_keys(vec![
            Id::new(150),
            Id::new(200),
            Id::new(250),
            Id::new(999),
            Id::new(50),
        ]);
        let mut t = LoadTracker::new(&store);
        t.on_join(Id::new(100)); // sole peer owns everything
        assert_eq!(t.load_of(Id::new(100)), Some(5));
        t.on_join(Id::new(200)); // takes (100, 200]: keys 150, 200
        assert_eq!(t.load_of(Id::new(200)), Some(2));
        assert_eq!(t.load_of(Id::new(100)), Some(3));
        t.on_join(Id::new(300)); // takes (200, 300]: key 250
        assert_eq!(t.load_of(Id::new(300)), Some(1));
        assert_eq!(t.load_of(Id::new(100)), Some(2)); // wrap owner: 999, 50
        t.on_leave(Id::new(100)); // folds into successor 200
        assert_eq!(t.load_of(Id::new(200)), Some(4));
        t.on_leave(Id::new(300)); // wraps around into 200
        assert_eq!(t.load_of(Id::new(200)), Some(5));
        t.on_leave(Id::new(200));
        assert_eq!(t.peer_count(), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn exact_key_hits_stay_with_their_peer() {
        // An item at exactly a peer's id belongs to that peer, so a join
        // *at* an item key takes it over.
        let store = ItemStore::from_keys(vec![Id::new(500)]);
        let mut t = LoadTracker::new(&store);
        t.on_join(Id::new(900));
        assert_eq!(t.load_of(Id::new(900)), Some(1));
        t.on_join(Id::new(500));
        assert_eq!(t.load_of(Id::new(500)), Some(1));
        assert_eq!(t.load_of(Id::new(900)), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate join")]
    fn duplicate_joins_are_caller_bugs() {
        let mut t = LoadTracker::new(&ItemStore::from_keys(vec![]));
        t.on_join(Id::new(7));
        t.on_join(Id::new(7));
    }

    #[test]
    #[should_panic(expected = "untracked peer")]
    fn leaving_an_untracked_peer_is_a_caller_bug() {
        let mut t = LoadTracker::new(&ItemStore::from_keys(vec![]));
        t.on_join(Id::new(7));
        t.on_leave(Id::new(8));
    }

    proptest! {
        /// The headline property: after every single membership event the
        /// tracker equals the full placement recompute — ids drawn via
        /// `mix64` so wrap-around arcs are routinely exercised.
        #[test]
        fn tracker_matches_full_recompute_under_churn(
            keys in prop::collection::vec(any::<u64>(), 0..80),
            ops in prop::collection::vec((any::<u64>(), 0u8..4), 1..60),
        ) {
            let store = ItemStore::from_keys(keys.into_iter().map(Id::new).collect());
            let mut net = Network::new(FaultModel::StabilizedRing);
            let mut tracker = LoadTracker::new(&store);
            let mut live: Vec<Id> = Vec::new();
            for (salt, kind) in ops {
                if kind == 0 && !live.is_empty() {
                    let idx = (mix64(salt) as usize) % live.len();
                    let id = live.swap_remove(idx);
                    net.kill(net.idx_of(id).unwrap()).unwrap();
                    tracker.on_leave(id);
                } else {
                    let id = Id::new(mix64(salt));
                    if net.idx_of(id).is_some() {
                        continue; // id already used (possibly by a dead peer)
                    }
                    net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
                    live.push(id);
                    tracker.on_join(id);
                }
                let got: Vec<(Id, usize)> = tracker.loads().collect();
                prop_assert_eq!(&got, &oracle(&store, &net));
                let expect_total = if live.is_empty() { 0 } else { store.len() };
                prop_assert_eq!(tracker.total(), expect_total);
            }
        }

        /// Seeding from an existing live ring matches the recompute, and
        /// the shared-stats path makes the balances bit-identical.
        #[test]
        fn network_seeding_and_balance_match_the_store(
            keys in prop::collection::vec(any::<u64>(), 0..60),
            ids in prop::collection::vec(any::<u64>(), 1..40),
        ) {
            let store = ItemStore::from_keys(keys.into_iter().map(Id::new).collect());
            let mut net = Network::new(FaultModel::StabilizedRing);
            for salt in ids {
                let id = Id::new(mix64(salt));
                if net.idx_of(id).is_none() {
                    net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
                }
            }
            let tracker = LoadTracker::of_network(&store, &net);
            let got: Vec<(Id, usize)> = tracker.loads().collect();
            prop_assert_eq!(&got, &oracle(&store, &net));
            prop_assert_eq!(tracker.balance(), store.balance(&net));
        }
    }

    #[test]
    fn tracked_churn_matches_on_a_generated_corpus() {
        // A denser, deterministic end-to-end pass: grow to 64 peers over a
        // 5000-item clustered corpus, then shrink back down to one.
        use oscar_keydist::ClusteredKeys;
        let mut rng = SeedTree::new(41).rng();
        let store = ItemStore::generate(&ClusteredKeys::new(4, 1e-3, 1.0, 3), 5_000, &mut rng);
        let mut net = Network::new(FaultModel::StabilizedRing);
        let mut tracker = LoadTracker::new(&store);
        let mut live = Vec::new();
        for i in 0..64u64 {
            let id = Id::new(mix64(i) | 1);
            net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
            tracker.on_join(id);
            live.push(id);
        }
        assert_eq!(tracker.loads().collect::<Vec<_>>(), oracle(&store, &net));
        while live.len() > 1 {
            let id = live.swap_remove(live.len() / 2);
            net.kill(net.idx_of(id).unwrap()).unwrap();
            tracker.on_leave(id);
            assert_eq!(tracker.loads().collect::<Vec<_>>(), oracle(&store, &net));
        }
        assert_eq!(
            tracker.total(),
            store.len(),
            "sole survivor owns the corpus"
        );
    }
}
