//! # oscar-store — data items and storage-aware identifier choice
//!
//! The paper's introduction claims more than routing: "peers are free to
//! choose the key-space to be responsible for based on their storage
//! capacity and bandwidth constraint". This crate exercises that claim:
//!
//! * [`ItemStore`] — a corpus of data items (keys) placed at their ring
//!   owners, with per-peer load accounting and balance statistics;
//! * [`LoadTracker`] — the same per-peer loads maintained incrementally
//!   under churn: each join/leave touches only the affected arc instead
//!   of recomputing the full placement;
//! * [`JoinPolicy`] — how a joining peer picks its identifier:
//!   * `UniformId` — ignore the data (what a hash-based DHT does):
//!     under skewed items a few peers drown in data;
//!   * `FromData` — sample the identifier from the *data* distribution
//!     (the paper's implicit default: peer density tracks data density);
//!   * `StorageAware` — probe a few peers, find the most overloaded
//!     *relative to its capacity*, and join so as to split its load —
//!     the explicit capacity-aware choice the paper describes.
//!
//! The storage-balance experiment (tests + `examples/storage_balance.rs`)
//! shows the ordering the paper predicts: UniformId ≪ FromData ≲
//! StorageAware on balance, with StorageAware additionally respecting
//! heterogeneous capacities.

pub mod items;
pub mod policy;
pub mod tracker;

pub use items::{ItemStore, LoadBalance};
pub use policy::{choose_join_id, JoinPolicy};
pub use tracker::LoadTracker;
