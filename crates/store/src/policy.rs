//! Identifier-choice policies for joining peers.
//!
//! Where a peer places itself on the ring decides what key range — and
//! therefore how much data — it is responsible for. The paper's position
//! is that this is a *local, capacity-aware decision*; this module
//! provides the three policies the storage experiment compares.

use crate::items::ItemStore;
use oscar_sim::Network;
use oscar_types::Id;
use rand::rngs::SmallRng;
use rand::Rng;

/// How a joining peer chooses its identifier.
#[derive(Clone, Debug)]
pub enum JoinPolicy {
    /// Uniformly random identifier (hash-DHT style; data-oblivious).
    UniformId,
    /// Sample the identifier from the data distribution itself — peer
    /// density tracks data density (the data-oriented default).
    FromData,
    /// Probe `probes` random live peers, pick the one with the highest
    /// load *relative to its remaining capacity*, and join at the median
    /// of its stored items, taking over half of its load. The explicit
    /// capacity-aware choice of the paper's introduction.
    StorageAware {
        /// How many candidate peers to probe (the sampling budget).
        probes: usize,
    },
}

impl JoinPolicy {
    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            JoinPolicy::UniformId => "uniform-id",
            JoinPolicy::FromData => "from-data",
            JoinPolicy::StorageAware { .. } => "storage-aware",
        }
    }
}

/// Chooses an identifier for a joining peer under `policy`.
///
/// `capacity` is the joining peer's storage capacity (items it is willing
/// to hold); only `StorageAware` consults it. The data distribution used
/// by `FromData` is approximated by resampling the existing corpus.
///
/// Returns an unused identifier (resamples collisions).
pub fn choose_join_id(
    net: &Network,
    store: &ItemStore,
    policy: &JoinPolicy,
    capacity: usize,
    rng: &mut SmallRng,
) -> Id {
    let fresh = |candidate: Id, net: &Network, rng: &mut SmallRng| -> Id {
        let mut id = candidate;
        while net.idx_of(id).is_some() {
            id = id.add(rng.gen_range(1..1_000_000));
        }
        id
    };
    match policy {
        JoinPolicy::UniformId => fresh(Id::new(rng.gen()), net, rng),
        JoinPolicy::FromData => {
            if store.is_empty() {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            // Resample an item key and perturb slightly: ids track data.
            let item = store.keys()[rng.gen_range(0..store.len())];
            fresh(item.add(rng.gen_range(1..1_000_000)), net, rng)
        }
        JoinPolicy::StorageAware { probes } => {
            if net.live_count() == 0 || store.is_empty() {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            let loads = store.load_per_peer(net);
            // Probe `probes` *distinct* random peers (partial Fisher-Yates)
            // and pick the most loaded one among them.
            let mut order: Vec<usize> = (0..loads.len()).collect();
            let probes = (*probes).clamp(1, loads.len());
            let mut best_idx = 0usize;
            let mut best_load = 0usize;
            for k in 0..probes {
                let j = rng.gen_range(k..order.len());
                order.swap(k, j);
                let i = order[k];
                if loads[i].1 >= best_load {
                    best_load = loads[i].1;
                    best_idx = i;
                }
            }
            let (victim, victim_load) = loads[best_idx];
            if victim_load == 0 {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            // Join at the key that splits the victim's items so that we
            // take over min(half, capacity) of them: our id becomes the
            // upper end of the lower share (we own (pred, us]).
            let victim_id = net.peer(victim).id;
            let pred_id = net
                .ring_live()
                .predecessor_of(victim_id)
                .expect("non-empty ring");
            // victim's items: keys in (pred, victim]
            let take = victim_load.div_ceil(2).min(capacity.max(1));
            let keys = store.keys();
            // walk the victim's arc collecting its items in order
            let mut owned: Vec<Id> = keys
                .iter()
                .copied()
                .filter(|&k| k.in_cw_open_closed(pred_id, victim_id))
                .collect();
            owned.sort_unstable_by_key(|&k| pred_id.cw_dist(k));
            let split_key = owned[take - 1];
            fresh(split_key, net, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_keydist::ClusteredKeys;
    use oscar_sim::FaultModel;
    use oscar_types::SeedTree;

    fn uniform_net(n: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        for i in 0..n {
            net.add_peer(Id::new(i * (u64::MAX / n) + 7), DegreeCaps::symmetric(4))
                .unwrap();
        }
        net
    }

    fn spiky_store(n: usize, seed: u64) -> ItemStore {
        let mut rng = SeedTree::new(seed).rng();
        ItemStore::generate(&ClusteredKeys::new(6, 1e-4, 1.0, 9), n, &mut rng)
    }

    #[test]
    fn chosen_ids_are_fresh() {
        let net = uniform_net(50);
        let store = spiky_store(1000, 1);
        let mut rng = SeedTree::new(2).rng();
        for policy in [
            JoinPolicy::UniformId,
            JoinPolicy::FromData,
            JoinPolicy::StorageAware { probes: 8 },
        ] {
            for _ in 0..20 {
                let id = choose_join_id(&net, &store, &policy, 100, &mut rng);
                assert!(net.idx_of(id).is_none(), "{}: id collision", policy.name());
            }
        }
    }

    #[test]
    fn storage_aware_split_halves_the_victim() {
        let mut net = uniform_net(40);
        let store = spiky_store(4000, 3);
        // find the heaviest peer before the join
        let before = store.load_per_peer(&net);
        let (_, max_before) = *before.iter().max_by_key(|&&(_, l)| l).unwrap();

        let mut rng = SeedTree::new(4).rng();
        // many probes => the policy reliably finds a heavy victim
        let id = choose_join_id(
            &net,
            &store,
            &JoinPolicy::StorageAware { probes: 40 },
            usize::MAX,
            &mut rng,
        );
        let joined = net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        let after = store.load_per_peer(&net);
        let new_load = after.iter().find(|&&(p, _)| p == joined).unwrap().1;
        // The joiner takes over roughly half the heaviest load.
        assert!(
            new_load >= max_before / 4 && new_load <= max_before,
            "joiner took {new_load} of {max_before}"
        );
        let new_max = after.iter().map(|&(_, l)| l).max().unwrap();
        assert!(new_max <= max_before, "join must not worsen the maximum");
    }

    #[test]
    fn capacity_caps_the_takeover() {
        let net = uniform_net(40);
        let store = spiky_store(4000, 5);
        let mut rng = SeedTree::new(6).rng();
        let id = choose_join_id(
            &net,
            &store,
            &JoinPolicy::StorageAware { probes: 40 },
            25, // tiny capacity
            &mut rng,
        );
        let mut net2 = net.clone();
        let joined = net2.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        let load = store.load_of(&net2, joined);
        assert!(load <= 25 + 5, "capacity-capped takeover, got {load}");
    }

    #[test]
    fn repeated_storage_aware_joins_flatten_load() {
        // The headline: 60 capacity-aware joins into a spiky corpus beat
        // 60 uniform joins on every balance metric.
        let store = spiky_store(20_000, 7);
        let run = |policy: JoinPolicy, seed: u64| {
            let mut net = uniform_net(100);
            let mut rng = SeedTree::new(seed).rng();
            for _ in 0..60 {
                let id = choose_join_id(&net, &store, &policy, usize::MAX, &mut rng);
                net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
            }
            store.balance(&net)
        };
        let uniform = run(JoinPolicy::UniformId, 10);
        let aware = run(JoinPolicy::StorageAware { probes: 16 }, 10);
        assert!(
            aware.max_over_mean * 2.0 < uniform.max_over_mean,
            "storage-aware joins should at least halve max/mean: {} vs {}",
            aware.max_over_mean,
            uniform.max_over_mean
        );
        assert!(aware.gini < uniform.gini);
    }

    #[test]
    fn from_data_tracks_the_corpus() {
        let store = spiky_store(20_000, 11);
        let mut net = uniform_net(10);
        let mut rng = SeedTree::new(12).rng();
        for _ in 0..150 {
            let id = choose_join_id(&net, &store, &JoinPolicy::FromData, usize::MAX, &mut rng);
            net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        }
        let b = store.balance(&net);
        // data-tracking ids yield far better balance than the 10-peer
        // uniform seed could ever reach
        assert!(b.max_over_mean < 20.0, "max/mean {}", b.max_over_mean);
        assert!(b.empty_fraction < 0.5);
    }

    #[test]
    fn policies_have_stable_names() {
        assert_eq!(JoinPolicy::UniformId.name(), "uniform-id");
        assert_eq!(JoinPolicy::FromData.name(), "from-data");
        assert_eq!(
            JoinPolicy::StorageAware { probes: 3 }.name(),
            "storage-aware"
        );
    }
}
