//! Identifier-choice policies for joining peers.
//!
//! Where a peer places itself on the ring decides what key range — and
//! therefore how much data — it is responsible for. The paper's position
//! is that this is a *local, capacity-aware decision*; this module
//! provides the three policies the storage experiment compares.

use crate::items::ItemStore;
use oscar_sim::Network;
use oscar_types::Id;
use rand::rngs::SmallRng;
use rand::Rng;

/// How a joining peer chooses its identifier.
#[derive(Clone, Debug)]
pub enum JoinPolicy {
    /// Uniformly random identifier (hash-DHT style; data-oblivious).
    UniformId,
    /// Sample the identifier from the data distribution itself — peer
    /// density tracks data density (the data-oriented default).
    FromData,
    /// Probe `probes` random live peers, pick the one with the highest
    /// load *relative to its remaining capacity*, and join at the median
    /// of its stored items, taking over half of its load. The explicit
    /// capacity-aware choice of the paper's introduction.
    StorageAware {
        /// How many candidate peers to probe (the sampling budget).
        probes: usize,
    },
}

impl JoinPolicy {
    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            JoinPolicy::UniformId => "uniform-id",
            JoinPolicy::FromData => "from-data",
            JoinPolicy::StorageAware { .. } => "storage-aware",
        }
    }
}

/// Chooses an identifier for a joining peer under `policy`.
///
/// `capacity` is the joining peer's storage capacity (items it is willing
/// to hold); only `StorageAware` consults it. The data distribution used
/// by `FromData` is approximated by resampling the existing corpus.
///
/// Returns an unused identifier (resamples collisions).
pub fn choose_join_id(
    net: &Network,
    store: &ItemStore,
    policy: &JoinPolicy,
    capacity: usize,
    rng: &mut SmallRng,
) -> Id {
    let fresh = |candidate: Id, net: &Network, rng: &mut SmallRng| -> Id {
        let mut id = candidate;
        while net.idx_of(id).is_some() {
            id = id.add(rng.gen_range(1..1_000_000));
        }
        id
    };
    match policy {
        JoinPolicy::UniformId => fresh(Id::new(rng.gen()), net, rng),
        JoinPolicy::FromData => {
            if store.is_empty() {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            // Resample an item key and perturb slightly: ids track data.
            let item = store.keys()[rng.gen_range(0..store.len())];
            fresh(item.add(rng.gen_range(1..1_000_000)), net, rng)
        }
        JoinPolicy::StorageAware { probes } => {
            if net.live_count() == 0 || store.is_empty() {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            // One loads snapshot for the whole decision; probe `probes`
            // *distinct* random peers via Floyd's sampling — O(probes)
            // state, no O(n) index-permutation scaffold — and pick the
            // most loaded one among them.
            let loads = store.load_per_peer(net);
            let n = loads.len();
            let probes = (*probes).clamp(1, n);
            let mut probed = std::collections::HashSet::with_capacity(probes);
            let mut best: Option<(usize, usize)> = None; // (load, index)
            for j in n - probes..n {
                let t = rng.gen_range(0..=j);
                let pick = if probed.insert(t) {
                    t
                } else {
                    probed.insert(j);
                    j
                };
                if best.is_none_or(|(l, _)| loads[pick].1 >= l) {
                    best = Some((loads[pick].1, pick));
                }
            }
            let (victim_load, best_idx) = best.expect("probes >= 1");
            let victim = loads[best_idx].0;
            if victim_load == 0 {
                return fresh(Id::new(rng.gen()), net, rng);
            }
            // Join at the key that splits the victim's items so that we
            // take over min(half, capacity) of them: our id becomes the
            // upper end of the lower share (we own (pred, us]).
            let victim_id = net.peer(victim).id;
            let pred_id = net
                .ring_live()
                .predecessor_of(victim_id)
                .expect("non-empty ring");
            // The victim's items are the sorted keys in (pred, victim]; in
            // clockwise order from pred that is the ascending run after
            // `pred` followed, for a wrapping arc, by the run from key 0.
            // Index straight into it instead of filtering all keys.
            let take = victim_load.div_ceil(2).min(capacity.max(1));
            let keys = store.keys();
            let le = |x: Id| keys.partition_point(|&k| k <= x);
            let first_after_pred = le(pred_id);
            let split_key = if pred_id < victim_id || first_after_pred + take <= keys.len() {
                keys[first_after_pred + take - 1]
            } else {
                keys[take - 1 - (keys.len() - first_after_pred)]
            };
            fresh(split_key, net, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_keydist::ClusteredKeys;
    use oscar_sim::FaultModel;
    use oscar_types::SeedTree;

    fn uniform_net(n: u64) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        for i in 0..n {
            net.add_peer(Id::new(i * (u64::MAX / n) + 7), DegreeCaps::symmetric(4))
                .unwrap();
        }
        net
    }

    fn spiky_store(n: usize, seed: u64) -> ItemStore {
        let mut rng = SeedTree::new(seed).rng();
        ItemStore::generate(&ClusteredKeys::new(6, 1e-4, 1.0, 9), n, &mut rng)
    }

    #[test]
    fn chosen_ids_are_fresh() {
        let net = uniform_net(50);
        let store = spiky_store(1000, 1);
        let mut rng = SeedTree::new(2).rng();
        for policy in [
            JoinPolicy::UniformId,
            JoinPolicy::FromData,
            JoinPolicy::StorageAware { probes: 8 },
        ] {
            for _ in 0..20 {
                let id = choose_join_id(&net, &store, &policy, 100, &mut rng);
                assert!(net.idx_of(id).is_none(), "{}: id collision", policy.name());
            }
        }
    }

    #[test]
    fn storage_aware_split_halves_the_victim() {
        let mut net = uniform_net(40);
        let store = spiky_store(4000, 3);
        // find the heaviest peer before the join
        let before = store.load_per_peer(&net);
        let (_, max_before) = *before.iter().max_by_key(|&&(_, l)| l).unwrap();

        let mut rng = SeedTree::new(4).rng();
        // many probes => the policy reliably finds a heavy victim
        let id = choose_join_id(
            &net,
            &store,
            &JoinPolicy::StorageAware { probes: 40 },
            usize::MAX,
            &mut rng,
        );
        let joined = net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        let after = store.load_per_peer(&net);
        let new_load = after.iter().find(|&&(p, _)| p == joined).unwrap().1;
        // The joiner takes over roughly half the heaviest load.
        assert!(
            new_load >= max_before / 4 && new_load <= max_before,
            "joiner took {new_load} of {max_before}"
        );
        let new_max = after.iter().map(|&(_, l)| l).max().unwrap();
        assert!(new_max <= max_before, "join must not worsen the maximum");
    }

    #[test]
    fn storage_aware_splits_a_wrap_owner_victim() {
        // Exercise the wrapping branch of the direct split-key indexing
        // deterministically: the victim owns the arc through u64::MAX,
        // holding 20 keys near the top of the ring and 80 near the
        // bottom, so the split point (the 50th clockwise item from the
        // predecessor) lies past the wrap — in the low-key run.
        let mut net = Network::new(FaultModel::StabilizedRing);
        let pred_ring_id = u64::MAX - 10_000_000;
        for id in [1000u64, pred_ring_id] {
            net.add_peer(Id::new(id), DegreeCaps::symmetric(4)).unwrap();
        }
        let wrap_owner = net.idx_of(Id::new(1000)).unwrap();
        let high: Vec<Id> = (0..20)
            .map(|i| Id::new(u64::MAX - 5_000_000 + i * 10))
            .collect();
        let low: Vec<Id> = (0..80).map(|i| Id::new(i * 10)).collect();
        let store = ItemStore::from_keys(high.iter().chain(&low).copied().collect());
        assert_eq!(store.load_of(&net, wrap_owner), 100, "victim owns all");

        let mut rng = SeedTree::new(8).rng();
        // probes = peer count => the heaviest (the wrap owner) is certain.
        let id = choose_join_id(
            &net,
            &store,
            &JoinPolicy::StorageAware { probes: 2 },
            usize::MAX,
            &mut rng,
        );
        // take = ceil(100/2) = 50; clockwise from the predecessor the
        // victim's items are the 20 high keys then the 80 low keys, so
        // the split key is the 30th low key.
        assert_eq!(id, low[29], "split at the 50th cw item, past the wrap");
        let joined = net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        assert_eq!(store.load_of(&net, joined), 50);
        assert_eq!(store.load_of(&net, wrap_owner), 50);
    }

    #[test]
    fn capacity_caps_the_takeover() {
        let net = uniform_net(40);
        let store = spiky_store(4000, 5);
        let mut rng = SeedTree::new(6).rng();
        let id = choose_join_id(
            &net,
            &store,
            &JoinPolicy::StorageAware { probes: 40 },
            25, // tiny capacity
            &mut rng,
        );
        let mut net2 = net.clone();
        let joined = net2.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        let load = store.load_of(&net2, joined);
        assert!(load <= 25 + 5, "capacity-capped takeover, got {load}");
    }

    #[test]
    fn repeated_storage_aware_joins_flatten_load() {
        // The headline: 60 capacity-aware joins into a spiky corpus beat
        // 60 uniform joins on every balance metric.
        let store = spiky_store(20_000, 7);
        let run = |policy: JoinPolicy, seed: u64| {
            let mut net = uniform_net(100);
            let mut rng = SeedTree::new(seed).rng();
            for _ in 0..60 {
                let id = choose_join_id(&net, &store, &policy, usize::MAX, &mut rng);
                net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
            }
            store.balance(&net)
        };
        let uniform = run(JoinPolicy::UniformId, 10);
        let aware = run(JoinPolicy::StorageAware { probes: 16 }, 10);
        assert!(
            aware.max_over_mean * 2.0 < uniform.max_over_mean,
            "storage-aware joins should at least halve max/mean: {} vs {}",
            aware.max_over_mean,
            uniform.max_over_mean
        );
        assert!(aware.gini < uniform.gini);
    }

    #[test]
    fn from_data_tracks_the_corpus() {
        let store = spiky_store(20_000, 11);
        let mut net = uniform_net(10);
        let mut rng = SeedTree::new(12).rng();
        for _ in 0..150 {
            let id = choose_join_id(&net, &store, &JoinPolicy::FromData, usize::MAX, &mut rng);
            net.add_peer(id, DegreeCaps::symmetric(4)).unwrap();
        }
        let b = store.balance(&net);
        // data-tracking ids yield far better balance than the 10-peer
        // uniform seed could ever reach
        assert!(b.max_over_mean < 20.0, "max/mean {}", b.max_over_mean);
        assert!(b.empty_fraction < 0.5);
    }

    #[test]
    fn policies_have_stable_names() {
        assert_eq!(JoinPolicy::UniformId.name(), "uniform-id");
        assert_eq!(JoinPolicy::FromData.name(), "from-data");
        assert_eq!(
            JoinPolicy::StorageAware { probes: 3 }.name(),
            "storage-aware"
        );
    }
}
