//! Data items and per-peer storage load.

use oscar_keydist::KeyDistribution;
use oscar_sim::{Network, PeerIdx};
use oscar_types::Id;
use rand::RngCore;

/// A corpus of data items, identified by their (order-preserved) keys.
///
/// Items are *not* stored inside peers: ownership is a pure function of
/// the live ring (owner = first live peer at-or-after the key), so the
/// store recomputes placement after any membership change — the same
/// simplification real systems implement with key re-transfer on join,
/// whose traffic the paper does not measure.
#[derive(Clone, Debug)]
pub struct ItemStore {
    /// Sorted item keys (duplicates allowed: several files can share an
    /// 8-byte prefix).
    items: Vec<Id>,
}

/// Storage balance summary over live peers.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadBalance {
    /// Live peers counted.
    pub peers: usize,
    /// Total items placed.
    pub items: usize,
    /// Heaviest per-peer load.
    pub max: usize,
    /// Mean per-peer load.
    pub mean: f64,
    /// `max / mean` — the imbalance headline (1.0 is perfect).
    pub max_over_mean: f64,
    /// Fraction of peers storing nothing.
    pub empty_fraction: f64,
    /// Gini coefficient of the load distribution (0 = equal).
    pub gini: f64,
}

impl LoadBalance {
    /// Computes the balance statistics from a raw per-peer load vector
    /// (`items` is the corpus size, reported even when no peer is live).
    ///
    /// Shared by [`ItemStore::balance`] (full placement) and
    /// [`LoadTracker::balance`](crate::LoadTracker::balance) (incremental
    /// loads), so both paths produce bit-identical statistics.
    pub fn from_loads(mut xs: Vec<usize>, items: usize) -> Self {
        let n = xs.len();
        if n == 0 {
            return LoadBalance {
                peers: 0,
                items,
                max: 0,
                mean: 0.0,
                max_over_mean: 0.0,
                empty_fraction: 0.0,
                gini: 0.0,
            };
        }
        xs.sort_unstable();
        let total: usize = xs.iter().sum();
        let mean = total as f64 / n as f64;
        let max = *xs.last().expect("non-empty");
        let empty = xs.iter().filter(|&&l| l == 0).count();
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };
        LoadBalance {
            peers: n,
            items,
            max,
            mean,
            max_over_mean: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            empty_fraction: empty as f64 / n as f64,
            gini,
        }
    }
}

impl ItemStore {
    /// Builds a store from explicit keys.
    pub fn from_keys(mut items: Vec<Id>) -> Self {
        items.sort_unstable();
        ItemStore { items }
    }

    /// Samples `n` items from a key distribution.
    pub fn generate(dist: &dyn KeyDistribution, n: usize, rng: &mut dyn RngCore) -> Self {
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(dist.sample(rng));
        }
        Self::from_keys(items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sorted keys.
    pub fn keys(&self) -> &[Id] {
        &self.items
    }

    /// Number of items the live owner of each arc `(pred, peer]` stores:
    /// merge-counts the sorted items against the sorted live ring in
    /// O(items + peers) after an O(log) start.
    pub fn load_per_peer(&self, net: &Network) -> Vec<(PeerIdx, usize)> {
        let ring = net.ring_live();
        if ring.is_empty() {
            return Vec::new();
        }
        // One ordered snapshot of the live ring keeps the item loop a
        // cache-friendly binary search instead of per-item tree descents.
        let peers: Vec<Id> = ring.ids().collect();
        let mut loads: Vec<(PeerIdx, usize)> = peers
            .iter()
            .map(|&id| (net.idx_of(id).expect("live ring ids registered"), 0usize))
            .collect();
        for &item in &self.items {
            // owner index in the sorted peer array (wrap to 0)
            let pos = peers.partition_point(|&p| p < item);
            let pos = if pos == peers.len() { 0 } else { pos };
            loads[pos].1 += 1;
        }
        loads
    }

    /// Items stored by one peer (count only): counts the sorted items
    /// inside the peer's owned arc `(predecessor, peer]` with two binary
    /// searches — O(log items + log peers), no full-placement vector.
    pub fn load_of(&self, net: &Network, peer: PeerIdx) -> usize {
        if !net.is_alive(peer) {
            return 0; // dead peers own nothing (they are off the live ring)
        }
        let peer_id = net.peer(peer).id;
        let Some(pred_id) = net.ring_live().predecessor_of(peer_id) else {
            return 0;
        };
        // Items at-or-before `x` in ascending key order.
        let le = |x: oscar_types::Id| self.items.partition_point(|&k| k <= x);
        if pred_id == peer_id {
            self.items.len() // sole live peer owns the full ring
        } else if pred_id < peer_id {
            le(peer_id) - le(pred_id)
        } else {
            // wrapping arc: (pred, MAX] ∪ [0, peer]
            self.items.len() - le(pred_id) + le(peer_id)
        }
    }

    /// Balance statistics over live peers.
    pub fn balance(&self, net: &Network) -> LoadBalance {
        let loads = self
            .load_per_peer(net)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        LoadBalance::from_loads(loads, self.items.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_keydist::{ClusteredKeys, UniformKeys};
    use oscar_sim::FaultModel;
    use oscar_types::SeedTree;

    fn net_with(ids: &[u64]) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        for &id in ids {
            net.add_peer(Id::new(id), DegreeCaps::symmetric(4)).unwrap();
        }
        net
    }

    #[test]
    fn items_go_to_chord_owners() {
        let net = net_with(&[100, 200, 300]);
        let store = ItemStore::from_keys(vec![
            Id::new(150), // -> 200
            Id::new(200), // -> 200 (exact hit)
            Id::new(250), // -> 300
            Id::new(999), // wraps -> 100
            Id::new(50),  // -> 100
        ]);
        let loads = store.load_per_peer(&net);
        let by_id: std::collections::HashMap<u64, usize> = loads
            .iter()
            .map(|&(p, l)| (net.peer(p).id.raw(), l))
            .collect();
        assert_eq!(by_id[&100], 2);
        assert_eq!(by_id[&200], 2);
        assert_eq!(by_id[&300], 1);
    }

    #[test]
    fn loads_sum_to_items() {
        let net = net_with(&[10, 20, 30, 40]);
        let mut rng = SeedTree::new(1).rng();
        let store = ItemStore::generate(&UniformKeys, 1000, &mut rng);
        let total: usize = store.load_per_peer(&net).iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn dead_peers_hold_nothing() {
        let mut net = net_with(&[100, 200, 300]);
        let victim = net.idx_of(Id::new(200)).unwrap();
        net.kill(victim).unwrap();
        let store = ItemStore::from_keys(vec![Id::new(150), Id::new(199)]);
        let loads = store.load_per_peer(&net);
        assert_eq!(loads.len(), 2, "only live peers appear");
        // 200's items fall to its live successor, 300
        let l300 = loads
            .iter()
            .find(|&&(p, _)| net.peer(p).id == Id::new(300))
            .unwrap()
            .1;
        assert_eq!(l300, 2);
    }

    #[test]
    fn load_of_matches_load_per_peer() {
        let mut rng = SeedTree::new(9).rng();
        // Uneven ids incl. wrap-owner; kill one peer to exercise fallthrough.
        let mut net = net_with(&[50, 5_000, u64::MAX - 10, 900, 77]);
        net.kill(net.idx_of(Id::new(900)).unwrap()).unwrap();
        let store = ItemStore::generate(&ClusteredKeys::new(4, 1e-3, 1.0, 3), 5_000, &mut rng);
        let full = store.load_per_peer(&net);
        let mut total = 0;
        for p in net.all_peers() {
            let direct = store.load_of(&net, p);
            let from_full = full
                .iter()
                .find(|&&(q, _)| q == p)
                .map(|&(_, l)| l)
                .unwrap_or(0);
            assert_eq!(direct, from_full, "peer {p:?}");
            total += direct;
        }
        assert_eq!(total, store.len());
        // Sole-live-peer edge: everything lands on the survivor.
        let mut solo = net_with(&[123]);
        assert_eq!(store.load_of(&solo, PeerIdx(0)), store.len());
        solo.kill(PeerIdx(0)).unwrap();
        assert_eq!(store.load_of(&solo, PeerIdx(0)), 0);
    }

    #[test]
    fn balance_statistics_are_consistent() {
        let net = net_with(&[10, 20, 30, 40]);
        // all items on one peer: maximal imbalance
        let store = ItemStore::from_keys(vec![Id::new(15); 100]);
        let b = store.balance(&net);
        assert_eq!(b.max, 100);
        assert_eq!(b.mean, 25.0);
        assert_eq!(b.max_over_mean, 4.0);
        assert_eq!(b.empty_fraction, 0.75);
        assert!(b.gini > 0.7, "gini {must_be_high}", must_be_high = b.gini);
    }

    #[test]
    fn uniform_items_on_uniform_peers_balance_well() {
        let ids: Vec<u64> = (0..200).map(|i| i * (u64::MAX / 200) + 7).collect();
        let net = net_with(&ids);
        let mut rng = SeedTree::new(2).rng();
        let store = ItemStore::generate(&UniformKeys, 20_000, &mut rng);
        let b = store.balance(&net);
        assert!(b.max_over_mean < 3.0, "max/mean {}", b.max_over_mean);
        assert!(b.gini < 0.4, "gini {}", b.gini);
    }

    #[test]
    fn skewed_items_on_uniform_peers_are_catastrophic() {
        let ids: Vec<u64> = (0..200).map(|i| i * (u64::MAX / 200) + 7).collect();
        let net = net_with(&ids);
        let mut rng = SeedTree::new(3).rng();
        let items = ClusteredKeys::new(6, 1e-4, 1.0, 9);
        let store = ItemStore::generate(&items, 20_000, &mut rng);
        let b = store.balance(&net);
        assert!(
            b.max_over_mean > 10.0,
            "spiky data must crush uniform-id peers: max/mean {}",
            b.max_over_mean
        );
        assert!(b.empty_fraction > 0.5);
    }

    #[test]
    fn empty_corpus_and_empty_network() {
        let store = ItemStore::from_keys(vec![]);
        assert!(store.is_empty());
        let net = Network::new(FaultModel::StabilizedRing);
        let b = store.balance(&net);
        assert_eq!(b.peers, 0);
    }
}
